"""Placement result container and quality metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import PlacementError
from repro.layout.geometry import Point, Rect
from repro.physd.floorplan import Floorplan
from repro.physd.netlist import GateNetlist

#: Nets with more pins than this are ignored by wirelength metrics and
#: by the quadratic model (clock and other global nets).
HIGH_FANOUT_LIMIT = 32


@dataclass
class Placement:
    """Legal placement: every instance at a row-aligned lower-left corner."""

    netlist: GateNetlist
    floorplan: Floorplan
    #: instance name → (x, y) of the cell's lower-left corner [m].
    positions: Dict[str, Tuple[float, float]]

    def cell_rect(self, name: str) -> Rect:
        inst = self.netlist.instance(name)
        try:
            x, y = self.positions[name]
        except KeyError:
            raise PlacementError(
                f"instance {name!r} has no position") from None
        return Rect.from_size(x, y, inst.cell.width, inst.cell.height)

    def center(self, name: str) -> Point:
        return self.cell_rect(name).center

    def flip_flop_centers(self) -> Dict[str, Point]:
        """Centers of all sequential instances."""
        return {
            inst.name: self.center(inst.name)
            for inst in self.netlist.sequential_instances()
        }

    def hpwl(self) -> float:
        """Half-perimeter wirelength over low-fanout nets [m]."""
        total = 0.0
        for net in self.netlist.nets.values():
            if not 2 <= len(net.instances) <= HIGH_FANOUT_LIMIT:
                continue
            xs: List[float] = []
            ys: List[float] = []
            for inst_name in net.instances:
                c = self.center(inst_name)
                xs.append(c.x)
                ys.append(c.y)
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def validate(self, tolerance: float = 1e-12) -> None:
        """Check legality: all cells inside the core, row-aligned, and
        without overlaps within each row."""
        by_row: Dict[int, List[Tuple[float, float, str]]] = {}
        die = self.floorplan.die
        row_height = self.floorplan.rows[0].height
        for name in self.netlist.instances:
            rect = self.cell_rect(name)
            if not die.contains_rect(rect, tolerance=1e-9):
                raise PlacementError(f"instance {name!r} outside the core: {rect}")
            row_index = self.floorplan.nearest_row(rect.y_min)
            row_y = self.floorplan.rows[row_index].y
            if abs(rect.y_min - row_y) > row_height * 1e-6 + tolerance:
                raise PlacementError(
                    f"instance {name!r} not row-aligned (y={rect.y_min}, row={row_y})"
                )
            by_row.setdefault(row_index, []).append((rect.x_min, rect.x_max, name))
        for row_index, spans in by_row.items():
            spans.sort()
            for (x0, x1, a), (x2, _x3, b) in zip(spans, spans[1:]):
                if x2 < x1 - 1e-9:
                    raise PlacementError(
                        f"overlap in row {row_index}: {a!r} [{x0:.3g},{x1:.3g}] "
                        f"vs {b!r} starting {x2:.3g}"
                    )
