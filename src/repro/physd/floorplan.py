"""Floorplanning: die and standard-cell rows from a utilisation target."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import PlacementError
from repro.layout.design_rules import DesignRules, RULES_40NM
from repro.layout.geometry import Rect
from repro.physd.netlist import GateNetlist


@dataclass(frozen=True)
class Row:
    """One standard-cell row (all cells sit with y = row.y)."""

    index: int
    y: float
    x_min: float
    x_max: float
    height: float

    @property
    def width(self) -> float:
        return self.x_max - self.x_min


@dataclass
class Floorplan:
    """Die outline plus its placement rows."""

    die: Rect
    rows: List[Row]
    utilization: float

    @property
    def core_area(self) -> float:
        return self.die.area

    @property
    def row_capacity(self) -> float:
        """Total placeable width across rows [m]."""
        return sum(row.width for row in self.rows)

    def nearest_row(self, y: float) -> int:
        """Index of the row whose y is closest to the given coordinate."""
        if not self.rows:
            raise PlacementError("floorplan has no rows")
        height = self.rows[0].height
        idx = int(round((y - self.rows[0].y) / height))
        return min(max(idx, 0), len(self.rows) - 1)


def build_floorplan(
    netlist: GateNetlist,
    utilization: float = 0.70,
    aspect_ratio: float = 1.0,
    rules: DesignRules = RULES_40NM,
) -> Floorplan:
    """Size a square-ish die so the cells fill ``utilization`` of it.

    The die height is snapped to a whole number of rows and the width to
    the poly-pitch grid, mimicking the default floorplan mode of the
    commercial flow the paper used.
    """
    if not 0.05 <= utilization <= 0.95:
        raise PlacementError(f"utilization {utilization} out of range [0.05, 0.95]")
    if aspect_ratio <= 0:
        raise PlacementError("aspect ratio must be positive")

    cell_area = netlist.total_cell_area()
    if cell_area <= 0:
        raise PlacementError("netlist has no cell area")
    core_area = cell_area / utilization
    height = math.sqrt(core_area * aspect_ratio)
    row_height = rules.cell_height
    num_rows = max(1, int(round(height / row_height)))
    height = num_rows * row_height
    width = core_area / height
    width = max(rules.poly_pitch, math.ceil(width / rules.poly_pitch) * rules.poly_pitch)

    die = Rect(0.0, 0.0, width, height)
    rows = [
        Row(index=i, y=i * row_height, x_min=0.0, x_max=width, height=row_height)
        for i in range(num_rows)
    ]
    return Floorplan(die=die, rows=rows, utilization=utilization)
