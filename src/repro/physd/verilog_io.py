"""Gate-level structural Verilog writer and parser.

Real physical-design flows exchange gate-level netlists as structural
Verilog; this module provides that surface for :class:`GateNetlist`
(the DEF side carries placement, the Verilog side connectivity).

Pin-name convention (our netlists carry ordered nets, not named pins):

* combinational cells — inputs ``A0..An``, output ``Y`` (last net),
* sequential cells — all nets but the last are ``D0..Dn``, output ``Q``.

The writer emits one module with the design's port nets as ports; the
parser accepts exactly this subset (named port connections, one instance
per line logically, ``//`` comments) and reconstructs the netlist over a
given cell library, so write → parse is a lossless round trip.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.cells.library import CellLibrary, build_default_library
from repro.errors import NetlistError
from repro.physd.netlist import GateNetlist

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_INSTANCE_RE = re.compile(
    rf"^({_IDENT})\s+({_IDENT})\s*\((.*)\)\s*;\s*$", re.DOTALL)
_PIN_RE = re.compile(rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)")
_MODULE_RE = re.compile(rf"^module\s+({_IDENT})\s*\((.*?)\)\s*;", re.DOTALL)


def _escape(net: str) -> str:
    """Map arbitrary net names onto Verilog identifiers (best effort)."""
    if re.fullmatch(_IDENT, net):
        return net
    return "n_" + re.sub(r"[^A-Za-z0-9_]", "_", net)


def _pin_names(count: int, sequential: bool) -> List[str]:
    if count < 1:
        raise NetlistError("instance needs at least one pin")
    if sequential:
        return [f"D{i}" for i in range(count - 1)] + ["Q"]
    return [f"A{i}" for i in range(count - 1)] + ["Y"]


def write_verilog(netlist: GateNetlist, module_name: Optional[str] = None) -> str:
    """Serialise the netlist as one structural Verilog module."""
    netlist.validate()
    name = module_name or netlist.name
    ports = sorted(net.name for net in netlist.port_nets())
    internal = sorted(n for n in netlist.nets if n not in set(ports))

    lines = [f"// structural netlist of {netlist.name} "
             f"({netlist.num_instances} instances)",
             f"module {_escape(name)} ({', '.join(_escape(p) for p in ports)});"]
    for port in ports:
        lines.append(f"  inout {_escape(port)};")
    for net in internal:
        lines.append(f"  wire {_escape(net)};")
    lines.append("")
    for inst_name in sorted(netlist.instances):
        inst = netlist.instances[inst_name]
        pins = _pin_names(len(inst.nets), inst.is_sequential)
        conns = ", ".join(f".{pin}({_escape(net)})"
                          for pin, net in zip(pins, inst.nets))
        lines.append(f"  {inst.cell.name} {_escape(inst_name)} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def parse_verilog(text: str, library: Optional[CellLibrary] = None) -> GateNetlist:
    """Parse the written subset back into a :class:`GateNetlist`."""
    library = library or build_default_library()
    # Strip comments, normalise whitespace.
    text = re.sub(r"//[^\n]*", "", text)
    statements = [s.strip() for s in text.split(";")]

    module_name: Optional[str] = None
    ports: List[str] = []
    instances: List[tuple] = []
    wires: List[str] = []

    for statement in statements:
        if not statement or statement == "endmodule":
            continue
        if statement.startswith("module"):
            match = _MODULE_RE.match(statement + ";")
            if not match:
                raise NetlistError(f"unparseable module header: {statement!r}")
            module_name = match.group(1)
            ports = [p.strip() for p in match.group(2).split(",") if p.strip()]
            continue
        if statement.startswith(("wire", "inout", "input", "output")):
            parts = statement.split(None, 1)
            if len(parts) == 2:
                wires.extend(w.strip() for w in parts[1].split(","))
            continue
        match = _INSTANCE_RE.match(statement + ";")
        if not match:
            raise NetlistError(f"unparseable statement: {statement!r}")
        cell_name, inst_name, conn_text = match.groups()
        pins = _PIN_RE.findall(conn_text)
        if not pins:
            raise NetlistError(f"instance {inst_name!r} has no pin connections")
        instances.append((inst_name, cell_name, pins))

    if module_name is None:
        raise NetlistError("no module declaration found")

    netlist = GateNetlist(module_name, library)
    for port in ports:
        netlist.add_net(port, is_port=True)
    for inst_name, cell_name, pins in instances:
        if cell_name not in library:
            raise NetlistError(f"instance {inst_name!r}: unknown cell {cell_name!r}")
        cell = library[cell_name]
        expected = _pin_names(len(pins), cell.is_sequential)
        by_pin: Dict[str, str] = dict(pins)
        if sorted(by_pin) != sorted(expected):
            raise NetlistError(
                f"instance {inst_name!r}: pins {sorted(by_pin)} do not match "
                f"the {cell_name} convention {expected}"
            )
        nets = [by_pin[pin] for pin in expected]
        netlist.add_instance(inst_name, cell_name, nets)
    netlist.validate()
    return netlist
