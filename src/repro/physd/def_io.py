"""DEF (Design Exchange Format) writer and parser.

The paper identifies mergeable neighbour flip-flops "using a script that
is executed over the DEF file"; this module provides the DEF surface for
that flow: a writer emitting the DIEAREA/ROW/COMPONENTS subset a
placement produces, and a parser reading the same subset back (round-trip
tested).  Coordinates use the conventional database unit of 1000 DBU per
micron.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DefFormatError
from repro.layout.geometry import Rect
from repro.physd.placement.result import Placement
from repro.units import MICRO

#: Database units per micron.
DBU_PER_MICRON = 1000


def _to_dbu(metres: float) -> int:
    return int(round(metres / MICRO * DBU_PER_MICRON))


def _from_dbu(dbu: int) -> float:
    return dbu / DBU_PER_MICRON * MICRO


@dataclass
class DefComponent:
    """One COMPONENTS entry."""

    name: str
    cell: str
    x: float  # metres, lower-left
    y: float
    orientation: str = "N"


@dataclass
class DefDesign:
    """Parsed DEF content (the subset this library writes)."""

    name: str
    die: Rect
    components: Dict[str, DefComponent] = field(default_factory=dict)
    rows: List[Tuple[str, float]] = field(default_factory=list)

    def component(self, name: str) -> DefComponent:
        try:
            return self.components[name]
        except KeyError:
            raise DefFormatError(
                f"no component {name!r} in design {self.name!r}") from None


def write_def(placement: Placement, design_name: Optional[str] = None) -> str:
    """Serialise a placement as DEF text."""
    netlist = placement.netlist
    die = placement.floorplan.die
    lines = [
        "VERSION 5.8 ;",
        "DIVIDERCHAR \"/\" ;",
        "BUSBITCHARS \"[]\" ;",
        f"DESIGN {design_name or netlist.name} ;",
        f"UNITS DISTANCE MICRONS {DBU_PER_MICRON} ;",
        f"DIEAREA ( {_to_dbu(die.x_min)} {_to_dbu(die.y_min)} ) "
        f"( {_to_dbu(die.x_max)} {_to_dbu(die.y_max)} ) ;",
    ]
    for row in placement.floorplan.rows:
        lines.append(
            f"ROW row_{row.index} CoreSite {_to_dbu(row.x_min)} {_to_dbu(row.y)} N ;"
        )
    lines.append(f"COMPONENTS {netlist.num_instances} ;")
    for name in sorted(netlist.instances):
        inst = netlist.instances[name]
        x, y = placement.positions[name]
        lines.append(
            f"- {name} {inst.cell.name} + PLACED "
            f"( {_to_dbu(x)} {_to_dbu(y)} ) N ;"
        )
    lines.append("END COMPONENTS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


_DESIGN_RE = re.compile(r"^DESIGN\s+(\S+)\s*;")
_UNITS_RE = re.compile(r"^UNITS\s+DISTANCE\s+MICRONS\s+(\d+)\s*;")
_DIEAREA_RE = re.compile(
    r"^DIEAREA\s*\(\s*(-?\d+)\s+(-?\d+)\s*\)\s*\(\s*(-?\d+)\s+(-?\d+)\s*\)\s*;"
)
_ROW_RE = re.compile(r"^ROW\s+(\S+)\s+\S+\s+(-?\d+)\s+(-?\d+)\s+\S+\s*;")
_COMPONENT_RE = re.compile(
    r"^-\s+(\S+)\s+(\S+)\s+\+\s+(?:PLACED|FIXED)\s*"
    r"\(\s*(-?\d+)\s+(-?\d+)\s*\)\s*(\S+)\s*;"
)


def parse_def(text: str) -> DefDesign:
    """Parse DEF text (the written subset) into a :class:`DefDesign`."""
    name: Optional[str] = None
    die: Optional[Rect] = None
    dbu = DBU_PER_MICRON
    components: Dict[str, DefComponent] = {}
    rows: List[Tuple[str, float]] = []
    in_components = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("VERSION") or line.startswith("DIVIDERCHAR") \
                or line.startswith("BUSBITCHARS"):
            continue
        match = _DESIGN_RE.match(line)
        if match:
            name = match.group(1)
            continue
        match = _UNITS_RE.match(line)
        if match:
            dbu = int(match.group(1))
            if dbu <= 0:
                raise DefFormatError(f"line {line_no}: non-positive DBU {dbu}")
            continue
        match = _DIEAREA_RE.match(line)
        if match:
            x0, y0, x1, y1 = (int(g) for g in match.groups())
            die = Rect(x0 / dbu * MICRO, y0 / dbu * MICRO,
                       x1 / dbu * MICRO, y1 / dbu * MICRO)
            continue
        match = _ROW_RE.match(line)
        if match:
            rows.append((match.group(1), int(match.group(3)) / dbu * MICRO))
            continue
        if line.startswith("COMPONENTS"):
            in_components = True
            continue
        if line.startswith("END COMPONENTS"):
            in_components = False
            continue
        if line.startswith("END DESIGN"):
            break
        if in_components:
            match = _COMPONENT_RE.match(line)
            if not match:
                raise DefFormatError(f"line {line_no}: unparseable component: {line!r}")
            comp_name, cell, x, y, orient = match.groups()
            if comp_name in components:
                raise DefFormatError(f"line {line_no}: duplicate component {comp_name!r}")
            components[comp_name] = DefComponent(
                name=comp_name, cell=cell,
                x=int(x) / dbu * MICRO, y=int(y) / dbu * MICRO,
                orientation=orient,
            )
            continue
        raise DefFormatError(f"line {line_no}: unrecognised statement: {line!r}")

    if name is None:
        raise DefFormatError("missing DESIGN statement")
    if die is None:
        raise DefFormatError("missing DIEAREA statement")
    return DefDesign(name=name, die=die, components=components, rows=rows)
