"""Event-free gate-level logic simulation with three-valued logic.

Simulates the benchmark netlists functionally: combinational gates
evaluate in topological order, flip-flops capture on a clock cycle with
proper master/slave semantics (all D inputs sampled before any Q
updates).  Values are ``0``, ``1`` or ``None`` (unknown / X), with
standard controlled-value semantics (``NAND(0, X) = 1``).

The simulator backs the system-level verification that the NV shadow
replacement actually preserves machine behaviour: run a circuit, lose
all flip-flop state across a power-down (X-out), restore from the
backup snapshot, and check the continued run is cycle-accurate against
an ungated reference.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import NetlistError
from repro.physd.benchmarks import CLOCK_NET
from repro.physd.netlist import GateNetlist

Value = Optional[int]  # 0, 1, or None (X)


def _inv(a: Value) -> Value:
    return None if a is None else 1 - a


def _and(values: Sequence[Value]) -> Value:
    if any(v == 0 for v in values):
        return 0
    if any(v is None for v in values):
        return None
    return 1


def _or(values: Sequence[Value]) -> Value:
    if any(v == 1 for v in values):
        return 1
    if any(v is None for v in values):
        return None
    return 0


def _xor(values: Sequence[Value]) -> Value:
    if any(v is None for v in values):
        return None
    return sum(values) % 2


#: Cell name → function of the ordered input values.
CELL_FUNCTIONS = {
    "INV_X1": lambda ins: _inv(ins[0]),
    "BUF_X1": lambda ins: ins[0],
    "NAND2_X1": lambda ins: _inv(_and(ins)),
    "NOR2_X1": lambda ins: _inv(_or(ins)),
    "NAND3_X1": lambda ins: _inv(_and(ins)),
    "XOR2_X1": lambda ins: _xor(ins),
    # AOI21: Y = NOT((A0 AND A1) OR A2)
    "AOI21_X1": lambda ins: _inv(_or([_and(ins[:2]), ins[2]])),
}


@dataclass
class LogicSimulator:
    """Functional simulator over a :class:`GateNetlist`."""

    netlist: GateNetlist
    values: Dict[str, Value] = field(default_factory=dict, init=False)
    _order: List[str] = field(default_factory=list, init=False)
    _driver: Dict[str, str] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        self.netlist.validate()
        self._build_topology()
        for net in self.netlist.nets:
            self.values[net] = None
        # Flip-flop outputs start unknown; inputs default low.
        for net in self.netlist.port_nets():
            self.values[net.name] = 0
        self.values[CLOCK_NET] = 0

    # -- topology ---------------------------------------------------------------

    def _build_topology(self) -> None:
        """Levelize the combinational gates (Kahn); FF outputs and ports
        are the roots.  A combinational cycle is a netlist error."""
        comb = self.netlist.combinational_instances()
        for inst in comb:
            if inst.cell.name not in CELL_FUNCTIONS:
                raise NetlistError(
                    f"no logic function for cell {inst.cell.name!r}")
            self._driver[inst.nets[-1]] = inst.name

        dependents: Dict[str, List[str]] = {}
        in_degree: Dict[str, int] = {}
        for inst in comb:
            count = 0
            for net in inst.nets[:-1]:
                driver = self._driver.get(net)
                if driver is not None:
                    dependents.setdefault(driver, []).append(inst.name)
                    count += 1
            in_degree[inst.name] = count

        ready = deque(sorted(name for name, deg in in_degree.items()
                             if deg == 0))
        order: List[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            for dependent in dependents.get(name, ()):
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(comb):
            stuck = sorted(set(in_degree) - set(order))[:5]
            raise NetlistError(
                f"combinational cycle involving (at least) {stuck}")
        self._order = order

    # -- evaluation ---------------------------------------------------------------

    def set_inputs(self, inputs: Dict[str, Value]) -> None:
        for net, value in inputs.items():
            if net not in self.netlist.nets:
                raise NetlistError(f"unknown input net {net!r}")
            if value not in (0, 1, None):
                raise NetlistError(f"value for {net!r} must be 0/1/None")
            self.values[net] = value

    def propagate(self) -> None:
        """Evaluate all combinational gates in topological order."""
        for name in self._order:
            inst = self.netlist.instances[name]
            inputs = [self.values.get(net) for net in inst.nets[:-1]]
            self.values[inst.nets[-1]] = CELL_FUNCTIONS[inst.cell.name](inputs)

    def clock_cycle(self, inputs: Optional[Dict[str, Value]] = None) -> None:
        """One rising clock edge: sample every D, then update every Q,
        then re-propagate."""
        if inputs:
            self.set_inputs(inputs)
        self.propagate()
        captured: Dict[str, Value] = {}
        for ff in self.netlist.sequential_instances():
            captured[ff.nets[-1]] = self.values.get(ff.nets[0])
        self.values.update(captured)
        self.propagate()

    # -- state access -----------------------------------------------------------------

    def flip_flop_state(self) -> Dict[str, Value]:
        """Current Q value per flip-flop instance."""
        return {ff.name: self.values.get(ff.nets[-1])
                for ff in self.netlist.sequential_instances()}

    def load_flip_flop_state(self, state: Dict[str, Value]) -> None:
        """Force Q values (the NV restore path) and re-propagate."""
        for ff in self.netlist.sequential_instances():
            if ff.name in state:
                self.values[ff.nets[-1]] = state[ff.name]
        self.propagate()

    def power_down(self) -> None:
        """Supply collapse: every stateful and combinational net goes X."""
        for net in self.netlist.nets:
            if net != CLOCK_NET and not self.netlist.nets[net].is_port:
                self.values[net] = None

    def outputs(self) -> Dict[str, Value]:
        """Values of the primary-output nets (driven port nets)."""
        return {
            net.name: self.values.get(net.name)
            for net in self.netlist.port_nets()
            if net.name in self._driver
        }

    def any_unknown_flip_flop(self) -> bool:
        return any(v is None for v in self.flip_flop_state().values())
