"""Static timing analysis over placed gate netlists.

A lightweight STA with the ingredients that matter for the paper's
"no timing penalty" merge constraint:

* gate delay = intrinsic + drive resistance × load capacitance,
* load = fanout pin capacitance + placed-wirelength wire capacitance
  (HPWL-based when a placement is given, fanout-based otherwise),
* arrival propagation from flip-flop Q pins / primary inputs in
  topological order; slack against a clock period at flip-flop D pins.

:func:`merge_timing_impact` then quantifies what adding the NV shadow
components does to the data paths: every flip-flop's Q net gains the NV
cell's write-driver pin load, and merged pairs gain wire reaching to the
shared cell at the pair midpoint — the cost the 2×-cell-width threshold
is designed to keep negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.physd.benchmarks import CLOCK_NET
from repro.physd.netlist import GateNetlist
from repro.physd.placement.result import HIGH_FANOUT_LIMIT, Placement

#: Per-cell (intrinsic delay [s], drive resistance [Ω]).
GATE_TIMING: Dict[str, Tuple[float, float]] = {
    "INV_X1": (8e-12, 4.0e3),
    "BUF_X1": (14e-12, 3.0e3),
    "NAND2_X1": (11e-12, 4.5e3),
    "NOR2_X1": (13e-12, 5.5e3),
    "NAND3_X1": (14e-12, 5.0e3),
    "XOR2_X1": (22e-12, 5.0e3),
    "AOI21_X1": (16e-12, 5.5e3),
    "DFF_X1": (90e-12, 4.0e3),  # intrinsic = clk->Q
}

#: Input pin capacitance per cell input [F].
INPUT_PIN_CAP = 0.8e-15
#: NV shadow component input load on a flip-flop's Q net [F]
#: (the tristate write driver's data input).
NV_PIN_CAP = 1.4e-15
#: Wire capacitance per length [F/m].
WIRE_CAP_PER_M = 0.2e-9
#: Wire capacitance per fanout when no placement is available [F].
FANOUT_WIRE_CAP = 0.5e-15
#: Flip-flop setup time [s].
SETUP_TIME = 45e-12


@dataclass
class TimingReport:
    """Arrival/slack summary of one analysis."""

    clock_period: float
    #: Worst slack over all flip-flop D pins and primary outputs [s].
    worst_slack: float
    #: Endpoint (instance or net) with the worst slack.
    critical_endpoint: str
    #: Arrival time at every net [s].
    arrivals: Dict[str, float] = field(repr=False, default_factory=dict)
    #: Critical path as a list of nets, source to endpoint.
    critical_path: List[str] = field(default_factory=list)

    @property
    def max_frequency(self) -> float:
        """Highest clock frequency the design meets [Hz]."""
        critical_delay = self.clock_period - self.worst_slack
        if critical_delay <= 0:
            raise AnalysisError("degenerate critical delay")
        return 1.0 / critical_delay


def _net_wire_cap(netlist: GateNetlist, net_name: str,
                  placement: Optional[Placement]) -> float:
    net = netlist.nets[net_name]
    if placement is None or len(net.instances) > HIGH_FANOUT_LIMIT:
        return FANOUT_WIRE_CAP * max(0, len(net.instances) - 1)
    xs: List[float] = []
    ys: List[float] = []
    for inst_name in net.instances:
        center = placement.center(inst_name)
        xs.append(center.x)
        ys.append(center.y)
    if len(xs) < 2:
        return 0.0
    hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
    return hpwl * WIRE_CAP_PER_M


def analyze_timing(
    netlist: GateNetlist,
    placement: Optional[Placement] = None,
    clock_period: float = 1e-9,
    extra_net_load: Optional[Dict[str, float]] = None,
) -> TimingReport:
    """Propagate arrivals and report the worst setup slack.

    ``extra_net_load`` adds capacitance to specific nets (used by the
    merge-impact analysis for the NV pin and wire loads).
    """
    if clock_period <= 0:
        raise AnalysisError("clock period must be positive")
    extra = extra_net_load or {}

    # Net loads: input pins + wire (+ extras).
    loads: Dict[str, float] = {}
    for net_name, net in netlist.nets.items():
        if net_name == CLOCK_NET:
            continue
        pins = 0
        for inst_name in net.instances:
            inst = netlist.instances[inst_name]
            if net_name in inst.nets[:-1]:
                pins += inst.nets[:-1].count(net_name)
        loads[net_name] = (pins * INPUT_PIN_CAP
                           + _net_wire_cap(netlist, net_name, placement)
                           + extra.get(net_name, 0.0))

    arrivals: Dict[str, float] = {}
    predecessor: Dict[str, str] = {}
    for net in netlist.port_nets():
        arrivals[net.name] = 0.0

    # Flip-flop Q pins launch at clk->Q (+ load delay of the Q net).
    for ff in netlist.sequential_instances():
        intrinsic, resistance = GATE_TIMING[ff.cell.name]
        q_net = ff.nets[-1]
        arrivals[q_net] = intrinsic + resistance * loads.get(q_net, 0.0)

    # Combinational propagation (reuse the simulator's topological order).
    from repro.physd.logicsim import LogicSimulator

    order = LogicSimulator(netlist)._order
    for name in order:
        inst = netlist.instances[name]
        if inst.cell.name not in GATE_TIMING:
            raise AnalysisError(f"no timing data for cell {inst.cell.name!r}")
        intrinsic, resistance = GATE_TIMING[inst.cell.name]
        out_net = inst.nets[-1]
        input_arrivals = [(arrivals.get(net, 0.0), net)
                          for net in inst.nets[:-1] if net != CLOCK_NET]
        worst_input, worst_net = max(input_arrivals, default=(0.0, ""))
        arrivals[out_net] = (worst_input + intrinsic
                             + resistance * loads.get(out_net, 0.0))
        if worst_net:
            predecessor[out_net] = worst_net

    # Slack at flip-flop D pins.
    worst_slack = float("inf")
    critical_endpoint = ""
    critical_net = ""
    for ff in netlist.sequential_instances():
        d_net = ff.nets[0]
        slack = clock_period - SETUP_TIME - arrivals.get(d_net, 0.0)
        if slack < worst_slack:
            worst_slack = slack
            critical_endpoint = ff.name
            critical_net = d_net
    if critical_endpoint == "":
        raise AnalysisError("design has no flip-flops to time")

    path: List[str] = []
    net = critical_net
    while net:
        path.append(net)
        net = predecessor.get(net, "")
    path.reverse()

    return TimingReport(clock_period=clock_period, worst_slack=worst_slack,
                        critical_endpoint=critical_endpoint,
                        arrivals=arrivals, critical_path=path)


def merge_timing_impact(
    placement: Placement,
    merge,
    clock_period: float = 1e-9,
) -> Tuple[TimingReport, TimingReport]:
    """Timing before vs after attaching the NV shadow components.

    Every flip-flop's Q net gains the NV write-driver pin load; a merged
    pair additionally gains wire capacitance spanning the distance from
    each flop to the shared component at the pair midpoint.  Returns
    (baseline report, with-NV report); the worst-slack delta is the
    quantity the paper's distance threshold bounds.
    """
    netlist = placement.netlist
    baseline = analyze_timing(netlist, placement, clock_period)

    extra: Dict[str, float] = {}
    for ff in netlist.sequential_instances():
        extra[ff.nets[-1]] = NV_PIN_CAP
    for pair in merge.pairs:
        ca = placement.center(pair.ff_a)
        cb = placement.center(pair.ff_b)
        half_span = (abs(ca.x - cb.x) + abs(ca.y - cb.y)) / 2.0
        for name in pair.members():
            q_net = netlist.instance(name).nets[-1]
            extra[q_net] = extra.get(q_net, 0.0) + half_span * WIRE_CAP_PER_M

    with_nv = analyze_timing(netlist, placement, clock_period,
                             extra_net_load=extra)
    return baseline, with_nv


#: Flip-flop hold-time requirement [s].
HOLD_TIME = 15e-12


def analyze_hold(
    netlist: GateNetlist,
    placement: Optional[Placement] = None,
    clock_skew: float = 20e-12,
) -> Tuple[float, str]:
    """Min-delay (hold) check: the *shortest* path into any flip-flop's D
    pin must exceed the hold requirement plus the clock skew.

    Returns ``(worst_hold_slack, endpoint)``; positive slack means no
    race.  Because the scan chain connects flip-flops Q→D directly (no
    logic), the shortest paths in these designs are the scan hops — the
    classic source of hold violations that scan stitching must respect.
    """
    loads: Dict[str, float] = {}
    for net_name, net in netlist.nets.items():
        if net_name == CLOCK_NET:
            continue
        pins = 0
        for inst_name in net.instances:
            inst = netlist.instances[inst_name]
            if net_name in inst.nets[:-1]:
                pins += inst.nets[:-1].count(net_name)
        loads[net_name] = (pins * INPUT_PIN_CAP
                           + _net_wire_cap(netlist, net_name, placement))

    # Earliest arrivals: min over inputs instead of max.
    arrivals: Dict[str, float] = {}
    for net in netlist.port_nets():
        arrivals[net.name] = 0.0
    for ff in netlist.sequential_instances():
        intrinsic, resistance = GATE_TIMING[ff.cell.name]
        q_net = ff.nets[-1]
        arrivals[q_net] = intrinsic + resistance * loads.get(q_net, 0.0)

    from repro.physd.logicsim import LogicSimulator

    order = LogicSimulator(netlist)._order
    for name in order:
        inst = netlist.instances[name]
        intrinsic, resistance = GATE_TIMING[inst.cell.name]
        out_net = inst.nets[-1]
        input_arrivals = [arrivals.get(net, 0.0)
                          for net in inst.nets[:-1] if net != CLOCK_NET]
        earliest = min(input_arrivals, default=0.0)
        arrivals[out_net] = (earliest + intrinsic
                             + resistance * loads.get(out_net, 0.0))

    worst_slack = float("inf")
    endpoint = ""
    for ff in netlist.sequential_instances():
        # Hold is checked at every D-side pin (data and scan-in).
        for net in ff.nets[:-1]:
            if net == CLOCK_NET or net not in arrivals:
                continue
            slack = arrivals[net] - HOLD_TIME - clock_skew
            if slack < worst_slack:
                worst_slack = slack
                endpoint = f"{ff.name}:{net}"
    if not endpoint:
        raise AnalysisError("design has no checkable hold endpoints")
    return worst_slack, endpoint
