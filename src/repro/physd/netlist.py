"""Gate-level netlist container.

A :class:`GateNetlist` is a flat design: named instances of library
cells connected by named nets.  It is deliberately structural — no
logic functions — because the downstream consumers (placement, the
merge flow) only need connectivity and cell geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.cells.library import CellLibrary, CellType
from repro.errors import NetlistError, suggest_names


@dataclass
class Instance:
    """One placed-or-placeable cell instance."""

    name: str
    cell: CellType
    #: Nets on this instance's pins, in pin order (inputs then output by
    #: convention of the generators; order is not semantically loaded).
    nets: List[str] = field(default_factory=list)

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential


@dataclass
class Net:
    """One net: the instance names it connects, plus optional pad flag."""

    name: str
    instances: List[str] = field(default_factory=list)
    #: True for primary inputs/outputs — placement anchors these at pads.
    is_port: bool = False


class GateNetlist:
    """A flat gate-level design."""

    def __init__(self, name: str, library: CellLibrary):
        self.name = name
        self.library = library
        self.instances: Dict[str, Instance] = {}
        self.nets: Dict[str, Net] = {}

    # -- construction -------------------------------------------------------

    def add_net(self, name: str, is_port: bool = False) -> Net:
        if name in self.nets:
            net = self.nets[name]
            net.is_port = net.is_port or is_port
            return net
        net = Net(name=name, is_port=is_port)
        self.nets[name] = net
        return net

    def add_instance(self, name: str, cell_name: str,
                     nets: Iterable[str]) -> Instance:
        if name in self.instances:
            raise NetlistError(f"duplicate instance {name!r}")
        cell = self.library[cell_name]
        net_list = list(nets)
        instance = Instance(name=name, cell=cell, nets=net_list)
        self.instances[name] = instance
        for net_name in net_list:
            self.add_net(net_name).instances.append(name)
        return instance

    def remove_instance(self, name: str) -> None:
        instance = self.instances.pop(name, None)
        if instance is None:
            raise NetlistError(f"no instance {name!r}")
        for net_name in instance.nets:
            net = self.nets.get(net_name)
            if net and name in net.instances:
                net.instances.remove(name)

    # -- queries -----------------------------------------------------------

    def instance(self, name: str) -> Instance:
        try:
            return self.instances[name]
        except KeyError:
            raise NetlistError(
                f"no instance {name!r} in {self.name!r}"
                + suggest_names(name, self.instances)
            ) from None

    def sequential_instances(self) -> List[Instance]:
        """All flip-flop (sequential-cell) instances, in name order."""
        return sorted(
            (inst for inst in self.instances.values() if inst.is_sequential),
            key=lambda inst: inst.name,
        )

    def combinational_instances(self) -> List[Instance]:
        return sorted(
            (inst for inst in self.instances.values() if not inst.is_sequential),
            key=lambda inst: inst.name,
        )

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    @property
    def num_flip_flops(self) -> int:
        return sum(1 for i in self.instances.values() if i.is_sequential)

    def total_cell_area(self) -> float:
        """Sum of instance areas [m²]."""
        return sum(inst.cell.area for inst in self.instances.values())

    def port_nets(self) -> List[Net]:
        return [net for net in self.nets.values() if net.is_port]

    def validate(self, lint: bool = False) -> None:
        """Structural sanity: every net endpoint exists, no empty design.

        All offending nets are collected and reported in *one* exception
        message (not just the first), so a botched netlist edit shows
        its full blast radius at once.  ``lint=True`` additionally runs
        the gate-netlist lint pack (:mod:`repro.lint`) and raises with
        the structured diagnostics attached on any error-severity
        finding.
        """
        if not self.instances:
            raise NetlistError(f"netlist {self.name!r} has no instances")
        problems: List[str] = []
        for net in self.nets.values():
            missing = sorted({inst_name for inst_name in net.instances
                              if inst_name not in self.instances})
            if missing:
                names = ", ".join(repr(m) for m in missing)
                problems.append(
                    f"net {net.name!r} references missing instance(s) {names}")
        if problems:
            raise NetlistError(
                f"netlist {self.name!r} has {len(problems)} broken net(s):\n  "
                + "\n  ".join(problems)
            )
        if lint:
            from repro.lint import assert_lint_clean

            assert_lint_clean(self)

    def summary(self) -> str:
        return (f"{self.name}: {self.num_instances} instances "
                f"({self.num_flip_flops} flip-flops), {len(self.nets)} nets")
