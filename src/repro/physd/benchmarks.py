"""Synthetic ISCAS'89 / ITC'99 / or1200 benchmark netlists.

The paper evaluates 13 benchmark circuits.  Their RTL is not shipped
here; instead each circuit is generated synthetically with

* the **exact flip-flop count of the paper's Table III** (this is the
  quantity the system-level result is linear in),
* a combinational gate count taken from the published synthesis
  statistics of each benchmark (approximate — marked per entry),
* Rent-style wiring locality: gate inputs are drawn from recently
  created nets, and flip-flops are distributed across the creation
  order, which reproduces the local clustering that makes placed
  flip-flops land near each other — the effect the paper's Fig 9 shows
  and its merge script exploits.

The generator is fully seeded, so every run of the Table III flow sees
the same designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cells.library import CellLibrary, build_default_library
from repro.errors import NetlistError
from repro.physd.netlist import GateNetlist

#: Clock net name used by every generated design.
CLOCK_NET = "clk"


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of one benchmark circuit.

    ``num_flip_flops`` matches the paper's Table III exactly;
    ``num_gates`` is the approximate combinational cell count from
    published synthesis data for the benchmark; ``paper_merged_pairs``
    is the paper's reported number of 2-bit NV flip-flops (for
    side-by-side comparison with our placement's pairing count).
    """

    name: str
    family: str
    num_flip_flops: int
    num_gates: int
    num_inputs: int
    num_outputs: int
    paper_merged_pairs: int
    #: Paper Table III reference values (µm² / fJ) for reporting.
    paper_area_1bit: float = 0.0
    paper_energy_1bit: float = 0.0
    paper_area_2bit: float = 0.0
    paper_energy_2bit: float = 0.0


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec("s344", "iscas89", 15, 160, 9, 11, 5,
                      42.255, 42.375, 32.565, 37.06),
        BenchmarkSpec("s838", "iscas89", 32, 446, 34, 1, 12,
                      90.144, 90.4, 66.888, 77.644),
        BenchmarkSpec("s1423", "iscas89", 74, 657, 17, 5, 23,
                      208.458, 209.05, 163.884, 184.601),
        BenchmarkSpec("s5378", "iscas89", 176, 2779, 35, 49, 64,
                      495.792, 497.2, 371.76, 429.168),
        BenchmarkSpec("s13207", "iscas89", 627, 7951, 62, 152, 259,
                      1766.259, 1771.275, 1264.317, 1495.958),
        BenchmarkSpec("s38584", "iscas89", 1424, 19253, 38, 304, 473,
                      4011.408, 4022.8, 3094.734, 3520.001),
        BenchmarkSpec("s35932", "iscas89", 1728, 16065, 35, 320, 472,
                      4867.776, 4881.6, 3953.04, 4379.864),
        BenchmarkSpec("b14", "itc99", 215, 9767, 32, 54, 90,
                      605.655, 607.375, 431.235, 511.705),
        BenchmarkSpec("b15", "itc99", 416, 8367, 36, 70, 189,
                      1171.872, 1175.2, 805.59, 974.293),
        BenchmarkSpec("b17", "itc99", 1317, 30777, 37, 97, 542,
                      3709.989, 3720.525, 2659.593, 3144.379),
        BenchmarkSpec("b18", "itc99", 3020, 111241, 37, 23, 1260,
                      8507.34, 8531.5, 6065.46, 7192.12),
        BenchmarkSpec("b19", "itc99", 6042, 224624, 24, 30, 2530,
                      17020.314, 17068.65, 12117.174, 14379.26),
        BenchmarkSpec("or1200", "opencores", 2887, 26509, 385, 394, 1269,
                      8132.679, 8155.775, 5673.357, 6806.828),
    ]
}

#: Combinational cell mix (cell name → relative weight).
_GATE_MIX = (
    ("INV_X1", 0.18),
    ("BUF_X1", 0.10),
    ("NAND2_X1", 0.26),
    ("NOR2_X1", 0.18),
    ("NAND3_X1", 0.10),
    ("XOR2_X1", 0.06),
    ("AOI21_X1", 0.12),
)

#: Fan-in per combinational cell (pins minus output).
_FAN_IN = {
    "INV_X1": 1, "BUF_X1": 1, "NAND2_X1": 2, "NOR2_X1": 2,
    "NAND3_X1": 3, "XOR2_X1": 2, "AOI21_X1": 3,
}


def generate_benchmark(
    name: str,
    seed: int = 1,
    library: Optional[CellLibrary] = None,
    locality_window: float = 60.0,
) -> GateNetlist:
    """Generate the named benchmark as a seeded synthetic netlist.

    ``locality_window`` is the mean look-back distance (in nets) when a
    gate picks its inputs — small values make tightly clustered logic
    cones, large values approach uniformly random wiring.
    """
    try:
        spec = BENCHMARKS[name]
    except KeyError:
        raise NetlistError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None
    return generate_from_spec(spec, seed=seed, library=library,
                              locality_window=locality_window)


def generate_from_spec(
    spec: BenchmarkSpec,
    seed: int = 1,
    library: Optional[CellLibrary] = None,
    locality_window: float = 60.0,
) -> GateNetlist:
    """Generate a netlist from an arbitrary spec (see
    :func:`generate_benchmark`)."""
    if spec.num_flip_flops < 1:
        raise NetlistError("benchmark needs at least one flip-flop")
    if locality_window <= 0:
        raise NetlistError("locality_window must be positive")
    library = library or build_default_library()
    rng = np.random.default_rng(seed)
    netlist = GateNetlist(spec.name, library)

    netlist.add_net(CLOCK_NET, is_port=True)

    # Source nets grow as the design is built: primary inputs, flip-flop
    # outputs (sequential feedback is allowed), then gate outputs.
    sources: List[str] = []
    for i in range(spec.num_inputs):
        net = f"pi{i}"
        netlist.add_net(net, is_port=True)
        sources.append(net)

    # Flip-flops belong to *registers* (multi-bit buses of 4–32 flops
    # sharing control logic), the dominant structure of real RTL: all
    # flops of a register read from and feed the same logic region, so
    # the placer keeps them together — the clustering the paper's Fig 9
    # shows and its merge script exploits.
    ff_q_nets = [f"ff{j}_q" for j in range(spec.num_flip_flops)]
    for net in ff_q_nets:
        netlist.add_net(net)

    registers: List[List[int]] = []
    j = 0
    while j < spec.num_flip_flops:
        size = min(spec.num_flip_flops - j, int(rng.integers(4, 33)))
        registers.append(list(range(j, j + size)))
        j += size

    # Each register is anchored at a gate index; its Q nets enter the
    # source pool there, so surrounding logic consumes them locally.
    anchor_gates = np.sort(rng.integers(0, max(1, spec.num_gates),
                                        size=len(registers)))
    injection: Dict[int, List[int]] = {}
    for g, anchor in enumerate(anchor_gates):
        injection.setdefault(int(anchor), []).append(g)
    register_source_pos: Dict[int, int] = {}

    gate_names = [g for g, _ in _GATE_MIX]
    gate_weights = np.array([w for _, w in _GATE_MIX])
    gate_weights = gate_weights / gate_weights.sum()
    gate_choices = rng.choice(len(gate_names), size=spec.num_gates,
                              p=gate_weights)
    for k in range(spec.num_gates):
        for g in injection.get(k, ()):
            register_source_pos[g] = len(sources)
            sources.extend(ff_q_nets[j] for j in registers[g])
        cell_name = gate_names[int(gate_choices[k])]
        fan_in = _FAN_IN[cell_name]
        out_net = f"n{k}"
        inputs = []
        for _ in range(fan_in):
            # Look back a geometric distance from the frontier.
            back = int(rng.exponential(locality_window)) + 1
            idx = max(0, len(sources) - back)
            inputs.append(sources[idx])
        netlist.add_instance(f"g{k}", cell_name, inputs + [out_net])
        sources.append(out_net)
    for g in injection.get(spec.num_gates, ()):  # anchors at the very end
        register_source_pos[g] = len(sources)
        sources.extend(ff_q_nets[j] for j in registers[g])

    # D inputs: sampled around the register's own source-pool position.
    # Each flip-flop also carries the structure that makes real scan
    # designs cluster: a scan-chain input from the previous flop's Q
    # (ISCAS'89/ITC'99 evaluations are full-scan netlists) and a shared
    # per-register enable net.
    total_sources = len(sources)
    for g, members in enumerate(registers):
        base = register_source_pos.get(g, total_sources - 1)
        enable_net = f"reg{g}_en"
        netlist.add_net(enable_net)
        for j in members:
            offset = int(rng.exponential(locality_window / 2)) \
                - int(locality_window / 4)
            idx = min(total_sources - 1, max(0, base + offset))
            nets = [sources[idx], CLOCK_NET, enable_net]
            if j > 0:
                nets.append(ff_q_nets[j - 1])  # scan-in from the previous flop
            nets.append(ff_q_nets[j])
            netlist.add_instance(f"ff{j}", "DFF_X1", nets)

    # Primary outputs tap late nets.
    for i in range(spec.num_outputs):
        back = int(rng.exponential(locality_window)) + 1
        idx = max(0, len(sources) - back)
        netlist.add_net(sources[idx], is_port=True)

    netlist.validate()
    return netlist
