"""Clock-network substrate: clustering-based clock tree synthesis.

The paper positions its NV sharing next to the established *CMOS*
multi-bit flip-flop technique, whose win is clock-network power: merging
flip-flops means fewer clock sinks, shorter clock wiring, fewer local
buffers.  This module provides the clock-side accounting so the
combined optimisation (CMOS-MBFF clock sharing + NV-MBFF shadow sharing,
paper §III: "our proposed multi-bit non-volatile component can easily be
integrated in such designs") can be evaluated.

The tree is built by recursive nearest-neighbour pairing (a simplified
method of means-and-medians): sinks merge pairwise bottom-up until one
root remains.  Wire length, buffer count and switched capacitance per
cycle follow from the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import PlacementError
from repro.physd.placement.result import Placement

#: Clock wire capacitance per length [F/m] (≈ 0.2 fF/µm).
CLOCK_WIRE_CAP_PER_M = 0.2e-9
#: Input capacitance of one flip-flop clock pin [F].
CLOCK_PIN_CAP = 0.7e-15
#: Input capacitance of one clock buffer [F].
BUFFER_CAP = 1.2e-15
#: Sinks per leaf buffer before another buffer level is inserted.
BUFFER_FANOUT = 16


@dataclass
class ClockNode:
    """One node of the clock tree (leaf = sink, internal = merge point)."""

    x: float
    y: float
    children: List["ClockNode"] = field(default_factory=list)
    sink_name: Optional[str] = None

    @property
    def is_sink(self) -> bool:
        return self.sink_name is not None

    def subtree_wirelength(self) -> float:
        """Total Manhattan wirelength below (and including edges to)
        this node's children."""
        total = 0.0
        for child in self.children:
            total += abs(child.x - self.x) + abs(child.y - self.y)
            total += child.subtree_wirelength()
        return total

    def sink_count(self) -> int:
        if self.is_sink:
            return 1
        return sum(child.sink_count() for child in self.children)


@dataclass
class ClockTree:
    """A synthesised clock tree with its cost summary."""

    root: ClockNode
    num_sinks: int
    wirelength: float
    num_buffers: int

    def switched_capacitance(self) -> float:
        """Capacitance toggled per clock edge [F]."""
        return (self.wirelength * CLOCK_WIRE_CAP_PER_M
                + self.num_sinks * CLOCK_PIN_CAP
                + self.num_buffers * BUFFER_CAP)

    def power(self, frequency: float, vdd: float = 1.1) -> float:
        """Dynamic clock power at the given frequency [W]
        (two edges per cycle → C·V²·f)."""
        if frequency <= 0:
            raise PlacementError("frequency must be positive")
        return self.switched_capacitance() * vdd * vdd * frequency


def _pair_level(nodes: List[ClockNode]) -> List[ClockNode]:
    """Merge nodes pairwise by nearest neighbour; odd node passes through."""
    if len(nodes) <= 1:
        return nodes
    points = np.array([[n.x, n.y] for n in nodes])
    tree = cKDTree(points)
    used = [False] * len(nodes)
    merged: List[ClockNode] = []
    # Greedy nearest-available pairing in index order keeps this O(n log n).
    for i in range(len(nodes)):
        if used[i]:
            continue
        distances, indices = tree.query(points[i], k=min(8, len(nodes)))
        partner = -1
        for j in np.atleast_1d(indices):
            if j != i and not used[int(j)]:
                partner = int(j)
                break
        if partner < 0:
            # Fall back to a linear scan (all near neighbours were taken).
            for j in range(len(nodes)):
                if j != i and not used[j]:
                    partner = j
                    break
        if partner < 0:
            merged.append(nodes[i])
            used[i] = True
            continue
        used[i] = used[partner] = True
        a, b = nodes[i], nodes[partner]
        merged.append(ClockNode(x=(a.x + b.x) / 2.0, y=(a.y + b.y) / 2.0,
                                children=[a, b]))
    return merged


def synthesize_clock_tree(sinks: Dict[str, Tuple[float, float]]) -> ClockTree:
    """Build a clock tree over named sink positions [m]."""
    if not sinks:
        raise PlacementError("clock tree needs at least one sink")
    nodes = [ClockNode(x=x, y=y, sink_name=name)
             for name, (x, y) in sorted(sinks.items())]
    num_sinks = len(nodes)
    while len(nodes) > 1:
        nodes = _pair_level(nodes)
    root = nodes[0]
    wirelength = root.subtree_wirelength()
    num_buffers = max(1, -(-num_sinks // BUFFER_FANOUT))
    return ClockTree(root=root, num_sinks=num_sinks, wirelength=wirelength,
                     num_buffers=num_buffers)


def clock_tree_for_placement(
    placement: Placement,
    merged_pairs: Optional[Sequence[Tuple[str, str]]] = None,
) -> ClockTree:
    """Clock tree over a placed design's flip-flops.

    With ``merged_pairs`` given, each pair presents a *single* clock sink
    at its midpoint — the CMOS multi-bit flip-flop integration the paper
    points to: the shared cell has one clock pin serving both bits.
    """
    centers = placement.flip_flop_centers()
    sinks: Dict[str, Tuple[float, float]] = {
        name: (point.x, point.y) for name, point in centers.items()
    }
    if merged_pairs:
        for a, b in merged_pairs:
            if a not in sinks or b not in sinks:
                raise PlacementError(f"pair ({a}, {b}) references unknown sinks")
            ca = sinks.pop(a)
            cb = sinks.pop(b)
            sinks[f"{a}+{b}"] = ((ca[0] + cb[0]) / 2.0, (ca[1] + cb[1]) / 2.0)
    return synthesize_clock_tree(sinks)
