"""Probabilistic routing-congestion estimation.

Routability is the other axis a placement (and an ECO like the NV
replacement) must respect.  This estimator spreads each net's expected
horizontal/vertical wiring uniformly over its bounding box — the classic
probabilistic congestion map (Lou/Westra style, uniform variant) — and
compares the per-bin demand against the routing capacity of the metal
stack, yielding a max/average utilisation and an overflow count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import PlacementError
from repro.physd.placement.result import HIGH_FANOUT_LIMIT, Placement

#: Horizontal routing tracks available per metre of bin height (two
#: horizontal layers at a 0.14 µm pitch).
H_TRACKS_PER_M = 2.0 / 0.14e-6
#: Vertical routing tracks per metre of bin width.
V_TRACKS_PER_M = 2.0 / 0.14e-6


@dataclass
class CongestionMap:
    """Per-bin routing demand vs capacity."""

    bins_x: int
    bins_y: int
    #: Demand in track-lengths per bin, horizontal and vertical.
    horizontal: np.ndarray
    vertical: np.ndarray
    #: Capacity per bin (same unit).
    h_capacity: float
    v_capacity: float

    def utilization(self) -> np.ndarray:
        """Per-bin worst-direction utilisation."""
        h = self.horizontal / self.h_capacity
        v = self.vertical / self.v_capacity
        return np.maximum(h, v)

    @property
    def max_utilization(self) -> float:
        return float(self.utilization().max())

    @property
    def mean_utilization(self) -> float:
        return float(self.utilization().mean())

    @property
    def overflow_bins(self) -> int:
        return int((self.utilization() > 1.0).sum())

    def report(self) -> str:
        return (f"congestion: {self.bins_x}x{self.bins_y} bins, "
                f"max {self.max_utilization:.2f}, "
                f"mean {self.mean_utilization:.2f}, "
                f"overflow bins {self.overflow_bins}")


def estimate_congestion(
    placement: Placement,
    bins_x: int = 16,
    bins_y: int = 16,
) -> CongestionMap:
    """Build the probabilistic congestion map of a placement."""
    if bins_x < 1 or bins_y < 1:
        raise PlacementError("bin counts must be positive")
    die = placement.floorplan.die
    bin_w = die.width / bins_x
    bin_h = die.height / bins_y

    horizontal = np.zeros((bins_y, bins_x))
    vertical = np.zeros((bins_y, bins_x))

    for net in placement.netlist.nets.values():
        if not 2 <= len(net.instances) <= HIGH_FANOUT_LIMIT:
            continue
        xs: List[float] = []
        ys: List[float] = []
        for inst_name in net.instances:
            center = placement.center(inst_name)
            xs.append(center.x)
            ys.append(center.y)
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        # Expected wirelength = HPWL, split by direction, spread uniformly
        # over the bounding box's bins.
        bx0 = min(bins_x - 1, max(0, int((x0 - die.x_min) / bin_w)))
        bx1 = min(bins_x - 1, max(0, int((x1 - die.x_min) / bin_w)))
        by0 = min(bins_y - 1, max(0, int((y0 - die.y_min) / bin_h)))
        by1 = min(bins_y - 1, max(0, int((y1 - die.y_min) / bin_h)))
        span_bins = (bx1 - bx0 + 1) * (by1 - by0 + 1)
        h_demand = (x1 - x0) / span_bins
        v_demand = (y1 - y0) / span_bins
        horizontal[by0:by1 + 1, bx0:bx1 + 1] += h_demand
        vertical[by0:by1 + 1, bx0:bx1 + 1] += v_demand

    h_capacity = H_TRACKS_PER_M * bin_h * bin_w
    v_capacity = V_TRACKS_PER_M * bin_w * bin_h
    return CongestionMap(bins_x=bins_x, bins_y=bins_y,
                         horizontal=horizontal, vertical=vertical,
                         h_capacity=h_capacity, v_capacity=v_capacity)
