"""Power-delivery analysis: IR drop on the VDD grid during wake-up.

The paper's restore happens *in parallel across every flip-flop* — at
wake-up, thousands of NV latches draw their sensing current at once, on
a rail that is itself still stabilising.  This module quantifies the
rail's IR drop with a real resistive-mesh solve (reusing
:mod:`repro.spice`): the die is covered by an N×N grid of VDD straps,
each placed cell injects its current demand into its bin, and pads on
the die boundary hold the supply.

The analysis exposes a property of the proposed design the paper does
not discuss: the 2-bit cell's *sequential* restore (lower pair first,
upper pair after) naturally staggers the wake-up current of merged
flip-flop pairs, roughly halving the peak demand versus an all-1-bit
design where every latch senses simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.physd.placement.result import Placement
from repro.spice.analysis.dc import solve_dc
from repro.spice.netlist import Circuit

#: Resistance of one grid-strap segment [Ω] (M5/M6-class strap per bin).
STRAP_RESISTANCE = 2.0
#: Pad (bump + package) resistance [Ω].
PAD_RESISTANCE = 0.05
#: Restore-phase sensing current drawn by one NV latch [A].
RESTORE_CURRENT_PER_LATCH = 20e-6


@dataclass
class IRDropResult:
    """Solved grid state."""

    vdd: float
    #: Node voltages of the mesh, shape (ny, nx).
    grid_voltages: np.ndarray
    #: Total current drawn [A].
    total_current: float

    @property
    def worst_drop(self) -> float:
        """Largest VDD droop anywhere on the grid [V]."""
        return float(self.vdd - self.grid_voltages.min())

    @property
    def worst_drop_fraction(self) -> float:
        return self.worst_drop / self.vdd

    def report(self) -> str:
        return (f"IR drop: worst {self.worst_drop * 1e3:.2f} mV "
                f"({100 * self.worst_drop_fraction:.2f} % of VDD), "
                f"total draw {self.total_current * 1e3:.3f} mA")


def _bin_of(x: float, y: float, die, nx: int, ny: int) -> Tuple[int, int]:
    col = min(nx - 1, max(0, int((x - die.x_min) / die.width * nx)))
    row = min(ny - 1, max(0, int((y - die.y_min) / die.height * ny)))
    return row, col


def solve_ir_drop(
    placement: Placement,
    bin_currents: np.ndarray,
    vdd: float = 1.1,
    strap_resistance: float = STRAP_RESISTANCE,
) -> IRDropResult:
    """Solve the mesh with the given per-bin current demand [A].

    ``bin_currents`` has shape (ny, nx).  Pads sit at the four die
    corners and edge midpoints (eight total), as in a wire-bonded macro.
    """
    ny, nx = bin_currents.shape
    if nx < 2 or ny < 2:
        raise PlacementError("grid must be at least 2x2")
    if np.any(bin_currents < 0):
        raise PlacementError("bin currents must be non-negative")

    circuit = Circuit("power-grid")

    def node(row: int, col: int) -> str:
        return f"g{row}_{col}"

    for row in range(ny):
        for col in range(nx):
            if col + 1 < nx:
                circuit.add_resistor(f"rh{row}_{col}", node(row, col),
                                     node(row, col + 1), strap_resistance)
            if row + 1 < ny:
                circuit.add_resistor(f"rv{row}_{col}", node(row, col),
                                     node(row + 1, col), strap_resistance)

    pad_bins = {
        (0, 0), (0, nx - 1), (ny - 1, 0), (ny - 1, nx - 1),
        (0, nx // 2), (ny - 1, nx // 2), (ny // 2, 0), (ny // 2, nx - 1),
    }
    for k, (row, col) in enumerate(sorted(pad_bins)):
        circuit.add_vsource(f"pad{k}", f"pad{k}_n", "0", vdd)
        circuit.add_resistor(f"rpad{k}", f"pad{k}_n", node(row, col),
                             PAD_RESISTANCE)

    for row in range(ny):
        for col in range(nx):
            current = float(bin_currents[row, col])
            if current > 0.0:
                # Sink: current flows from the grid node to ground.
                circuit.add_isource(f"i{row}_{col}", "0", node(row, col),
                                    current)

    result = solve_dc(circuit)
    grid = np.empty((ny, nx))
    for row in range(ny):
        for col in range(nx):
            grid[row, col] = result.voltage(node(row, col))
    return IRDropResult(vdd=vdd, grid_voltages=grid,
                        total_current=float(bin_currents.sum()))


def restore_rush_currents(
    placement: Placement,
    merged_pairs: Optional[list] = None,
    nx: int = 12,
    ny: int = 12,
    restore_current: float = RESTORE_CURRENT_PER_LATCH,
) -> Dict[str, np.ndarray]:
    """Per-bin wake-up current maps [A] for the two restore disciplines.

    * ``"simultaneous"`` — every flip-flop's NV latch senses at once
      (the all-1-bit back-up): one ``restore_current`` per flop.
    * ``"staggered"`` — merged pairs restore sequentially (the proposed
      2-bit cells read their lower pair first): during the first half,
      each 2-bit cell draws one sensing current *for the pair* while the
      unmerged flops draw theirs — the peak-phase map.
    """
    die = placement.floorplan.die
    simultaneous = np.zeros((ny, nx))
    staggered = np.zeros((ny, nx))
    merged: set = set()
    for pair in (merged_pairs or []):
        merged.update(pair)

    for inst in placement.netlist.sequential_instances():
        center = placement.center(inst.name)
        row, col = _bin_of(center.x, center.y, die, nx, ny)
        simultaneous[row, col] += restore_current
        # Staggered: a merged flop shares one sensing current with its
        # partner (the shared SA reads one pair at a time).
        staggered[row, col] += (restore_current / 2.0
                                if inst.name in merged else restore_current)
    return {"simultaneous": simultaneous, "staggered": staggered}
