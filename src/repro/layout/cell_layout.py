"""Column-level cell plans for the NV latch layouts (paper Fig 8).

A :class:`CellPlan` is an ordered sequence of columns over a PMOS row
and an NMOS row — the abstraction level of a standard-cell designer's
stick diagram.  Column kinds:

* ``DEVICE``  — one poly pitch holding up to one PMOS and one NMOS,
* ``BREAK``   — diffusion break (half pitch),
* ``TAP``     — well/substrate tap column,
* ``MTJ_PAD`` — landing pad for the via stack of one MTJ (the junction
  itself sits in the BEOL above the cell).

Width = Σ column pitches + edge margins; height = 12 tracks.  With the
40 nm rule set this reproduces the paper's cell dimensions:

* standard 1-bit NV component: 12 pitches → 1.68 µm wide, 2.82 µm²
  (paper: 1.675 µm / 2.82 µm² per bit),
* proposed 2-bit NV component: 16 pitches → 2.24 µm wide, 3.76 µm²
  (paper: 3.696 µm²), a ≈ 33 % saving over two 1-bit cells — the
  paper reports ≈ 34 %.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import LayoutError
from repro.layout.design_rules import DesignRules, RULES_40NM
from repro.units import to_microns, to_square_microns


class ColumnKind(enum.Enum):
    DEVICE = "device"
    BREAK = "break"
    TAP = "tap"
    MTJ_PAD = "mtj_pad"


@dataclass(frozen=True)
class Column:
    """One vertical slice of the cell."""

    kind: ColumnKind
    pmos: Optional[str] = None
    nmos: Optional[str] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind is not ColumnKind.DEVICE and (self.pmos or self.nmos):
            raise LayoutError(
                f"column kind {self.kind.value!r} cannot hold transistors"
            )


@dataclass
class CellPlan:
    """A planned cell layout: columns plus the rule set."""

    name: str
    columns: List[Column]
    rules: DesignRules = field(default_factory=lambda: RULES_40NM)

    def _column_pitches(self, column: Column) -> float:
        if column.kind is ColumnKind.DEVICE:
            return 1.0
        if column.kind is ColumnKind.BREAK:
            return self.rules.break_pitch_fraction
        if column.kind is ColumnKind.TAP:
            return self.rules.tap_pitch_fraction
        return self.rules.mtj_pad_pitch_fraction

    @property
    def width(self) -> float:
        """Cell width [m]."""
        pitches = sum(self._column_pitches(c) for c in self.columns)
        pitches += 2.0 * self.rules.edge_margin_fraction
        return pitches * self.rules.poly_pitch

    @property
    def height(self) -> float:
        """Cell height [m] (track count × track pitch)."""
        return self.rules.cell_height

    @property
    def area(self) -> float:
        """Cell area [m²]."""
        return self.width * self.height

    def device_names(self, row: str) -> List[str]:
        """Transistor names placed in the 'p' or 'n' row, in column order."""
        if row not in ("p", "n"):
            raise LayoutError(f"row must be 'p' or 'n', got {row!r}")
        names = []
        for column in self.columns:
            name = column.pmos if row == "p" else column.nmos
            if name:
                names.append(name)
        return names

    def transistor_count(self) -> int:
        return len(self.device_names("p")) + len(self.device_names("n"))

    def mtj_count(self) -> int:
        return sum(1 for c in self.columns if c.kind is ColumnKind.MTJ_PAD)

    def validate_against(self, expected_pmos: Sequence[str],
                         expected_nmos: Sequence[str]) -> None:
        """Check the plan places exactly the given transistors, once each."""
        placed_p = self.device_names("p")
        placed_n = self.device_names("n")
        for label, placed, expected in (("PMOS", placed_p, expected_pmos),
                                        ("NMOS", placed_n, expected_nmos)):
            if sorted(placed) != sorted(expected):
                missing = set(expected) - set(placed)
                extra = set(placed) - set(expected)
                raise LayoutError(
                    f"{self.name}: {label} mismatch — missing {sorted(missing)}, "
                    f"unexpected {sorted(extra)}"
                )

    # -- rendering -----------------------------------------------------------

    def to_ascii(self) -> str:
        """Stick-diagram rendering (one character cell per column)."""
        def cell_text(column: Column, row: str) -> str:
            if column.kind is ColumnKind.BREAK:
                return "|"
            if column.kind is ColumnKind.TAP:
                return "T"
            if column.kind is ColumnKind.MTJ_PAD:
                return "(M)" if row == "mid" else "   "
            name = column.pmos if row == "p" else column.nmos if row == "n" else ""
            return name or "."

        widths = []
        for column in self.columns:
            texts = [cell_text(column, r) for r in ("p", "mid", "n")]
            widths.append(max(len(t) for t in texts) or 1)

        def render_row(row: str) -> str:
            parts = [cell_text(c, row).center(w) for c, w in zip(self.columns, widths)]
            return " ".join(parts)

        header = (f"{self.name}: {to_microns(self.width):.2f} x "
                  f"{to_microns(self.height):.2f} um "
                  f"({to_square_microns(self.area):.3f} um^2, "
                  f"{self.rules.tracks} tracks)")
        return "\n".join([
            header,
            "VDD " + "=" * (sum(widths) + len(widths) - 1),
            "P   " + render_row("p"),
            "MTJ " + render_row("mid"),
            "N   " + render_row("n"),
            "GND " + "=" * (sum(widths) + len(widths) - 1),
        ])

    def to_svg(self, scale: float = 240e6) -> str:
        """Simple SVG rendering (colour-coded columns over well bands)."""
        width_px = self.width * scale
        height_px = self.height * scale
        margin = 22.0
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{width_px + 2 * margin:.0f}" '
            f'height="{height_px + 2 * margin + 18:.0f}">',
            f'<text x="{margin}" y="14" font-size="12" font-family="monospace">'
            f'{self.name} — {to_square_microns(self.area):.3f} um^2</text>',
            f'<g transform="translate({margin},{margin + 4})">',
            # Well bands.
            f'<rect x="0" y="0" width="{width_px:.1f}" height="{height_px / 2:.1f}" '
            f'fill="#fde9c8" stroke="none"/>',
            f'<rect x="0" y="{height_px / 2:.1f}" width="{width_px:.1f}" '
            f'height="{height_px / 2:.1f}" fill="#d7e8f7" stroke="none"/>',
        ]
        fills = {
            ColumnKind.DEVICE: "#7f7f7f",
            ColumnKind.BREAK: "#ffffff",
            ColumnKind.TAP: "#50b65a",
            ColumnKind.MTJ_PAD: "#b4543c",
        }
        x = self.rules.edge_margin_fraction * self.rules.poly_pitch * scale
        for column in self.columns:
            col_w = self._column_pitches(column) * self.rules.poly_pitch * scale
            fill = fills[column.kind]
            if column.kind is ColumnKind.DEVICE:
                for row, name in (("p", column.pmos), ("n", column.nmos)):
                    if not name:
                        continue
                    y0 = 0.12 * height_px if row == "p" else 0.62 * height_px
                    parts.append(
                        f'<rect x="{x + 0.2 * col_w:.1f}" y="{y0:.1f}" '
                        f'width="{0.6 * col_w:.1f}" height="{0.26 * height_px:.1f}" '
                        f'fill="{fill}" stroke="#333"><title>{name}</title></rect>'
                    )
            elif column.kind is ColumnKind.MTJ_PAD:
                cy = height_px / 2
                parts.append(
                    f'<circle cx="{x + col_w / 2:.1f}" cy="{cy:.1f}" '
                    f'r="{0.3 * col_w:.1f}" fill="{fill}" stroke="#333">'
                    f'<title>{column.label or "MTJ"}</title></circle>'
                )
            else:
                parts.append(
                    f'<rect x="{x:.1f}" y="0" width="{col_w:.1f}" '
                    f'height="{height_px:.1f}" fill="{fill}" opacity="0.5" '
                    f'stroke="none"/>'
                )
            x += col_w
        parts.append(f'<rect x="0" y="0" width="{width_px:.1f}" '
                     f'height="{height_px:.1f}" fill="none" stroke="#000"/>')
        parts.append("</g></svg>")
        return "\n".join(parts)


def plan_standard_1bit(rules: DesignRules = RULES_40NM) -> CellPlan:
    """Column plan of the standard 1-bit NV component (11 transistors,
    2 MTJs) — matches the device names of
    :func:`repro.cells.nvlatch_1bit.build_standard_latch`."""
    cols = [
        Column(ColumnKind.TAP),
        Column(ColumnKind.DEVICE, pmos="pc1", nmos="nfoot"),
        Column(ColumnKind.DEVICE, pmos="p1", nmos="n1"),
        Column(ColumnKind.DEVICE, pmos="p2", nmos="n2"),
        Column(ColumnKind.DEVICE, pmos="pc2"),
        Column(ColumnKind.BREAK),
        Column(ColumnKind.DEVICE, pmos="tg1.mp", nmos="tg1.mn"),
        Column(ColumnKind.DEVICE, pmos="tg2.mp", nmos="tg2.mn"),
        Column(ColumnKind.BREAK),
        Column(ColumnKind.MTJ_PAD, label="MTJ1"),
        Column(ColumnKind.MTJ_PAD, label="MTJ2"),
        Column(ColumnKind.TAP),
    ]
    return CellPlan("standard-1bit-nv", cols, rules)


def plan_proposed_2bit(rules: DesignRules = RULES_40NM) -> CellPlan:
    """Column plan of the proposed 2-bit NV component (16 transistors,
    4 MTJs) — matches :func:`repro.cells.nvlatch_2bit.build_proposed_latch`."""
    cols = [
        Column(ColumnKind.TAP),
        Column(ColumnKind.DEVICE, pmos="pcv1", nmos="pcg1"),
        Column(ColumnKind.DEVICE, pmos="p1", nmos="n1"),
        Column(ColumnKind.DEVICE, pmos="p2", nmos="n2"),
        Column(ColumnKind.DEVICE, pmos="pcv2", nmos="pcg2"),
        Column(ColumnKind.DEVICE, pmos="p4", nmos="n4"),
        Column(ColumnKind.BREAK),
        Column(ColumnKind.DEVICE, pmos="t1.mp", nmos="t1.mn"),
        Column(ColumnKind.DEVICE, pmos="t2.mp", nmos="t2.mn"),
        Column(ColumnKind.DEVICE, pmos="p3", nmos="n3"),
        Column(ColumnKind.BREAK),
        Column(ColumnKind.MTJ_PAD, label="MTJ1"),
        Column(ColumnKind.MTJ_PAD, label="MTJ2"),
        Column(ColumnKind.MTJ_PAD, label="MTJ3"),
        Column(ColumnKind.MTJ_PAD, label="MTJ4"),
        Column(ColumnKind.TAP),
    ]
    return CellPlan("proposed-2bit-nv", cols, rules)


def standard_pair_area(rules: DesignRules = RULES_40NM) -> float:
    """Area of *two* standard 1-bit NV components placed side by side,
    including the minimum inter-cell spacing — the paper's Table II
    composite ("twice the width of the actual layout block" plus the
    "minimum spacing margin")."""
    plan = plan_standard_1bit(rules)
    return (2.0 * plan.width + rules.cell_spacing) * plan.height
