"""Track-based standard-cell layout generation.

Substitutes for the Cadence Virtuoso layouts of the paper (12-track
cells, metal up to M2): cells are planned as ordered transistor columns
over a P row and an N row, with diffusion sharing, breaks, well taps and
MTJ landing pads; the cell width follows from the column count and the
poly pitch, the height from the track count.  The module reproduces the
paper's Fig 8 (proposed 2-bit cell layout) and the cell areas of
Table II.
"""

from repro.layout.design_rules import DesignRules, RULES_40NM
from repro.layout.geometry import Point, Rect
from repro.layout.cell_layout import (
    CellPlan,
    Column,
    ColumnKind,
    plan_standard_1bit,
    plan_proposed_2bit,
    standard_pair_area,
)

__all__ = [
    "DesignRules",
    "RULES_40NM",
    "Point",
    "Rect",
    "CellPlan",
    "Column",
    "ColumnKind",
    "plan_standard_1bit",
    "plan_proposed_2bit",
    "standard_pair_area",
]
