"""Simplified 40 nm-class design rules for cell planning.

The numbers are chosen to be representative of a 40 nm low-power process
with a 12-track standard-cell architecture (M2 routing pitch 140 nm →
cell height 1.68 µm), and they reproduce the paper's reported cell
dimensions: the standard 1-bit NV component comes out ≈ 1.68 µm wide
(the paper's 3.35 µm merge threshold is "twice the width of the NV
component") and the proposed 2-bit component ≈ 2.2 µm wide
(area 3.696 µm²).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LayoutError
from repro.units import MICRO


@dataclass(frozen=True)
class DesignRules:
    """Geometric rules used by the cell planner (all lengths in metres)."""

    #: Routing-track pitch (M2) defining the cell height grid.
    track_pitch: float = 0.14 * MICRO
    #: Standard-cell height in tracks (the paper lays out 12-track cells).
    tracks: int = 12
    #: Transistor column pitch (contacted poly pitch).
    poly_pitch: float = 0.14 * MICRO
    #: Extra width of a diffusion-break column (fraction of a poly pitch).
    break_pitch_fraction: float = 0.5
    #: Width of a well-tap column in poly pitches.
    tap_pitch_fraction: float = 1.0
    #: Width of an MTJ landing-pad column in poly pitches (the junction
    #: itself sits in the BEOL above the cell; the pad carries the via
    #: stack down to the active area).
    mtj_pad_pitch_fraction: float = 1.0
    #: Cell-edge margin on each side (fraction of a poly pitch).
    edge_margin_fraction: float = 0.5
    #: Minimum spacing between two abutted NV cells (used for the
    #: "two standard 1-bit" composite area of Table II).
    cell_spacing: float = 0.0

    def __post_init__(self) -> None:
        if self.track_pitch <= 0 or self.poly_pitch <= 0:
            raise LayoutError("pitches must be positive")
        if self.tracks < 6:
            raise LayoutError(f"unreasonably short cell: {self.tracks} tracks")
        for name in ("break_pitch_fraction", "tap_pitch_fraction",
                     "mtj_pad_pitch_fraction", "edge_margin_fraction"):
            if getattr(self, name) < 0:
                raise LayoutError(f"{name} must be non-negative")

    @property
    def cell_height(self) -> float:
        """Standard-cell (row) height [m]."""
        return self.tracks * self.track_pitch


#: Rule set used throughout the reproduction.
RULES_40NM = DesignRules()
