"""Minimal 2-D geometry primitives for layout and floorplan work."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import LayoutError


@dataclass(frozen=True)
class Point:
    """A point in the layout plane [m]."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance [m]."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle (lower-left / upper-right corners) [m]."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise LayoutError(
                f"degenerate rectangle: ({self.x_min}, {self.y_min}) .. "
                f"({self.x_max}, {self.y_max})"
            )

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def contains(self, point: Point, tolerance: float = 0.0) -> bool:
        return (self.x_min - tolerance <= point.x <= self.x_max + tolerance
                and self.y_min - tolerance <= point.y <= self.y_max + tolerance)

    def contains_rect(self, other: "Rect", tolerance: float = 1e-12) -> bool:
        return (self.x_min - tolerance <= other.x_min
                and other.x_max <= self.x_max + tolerance
                and self.y_min - tolerance <= other.y_min
                and other.y_max <= self.y_max + tolerance)

    def overlaps(self, other: "Rect") -> bool:
        """True when the interiors intersect (shared edges don't count)."""
        return not (other.x_max <= self.x_min or self.x_max <= other.x_min
                    or other.y_max <= self.y_min or self.y_max <= other.y_min)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x_min + dx, self.y_min + dy,
                    self.x_max + dx, self.y_max + dy)

    @staticmethod
    def from_size(x: float, y: float, width: float, height: float) -> "Rect":
        if width < 0 or height < 0:
            raise LayoutError(f"negative size: {width} x {height}")
        return Rect(x, y, x + width, y + height)
