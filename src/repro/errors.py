"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single handler while still
distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class DeviceModelError(ReproError):
    """Invalid device parameters or an operating point outside model validity."""


class NetlistError(ReproError):
    """Malformed circuit description (unknown node, duplicate element, ...)."""


class ConvergenceError(ReproError):
    """The nonlinear solver failed to converge."""

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class AnalysisError(ReproError):
    """An analysis was configured inconsistently or produced no usable result."""


class LayoutError(ReproError):
    """Design-rule violation or an unrealisable cell plan."""


class PlacementError(ReproError):
    """Placement failure: core overflow, unlegalisable design, ..."""


class DefFormatError(ReproError):
    """Malformed DEF content encountered while parsing."""


class MergeError(ReproError):
    """Invalid multi-bit merge request (unknown cell, conflicting pairs, ...)."""
