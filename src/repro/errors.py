"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single handler while still
distinguishing the subsystem that failed.

Errors may carry structured lint findings: when a failure was predicted
or explained by the static-analysis subsystem (:mod:`repro.lint`), the
raiser attaches the relevant :class:`~repro.lint.diagnostics.Diagnostic`
records via the ``diagnostics`` keyword, so tooling can show the
root-cause ERC report instead of a bare solver message.

Errors also carry observability context: while a tracing session is
active (:mod:`repro.obs`), every :class:`ReproError` captures the span
stack open at construction time (``span_stack``) and a snapshot of the
metrics registry (``metrics_snapshot``) — a Newton non-convergence deep
inside a Table II characterisation then reports *which* phase of *which*
flow it died in, with the last solver counters attached.  With
observability off (the default), both fields are empty and the capture
costs one cached import plus one boolean test.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Optional, Sequence, Tuple


def _observability_context() -> Tuple[Tuple[str, ...], Optional[dict]]:
    """Active span stack + metrics snapshot, or ``((), None)`` when
    observability is off or not importable (partial installs)."""
    try:
        from repro.obs import error_context
    except ImportError:  # pragma: no cover - obs is part of the package
        return (), None
    return error_context()


def suggest_names(name: str, candidates: Iterable[str], limit: int = 3) -> str:
    """A '; did you mean ...?' suffix naming close matches of ``name``
    among ``candidates`` (empty string when nothing is close) — appended
    to lookup-failure messages so typos are one glance to fix."""
    matches = difflib.get_close_matches(name, list(candidates), n=limit)
    if not matches:
        return ""
    return "; did you mean " + ", ".join(repr(m) for m in matches) + "?"


class ReproError(Exception):
    """Base class for all library errors.

    ``diagnostics`` optionally carries the lint findings that explain or
    predicted the failure (a tuple of
    :class:`~repro.lint.diagnostics.Diagnostic`).

    ``span_stack`` / ``metrics_snapshot`` are captured automatically at
    construction while an observability session is active: the names of
    the spans the raiser was inside (outermost first) and the metrics
    registry at the moment of failure.
    """

    def __init__(self, *args, diagnostics: Sequence = ()):
        super().__init__(*args)
        self.diagnostics: Tuple = tuple(diagnostics)
        self.span_stack, self.metrics_snapshot = _observability_context()

    def context_report(self) -> str:
        """Human-readable 'where did this die' summary from the captured
        observability context; empty string when none was captured."""
        if not self.span_stack and self.metrics_snapshot is None:
            return ""
        lines = []
        if self.span_stack:
            lines.append("span stack: " + " > ".join(self.span_stack))
        if self.metrics_snapshot:
            counters = self.metrics_snapshot.get("counters", {})
            if counters:
                lines.append("counters at failure: " + ", ".join(
                    f"{name}={value:g}" for name, value in counters.items()))
        return "\n".join(lines)


class DeviceModelError(ReproError):
    """Invalid device parameters or an operating point outside model validity."""


class NetlistError(ReproError):
    """Malformed circuit description (unknown node, duplicate element, ...)."""


class ConvergenceError(ReproError):
    """The nonlinear solver failed to converge.

    ``state`` optionally carries the last Newton iterate (the full MNA
    solution vector) so wall-clock-timeout aborts hand the caller the
    point the solver was stuck at instead of discarding it.

    ``forensics`` optionally carries a
    :class:`~repro.recovery.forensics.ForensicsBundle` when the failure
    exhausted the recovery ladder — the rung history, last Newton state,
    stamped-matrix digest and (when available) a minimal reproducing
    netlist.
    """

    def __init__(self, message: str, iterations: int = 0,
                 residual: float = float("nan"), state=None,
                 forensics=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.state = state
        self.forensics = forensics


class AnalysisError(ReproError):
    """An analysis was configured inconsistently or produced no usable result."""


class LayoutError(ReproError):
    """Design-rule violation or an unrealisable cell plan."""


class PlacementError(ReproError):
    """Placement failure: core overflow, unlegalisable design, ..."""


class DefFormatError(ReproError):
    """Malformed DEF content encountered while parsing."""


class MergeError(ReproError):
    """Invalid multi-bit merge request (unknown cell, conflicting pairs, ...)."""


class FaultInjectionError(ReproError):
    """Invalid fault specification (unknown model, unreachable target, ...)."""


class CampaignError(ReproError):
    """A reliability campaign could not be set up or resumed (bad
    checkpoint, mismatched configuration, ...)."""


class SerializationError(ReproError):
    """A result object could not be serialised or rebuilt (schema
    mismatch, malformed payload, non-canonical value, ...)."""


class CacheError(ReproError):
    """The simulation result cache could not derive a key or service a
    request (uncacheable device, unusable cache directory, ...)."""


class ServiceError(ReproError):
    """The simulation service rejected or could not execute a request
    (unknown flow or job, non-canonical parameters, unusable job
    database, ...)."""


class QuotaError(ServiceError):
    """A tenant's active-job quota is exhausted; retry after some of the
    tenant's queued or running jobs finish."""
