"""Benchmark drivers behind ``repro bench``.

Two benchmarks, each writing a JSON report at the repository root (or a
caller-chosen path):

* :func:`run_engine_bench` — naive vs fast simulation engine on the
  Table II characterisation and a 200-sample Monte-Carlo
  (``BENCH_engine.json``; the logic previously lived only in
  ``benchmarks/bench_engine.py``, which now delegates here so the CLI
  works from an installed package);
* :func:`run_obs_overhead_bench` — cost of the observability subsystem
  (``BENCH_obs_overhead.json``): the per-call price of a disabled
  :func:`repro.obs.span`, the estimated disabled-mode overhead on a real
  characterisation workload (the ``< 5 %`` acceptance bound — in
  practice orders of magnitude below it), and the measured
  enabled-vs-disabled slowdown.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
from typing import Optional, Union

from repro.cells.characterize import (
    characterize_proposed,
    characterize_standard,
)
from repro.cells.control import standard_restore_schedule
from repro.cells.nvlatch_1bit import build_standard_latch
from repro.cells.sizing import DEFAULT_SIZING
from repro.mtj.parameters import PAPER_TABLE_I
from repro.mtj.variation import DEFAULT_SEED, monte_carlo_map
from repro.obs import disable_tracing, enable_tracing, span
from repro.spice.analysis.transient import run_transient, set_default_engine
from repro.spice.corners import CORNERS

PathLike = Union[str, pathlib.Path]

#: Default report locations (current working directory).
ENGINE_OUTPUT = "BENCH_engine.json"
OBS_OUTPUT = "BENCH_obs_overhead.json"

MC_SAMPLES = 200
MC_DT = 4e-12
MC_VDD = 1.1
#: Characterisation timestep (2 ps matches the integration-test fixtures).
CHAR_DT = 2e-12
#: Required fast/naive speedup on the Monte-Carlo workload.
REQUIRED_SPEEDUP = 2.0
#: Result agreement bound between engines [V].
AGREEMENT_TOL = 1e-6
#: Acceptance bound on disabled-mode observability overhead [%].
OBS_OVERHEAD_BOUND_PCT = 5.0


def _machine() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


# ---------------------------------------------------------------------------
# Engine benchmark (naive vs fast)
# ---------------------------------------------------------------------------


def _mc_read_task(params):
    """One Monte-Carlo sample: restore bit 1 through a standard latch
    built around the sampled MTJ parameters; returns the output pair."""
    schedule = standard_restore_schedule(bit=1, vdd=MC_VDD, cycles=1)
    latch = build_standard_latch(schedule, CORNERS["typical"], DEFAULT_SIZING,
                                 mtj_params=params, stored_bit=1, vdd=MC_VDD)
    result = run_transient(latch.circuit, schedule.stop_time, MC_DT,
                           initial_voltages={"vdd": MC_VDD})
    return (result.final_voltage(latch.out), result.final_voltage(latch.outb))


def _run_monte_carlo():
    return monte_carlo_map(_mc_read_task, PAPER_TABLE_I,
                           count=MC_SAMPLES, seed=DEFAULT_SEED)


def _run_table2():
    corner = CORNERS["typical"]
    standard = characterize_standard(corner, dt=CHAR_DT, include_write=False)
    proposed = characterize_proposed(corner, dt=CHAR_DT, include_write=False)
    return standard, proposed


def _timed(engine: str, workload):
    previous = set_default_engine(engine)
    try:
        start = time.perf_counter()
        result = workload()
        return time.perf_counter() - start, result
    finally:
        set_default_engine(previous)


def run_engine_bench(output: Optional[PathLike] = ENGINE_OUTPUT) -> dict:
    """Run both workloads under both engines; returns (and optionally
    writes) the report dict."""
    t2_naive_s, (std_naive, prop_naive) = _timed("naive", _run_table2)
    t2_fast_s, (std_fast, prop_fast) = _timed("fast", _run_table2)

    mc_naive_s, mc_naive = _timed("naive", _run_monte_carlo)
    mc_fast_s, mc_fast = _timed("fast", _run_monte_carlo)

    mc_max_diff = max(
        abs(a - b)
        for pair_n, pair_f in zip(mc_naive, mc_fast)
        for a, b in zip(pair_n, pair_f)
    )

    report = {
        "machine": _machine(),
        "table2_characterization": {
            "description": "characterize_standard + characterize_proposed, "
                           "typical corner, dt=2ps, reads+leakage",
            "naive_s": round(t2_naive_s, 3),
            "fast_s": round(t2_fast_s, 3),
            "speedup": round(t2_naive_s / t2_fast_s, 3),
            "metrics_agree": (
                abs(std_naive.read_energy - std_fast.read_energy)
                <= 1e-3 * abs(std_naive.read_energy)
                and abs(prop_naive.read_energy - prop_fast.read_energy)
                <= 1e-3 * abs(prop_naive.read_energy)
            ),
        },
        "monte_carlo_200": {
            "description": f"{MC_SAMPLES}-sample MTJ Monte-Carlo, one "
                           f"standard-latch restore per sample, dt=4ps",
            "samples": MC_SAMPLES,
            "seed": DEFAULT_SEED,
            "naive_s": round(mc_naive_s, 3),
            "fast_s": round(mc_fast_s, 3),
            "speedup": round(mc_naive_s / mc_fast_s, 3),
            "max_result_diff_v": mc_max_diff,
        },
    }
    if output is not None:
        pathlib.Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report


# ---------------------------------------------------------------------------
# Observability overhead benchmark
# ---------------------------------------------------------------------------

#: Disabled-span micro-benchmark iterations.
_MICRO_CALLS = 200_000
#: Workload repeats per mode (best-of is reported).
_WORKLOAD_REPEATS = 3


def _micro_span_cost_ns() -> float:
    """Best-of-5 per-call cost [ns] of ``span()`` while tracing is off,
    with the cost of the empty loop subtracted."""
    def timed_loop(body) -> float:
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            body()
            best = min(best, time.perf_counter() - start)
        return best

    def loop_with_span() -> None:
        for _ in range(_MICRO_CALLS):
            with span("bench.micro", category="bench"):
                pass

    def loop_empty() -> None:
        for _ in range(_MICRO_CALLS):
            pass

    with_span = timed_loop(loop_with_span)
    empty = timed_loop(loop_empty)
    return max(0.0, (with_span - empty) / _MICRO_CALLS * 1e9)


def _obs_workload():
    """The macro workload: one standard-latch restore (bit 1, 4 ps)."""
    schedule = standard_restore_schedule(bit=1, vdd=MC_VDD, cycles=1)
    latch = build_standard_latch(schedule, CORNERS["typical"], DEFAULT_SIZING,
                                 stored_bit=1, vdd=MC_VDD)
    return run_transient(latch.circuit, schedule.stop_time, MC_DT,
                         initial_voltages={"vdd": MC_VDD})


def _best_of(workload, repeats: int = _WORKLOAD_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def run_obs_overhead_bench(output: Optional[PathLike] = OBS_OUTPUT) -> dict:
    """Measure the observability subsystem's cost; returns (and optionally
    writes) the report dict.

    ``disabled_overhead_pct`` is an *upper-bound estimate*: the number of
    instrumentation touch points the workload actually executes (spans
    opened plus per-solve ``is_active`` checks, counted from one traced
    run) times the measured per-call disabled cost, over the disabled
    wall-clock.  ``enabled_overhead_pct`` is the directly measured
    slowdown with tracing on.
    """
    was_active = disable_tracing() is not None

    per_call_ns = _micro_span_cost_ns()

    disabled_s = _best_of(_obs_workload)

    tracer = enable_tracing(fresh=True)
    try:
        enabled_s = _best_of(_obs_workload)
        tracer.drain()
        result = _obs_workload()
        touch_points = len(tracer.records) + result.stats.solves
    finally:
        disable_tracing()
    if was_active:
        enable_tracing(fresh=True)

    disabled_overhead_pct = (
        100.0 * touch_points * per_call_ns * 1e-9 / disabled_s
        if disabled_s > 0 else 0.0)
    enabled_overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s

    report = {
        "machine": _machine(),
        "micro": {
            "description": f"disabled span() per-call cost over "
                           f"{_MICRO_CALLS} calls (best of 5, empty-loop "
                           f"baseline subtracted)",
            "per_call_ns": round(per_call_ns, 1),
        },
        "workload": {
            "description": "standard-latch restore transient, dt=4ps, "
                           f"best of {_WORKLOAD_REPEATS}",
            "disabled_s": round(disabled_s, 4),
            "enabled_s": round(enabled_s, 4),
            "touch_points": touch_points,
        },
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "enabled_overhead_pct": round(enabled_overhead_pct, 2),
        "bound_pct": OBS_OVERHEAD_BOUND_PCT,
        "within_bound": disabled_overhead_pct < OBS_OVERHEAD_BOUND_PCT,
    }
    if output is not None:
        pathlib.Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report
