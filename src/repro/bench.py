"""Benchmark drivers behind ``repro bench``.

Two benchmarks, each writing a JSON report at the repository root (or a
caller-chosen path):

* :func:`run_engine_bench` — naive vs fast simulation engine on the
  Table II characterisation and a 200-sample Monte-Carlo
  (``BENCH_engine.json``; the logic previously lived only in
  ``benchmarks/bench_engine.py``, which now delegates here so the CLI
  works from an installed package);
* :func:`run_obs_overhead_bench` — cost of the observability subsystem
  (``BENCH_obs_overhead.json``): the per-call price of a disabled
  :func:`repro.obs.span`, the estimated disabled-mode overhead on a real
  characterisation workload (the ``< 5 %`` acceptance bound — in
  practice orders of magnitude below it), and the measured
  enabled-vs-disabled slowdown;
* :func:`run_cache_bench` — the content-addressed result cache
  (``BENCH_cache.json``): the fast Table II characterisation run cold
  then warm against a throwaway cache, gating on a ``>= 90 %``
  solver-call reduction and bit-identical metrics on the warm run;
* :func:`run_sparse_bench` — the sparse engine generation
  (``BENCH_sparse.json``): a Monte-Carlo ensemble advanced as one
  block-diagonal batched solve against per-sample naive/fast loops,
  and the transistor-level 1T-1MTJ mini-array under ``engine="sparse"``
  against ``engine="fast"``; gates on the ISSUE speedup floors with the
  cross-engine waveform agreement bound recorded alongside.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
from typing import Optional, Union

from repro.cells.characterize import (
    characterize_proposed,
    characterize_standard,
)
from repro.cells.control import standard_restore_schedule
from repro.cells.nvlatch_1bit import build_standard_latch
from repro.cells.sizing import DEFAULT_SIZING
from repro.mtj.parameters import PAPER_TABLE_I
from repro.mtj.variation import DEFAULT_SEED, monte_carlo_map
from repro.obs import disable_tracing, enable_tracing, span
from repro.spice.analysis.transient import run_transient, set_default_engine
from repro.spice.corners import CORNERS

PathLike = Union[str, pathlib.Path]

#: Default report locations (current working directory).
ENGINE_OUTPUT = "BENCH_engine.json"
OBS_OUTPUT = "BENCH_obs_overhead.json"
CACHE_OUTPUT = "BENCH_cache.json"

MC_SAMPLES = 200
MC_DT = 4e-12
MC_VDD = 1.1
#: Characterisation timestep (2 ps matches the integration-test fixtures).
CHAR_DT = 2e-12
#: Required fast/naive speedup on the Monte-Carlo workload.
REQUIRED_SPEEDUP = 2.0
#: Result agreement bound between engines [V].
AGREEMENT_TOL = 1e-6
#: Acceptance bound on disabled-mode observability overhead [%].
OBS_OVERHEAD_BOUND_PCT = 5.0
#: Required warm-cache solver-call reduction (fraction of cold solves).
CACHE_SOLVER_REDUCTION_TARGET = 0.90
#: Cache-bench characterisation timestep (matches ``repro profile --fast``).
CACHE_DT = 4e-12
SPARSE_OUTPUT = "BENCH_sparse.json"
#: Monte-Carlo ensemble leg: sample count and transient grid.
ENSEMBLE_COUNT = 32
ENSEMBLE_QUICK_COUNT = 8
ENSEMBLE_STOP = 1.2e-9
ENSEMBLE_DT = 4e-12
#: Required batched-ensemble speedups on the Monte-Carlo workload.
ENSEMBLE_SPEEDUP_VS_NAIVE = 8.0
ENSEMBLE_SPEEDUP_VS_FAST = 3.0
#: Mini-array leg: grid and required sparse/fast speedup.
ARRAY_ROWS = 24
ARRAY_STOP = 2.5e-9
ARRAY_DT = 2.5e-12
ARRAY_SPEEDUP_VS_FAST = 5.0
#: Quick mode (CI smoke): smaller workloads, one relaxed gate of >= 2x.
QUICK_ARRAY_ROWS = 16
QUICK_ARRAY_STOP = 1.0e-9
QUICK_SPEEDUP = 2.0


def _machine() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


# ---------------------------------------------------------------------------
# Engine benchmark (naive vs fast)
# ---------------------------------------------------------------------------


def _mc_read_task(params):
    """One Monte-Carlo sample: restore bit 1 through a standard latch
    built around the sampled MTJ parameters; returns the output pair."""
    schedule = standard_restore_schedule(bit=1, vdd=MC_VDD, cycles=1)
    latch = build_standard_latch(schedule, CORNERS["typical"], DEFAULT_SIZING,
                                 mtj_params=params, stored_bit=1, vdd=MC_VDD)
    result = run_transient(latch.circuit, schedule.stop_time, MC_DT,
                           initial_voltages={"vdd": MC_VDD})
    return (result.final_voltage(latch.out), result.final_voltage(latch.outb))


def _run_monte_carlo():
    return monte_carlo_map(_mc_read_task, PAPER_TABLE_I,
                           count=MC_SAMPLES, seed=DEFAULT_SEED)


def _run_table2():
    corner = CORNERS["typical"]
    standard = characterize_standard(corner, dt=CHAR_DT, include_write=False)
    proposed = characterize_proposed(corner, dt=CHAR_DT, include_write=False)
    return standard, proposed


def _timed(engine: str, workload):
    previous = set_default_engine(engine)
    try:
        start = time.perf_counter()
        result = workload()
        return time.perf_counter() - start, result
    finally:
        set_default_engine(previous)


def run_engine_bench(output: Optional[PathLike] = ENGINE_OUTPUT) -> dict:
    """Run both workloads under both engines; returns (and optionally
    writes) the report dict."""
    t2_naive_s, (std_naive, prop_naive) = _timed("naive", _run_table2)
    t2_fast_s, (std_fast, prop_fast) = _timed("fast", _run_table2)

    mc_naive_s, mc_naive = _timed("naive", _run_monte_carlo)
    mc_fast_s, mc_fast = _timed("fast", _run_monte_carlo)

    mc_max_diff = max(
        abs(a - b)
        for pair_n, pair_f in zip(mc_naive, mc_fast)
        for a, b in zip(pair_n, pair_f)
    )

    report = {
        "machine": _machine(),
        "table2_characterization": {
            "description": "characterize_standard + characterize_proposed, "
                           "typical corner, dt=2ps, reads+leakage",
            "naive_s": round(t2_naive_s, 3),
            "fast_s": round(t2_fast_s, 3),
            "speedup": round(t2_naive_s / t2_fast_s, 3),
            "metrics_agree": (
                abs(std_naive.read_energy - std_fast.read_energy)
                <= 1e-3 * abs(std_naive.read_energy)
                and abs(prop_naive.read_energy - prop_fast.read_energy)
                <= 1e-3 * abs(prop_naive.read_energy)
            ),
        },
        "monte_carlo_200": {
            "description": f"{MC_SAMPLES}-sample MTJ Monte-Carlo, one "
                           f"standard-latch restore per sample, dt=4ps",
            "samples": MC_SAMPLES,
            "seed": DEFAULT_SEED,
            "naive_s": round(mc_naive_s, 3),
            "fast_s": round(mc_fast_s, 3),
            "speedup": round(mc_naive_s / mc_fast_s, 3),
            "max_result_diff_v": mc_max_diff,
        },
    }
    if output is not None:
        pathlib.Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report


# ---------------------------------------------------------------------------
# Result-cache benchmark (cold vs warm)
# ---------------------------------------------------------------------------


def _table2_metrics(data) -> dict:
    """Every measured field of every corner as one nested dict, so the
    cold/warm comparison covers the full Table II surface, not a sample."""
    import dataclasses

    return {f"{design}/{corner}": dataclasses.asdict(latch_metrics)
            for design in ("standard", "proposed")
            for corner, latch_metrics in sorted(getattr(data, design).items())}


def _bit_identical(a, b) -> bool:
    """Recursive exact equality where float NaN equals NaN (skipped write
    metrics are NaN in fast mode; two NaNs of the same provenance count
    as identical)."""
    import math

    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(_bit_identical(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (len(a) == len(b)
                and all(_bit_identical(x, y) for x, y in zip(a, b)))
    return type(a) is type(b) and a == b


def run_cache_bench(output: Optional[PathLike] = CACHE_OUTPUT) -> dict:
    """Run the fast Table II flow cold then warm against a throwaway
    cache; returns (and optionally writes) the report dict.

    ``solver_call_reduction`` is computed from the metrics registry's
    ``engine.solves``/``engine.dc_solves`` deltas (``workers=1`` keeps
    every solve in-process where the registry can see it); the
    ``meets_target`` gate requires the warm run to skip at least
    :data:`CACHE_SOLVER_REDUCTION_TARGET` of the cold run's solver calls
    *and* to reproduce every Table II metric bit-identically.
    """
    import shutil
    import tempfile

    from repro.analysis.tables import _build_table2
    from repro.cache import store as cache_store
    from repro.obs.metrics import metrics as _registry

    _COUNTERS = ("engine.solves", "engine.dc_solves",
                 "cache.hit", "cache.miss", "cache.store")

    def _measured():
        before = {name: _registry().counter(name) for name in _COUNTERS}
        start = time.perf_counter()
        data = _build_table2(corners=["typical"], dt=CACHE_DT,
                             include_write=False, workers=1)
        wall_s = time.perf_counter() - start
        deltas = {name: _registry().counter(name) - before[name]
                  for name in _COUNTERS}
        return wall_s, deltas, _table2_metrics(data)

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    previous = cache_store.get_active_cache()
    # Engine counters only flush to the registry while tracing is active,
    # so the measurement runs under its own tracing session (same idiom
    # as the observability bench).
    was_active = disable_tracing() is not None
    enable_tracing(fresh=True)
    try:
        cache_store.enable(cache_dir)
        cold_s, cold_counts, cold_metrics = _measured()
        warm_s, warm_counts, warm_metrics = _measured()
    finally:
        disable_tracing()
        if was_active:
            enable_tracing(fresh=True)
        if previous is not None:
            cache_store.enable(previous.root)
        else:
            cache_store.disable()
        shutil.rmtree(cache_dir, ignore_errors=True)

    cold_solves = cold_counts["engine.solves"] + cold_counts["engine.dc_solves"]
    warm_solves = warm_counts["engine.solves"] + warm_counts["engine.dc_solves"]
    reduction = (1.0 - warm_solves / cold_solves) if cold_solves else 0.0
    bit_identical = _bit_identical(cold_metrics, warm_metrics)

    report = {
        "machine": _machine(),
        "description": "Table II fast flow (typical corner, dt=4ps, "
                       "reads+leakage) cold then warm against a "
                       "throwaway cache, workers=1",
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 3) if warm_s > 0 else None,
        "cold_counters": cold_counts,
        "warm_counters": warm_counts,
        "solver_call_reduction": round(reduction, 4),
        "target_reduction": CACHE_SOLVER_REDUCTION_TARGET,
        "bit_identical_metrics": bit_identical,
        "meets_target": (reduction >= CACHE_SOLVER_REDUCTION_TARGET
                         and bit_identical),
    }
    if output is not None:
        pathlib.Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report


# ---------------------------------------------------------------------------
# Sparse engine benchmark (batched ensemble + mini-array)
# ---------------------------------------------------------------------------


def _ensemble_sample_circuit(params):
    """One Monte-Carlo sample of the ensemble workload: a 4x4 1T-1MTJ
    read access around the sampled junction parameters."""
    from repro.cells.miniarray import build_mini_array

    return build_mini_array(rows=4, cols=4, active_rows=2,
                            access_time=0.5e-9, params=params)


def _ensemble_probe_nodes():
    return [f"bl{c}" for c in range(4)]


def run_sparse_bench(output: Optional[PathLike] = SPARSE_OUTPUT,
                     quick: bool = False) -> dict:
    """Benchmark the sparse-generation engine; returns (and optionally
    writes) the report dict.

    Two legs:

    * **ensemble** — ``ENSEMBLE_COUNT`` Monte-Carlo draws of the 4x4
      read-access array advanced as one block-diagonal batched solve
      (:func:`repro.spice.analysis.run_ensemble_transient`) against
      per-sample scalar loops under the naive and fast engines.  Gates:
      batched >= :data:`ENSEMBLE_SPEEDUP_VS_NAIVE` x naive and
      >= :data:`ENSEMBLE_SPEEDUP_VS_FAST` x fast, with the
      per-bit-line waveform deviation against the naive reference
      recorded and bounded by :data:`AGREEMENT_TOL`.
    * **mini-array** — the ``ARRAY_ROWS`` x ``ARRAY_ROWS``
      transistor-level array transient under ``engine="sparse"``
      (fixed step, bit-faithful contract) against ``engine="fast"``.
      Gate: >= :data:`ARRAY_SPEEDUP_VS_FAST` x.

    ``quick=True`` is the CI smoke shape: fewer samples, a smaller
    array, the naive reference skipped (waveform agreement is then
    measured against fast, which the differential suite already pins to
    naive), and a single relaxed gate of >= :data:`QUICK_SPEEDUP` x on
    both legs.
    """
    import numpy as np

    from repro.cells.miniarray import build_mini_array
    from repro.mtj.variation import monte_carlo_parameters
    from repro.spice.analysis import run_ensemble_transient

    count = ENSEMBLE_QUICK_COUNT if quick else ENSEMBLE_COUNT
    samples = monte_carlo_parameters(PAPER_TABLE_I, count=count,
                                     seed=DEFAULT_SEED)
    probes = _ensemble_probe_nodes()

    def scalar_loop(engine):
        circuits = [_ensemble_sample_circuit(p) for p in samples]
        start = time.perf_counter()
        results = [run_transient(c, ENSEMBLE_STOP, ENSEMBLE_DT, engine=engine)
                   for c in circuits]
        return time.perf_counter() - start, results

    def batched():
        circuits = [_ensemble_sample_circuit(p) for p in samples]
        start = time.perf_counter()
        results = run_ensemble_transient(circuits, ENSEMBLE_STOP, ENSEMBLE_DT)
        return time.perf_counter() - start, results

    naive_s = None
    if not quick:
        naive_s, ref_results = scalar_loop("naive")
    fast_s, fast_results = scalar_loop("fast")
    if quick:
        ref_results = fast_results
    ens_s, ens_results = batched()

    ens_max_diff = max(
        float(np.max(np.abs(ens.voltage(node) - ref.voltage(node))))
        for ens, ref in zip(ens_results, ref_results)
        for node in probes)

    rows = QUICK_ARRAY_ROWS if quick else ARRAY_ROWS
    stop = QUICK_ARRAY_STOP if quick else ARRAY_STOP

    def array_run(engine):
        circuit = build_mini_array(rows=rows, cols=rows)
        start = time.perf_counter()
        result = run_transient(circuit, stop, ARRAY_DT, engine=engine)
        return time.perf_counter() - start, result

    arr_fast_s, arr_fast = array_run("fast")
    arr_sparse_s, arr_sparse = array_run("sparse")
    arr_probes = [f"bl{c}" for c in range(rows)]
    arr_max_diff = max(
        float(np.max(np.abs(arr_fast.voltage(n) - arr_sparse.voltage(n))))
        for n in arr_probes)

    ens_vs_fast = fast_s / ens_s
    arr_speedup = arr_fast_s / arr_sparse_s
    if quick:
        meets = (ens_vs_fast >= QUICK_SPEEDUP
                 and arr_speedup >= QUICK_SPEEDUP)
    else:
        meets = (naive_s / ens_s >= ENSEMBLE_SPEEDUP_VS_NAIVE
                 and ens_vs_fast >= ENSEMBLE_SPEEDUP_VS_FAST
                 and arr_speedup >= ARRAY_SPEEDUP_VS_FAST)
    meets = meets and ens_max_diff <= AGREEMENT_TOL \
        and arr_max_diff <= AGREEMENT_TOL

    report = {
        "machine": _machine(),
        "quick": quick,
        "ensemble_monte_carlo": {
            "description": f"{count}-sample MTJ Monte-Carlo over a 4x4 "
                           f"1T-1MTJ read access, dt=4ps: per-sample "
                           f"scalar loops vs one block-diagonal batched "
                           f"solve",
            "samples": count,
            "seed": DEFAULT_SEED,
            "naive_s": round(naive_s, 3) if naive_s is not None else None,
            "fast_s": round(fast_s, 3),
            "ensemble_s": round(ens_s, 3),
            "speedup_vs_naive": (round(naive_s / ens_s, 3)
                                 if naive_s is not None else None),
            "speedup_vs_fast": round(ens_vs_fast, 3),
            "required_vs_naive": None if quick else ENSEMBLE_SPEEDUP_VS_NAIVE,
            "required_vs_fast": (QUICK_SPEEDUP if quick
                                 else ENSEMBLE_SPEEDUP_VS_FAST),
            "max_waveform_diff_v": ens_max_diff,
            "reference_engine": "fast" if quick else "naive",
        },
        "mini_array_transient": {
            "description": f"{rows}x{rows} transistor-level 1T-1MTJ array "
                           f"transient, dt=2.5ps, fixed-step sparse vs "
                           f"fast",
            "rows": rows,
            "fast_s": round(arr_fast_s, 3),
            "sparse_s": round(arr_sparse_s, 3),
            "speedup_vs_fast": round(arr_speedup, 3),
            "required_vs_fast": (QUICK_SPEEDUP if quick
                                 else ARRAY_SPEEDUP_VS_FAST),
            "max_waveform_diff_v": arr_max_diff,
        },
        "agreement_tol_v": AGREEMENT_TOL,
        "meets_target": bool(meets),
    }
    if output is not None:
        pathlib.Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report


# ---------------------------------------------------------------------------
# Observability overhead benchmark
# ---------------------------------------------------------------------------

#: Disabled-span micro-benchmark iterations.
_MICRO_CALLS = 200_000
#: Workload repeats per mode (best-of is reported).
_WORKLOAD_REPEATS = 3


def _micro_span_cost_ns() -> float:
    """Best-of-5 per-call cost [ns] of ``span()`` while tracing is off,
    with the cost of the empty loop subtracted."""
    def timed_loop(body) -> float:
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            body()
            best = min(best, time.perf_counter() - start)
        return best

    def loop_with_span() -> None:
        for _ in range(_MICRO_CALLS):
            with span("bench.micro", category="bench"):
                pass

    def loop_empty() -> None:
        for _ in range(_MICRO_CALLS):
            pass

    with_span = timed_loop(loop_with_span)
    empty = timed_loop(loop_empty)
    return max(0.0, (with_span - empty) / _MICRO_CALLS * 1e9)


def _obs_workload():
    """The macro workload: one standard-latch restore (bit 1, 4 ps)."""
    schedule = standard_restore_schedule(bit=1, vdd=MC_VDD, cycles=1)
    latch = build_standard_latch(schedule, CORNERS["typical"], DEFAULT_SIZING,
                                 stored_bit=1, vdd=MC_VDD)
    return run_transient(latch.circuit, schedule.stop_time, MC_DT,
                         initial_voltages={"vdd": MC_VDD})


def _best_of(workload, repeats: int = _WORKLOAD_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def run_obs_overhead_bench(output: Optional[PathLike] = OBS_OUTPUT) -> dict:
    """Measure the observability subsystem's cost; returns (and optionally
    writes) the report dict.

    ``disabled_overhead_pct`` is an *upper-bound estimate*: the number of
    instrumentation touch points the workload actually executes (spans
    opened plus per-solve ``is_active`` checks, counted from one traced
    run) times the measured per-call disabled cost, over the disabled
    wall-clock.  ``enabled_overhead_pct`` is the directly measured
    slowdown with tracing on.
    """
    was_active = disable_tracing() is not None

    per_call_ns = _micro_span_cost_ns()

    disabled_s = _best_of(_obs_workload)

    tracer = enable_tracing(fresh=True)
    try:
        enabled_s = _best_of(_obs_workload)
        tracer.drain()
        result = _obs_workload()
        touch_points = len(tracer.records) + result.stats.solves
    finally:
        disable_tracing()
    if was_active:
        enable_tracing(fresh=True)

    disabled_overhead_pct = (
        100.0 * touch_points * per_call_ns * 1e-9 / disabled_s
        if disabled_s > 0 else 0.0)
    enabled_overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s

    report = {
        "machine": _machine(),
        "micro": {
            "description": f"disabled span() per-call cost over "
                           f"{_MICRO_CALLS} calls (best of 5, empty-loop "
                           f"baseline subtracted)",
            "per_call_ns": round(per_call_ns, 1),
        },
        "workload": {
            "description": "standard-latch restore transient, dt=4ps, "
                           f"best of {_WORKLOAD_REPEATS}",
            "disabled_s": round(disabled_s, 4),
            "enabled_s": round(enabled_s, 4),
            "touch_points": touch_points,
        },
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "enabled_overhead_pct": round(enabled_overhead_pct, 2),
        "bound_pct": OBS_OVERHEAD_BOUND_PCT,
        "within_bound": disabled_overhead_pct < OBS_OVERHEAD_BOUND_PCT,
    }
    if output is not None:
        pathlib.Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report
