"""Serialization schema hygiene and cross-process safety rules.

* Every :class:`~repro.serialize.Serializable` subclass must implement
  the full protocol (``SCHEMA_VERSION``, ``payload``, ``from_payload``).
* A Serializable whose **payload field set changed** must bump its
  ``SCHEMA_VERSION``.  "Changed since when?" is answered by a committed
  manifest (``schema_manifest.json`` next to this module) recording each
  schema's version and payload keys; the rule statically re-derives both
  from the AST and flags any drift.  ``repro devlint
  --update-schema-manifest`` rewrites the manifest after a legitimate
  change (bump first, then refresh).
* Work shipped through :mod:`repro.parallel` / the campaign runner must
  be picklable; lambdas and function-local ``def``\\ s passed as the task
  callable fail only at runtime, inside a worker, with a cryptic
  ``PicklingError`` — the rule names them at the call site instead.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.diagnostics import Severity

from repro.devlint.model import Project, PyModule
from repro.devlint.registry import rule

MANIFEST_NAME = "schema_manifest.json"

#: Callables whose first positional argument is shipped to worker
#: processes and therefore must be picklable.
_SHIPPING_CALLS = {
    "parallel_map", "dedup_map", "monte_carlo_map", "monte_carlo_campaign",
    "run_campaign", "ObsTask",
}


def _manifest_path() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        MANIFEST_NAME)


def load_manifest() -> Dict[str, Dict[str, object]]:
    """The committed schema manifest; empty when missing (first run)."""
    try:
        with open(_manifest_path(), "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return {}


def _serializable_classes(
        module: PyModule) -> List[ast.ClassDef]:
    found: List[ast.ClassDef] = []
    for classdef in module.classes():
        for base in classdef.bases:
            base_name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else "")
            if base_name == "Serializable":
                found.append(classdef)
                break
    return found


def _class_constant(classdef: ast.ClassDef,
                    name: str) -> Optional[object]:
    """Value of a simple ``NAME = <constant>`` class attribute."""
    for stmt in classdef.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(value, ast.Constant):
                    return value.value
                return None
    return None


def _method(classdef: ast.ClassDef,
            name: str) -> Optional[ast.FunctionDef]:
    for stmt in classdef.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def payload_keys(classdef: ast.ClassDef) -> Optional[List[str]]:
    """Sorted string keys of the dict literals returned by ``payload()``.

    ``None`` when there is no ``payload`` method or its returns carry no
    dict literal (dynamic payloads cannot be manifest-checked).
    """
    method = _method(classdef, "payload")
    if method is None:
        return None
    keys: Set[str] = set()
    saw_literal = False
    for node in ast.walk(method):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Dict):
                saw_literal = True
                for key in sub.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                            key.value, str):
                        keys.add(key.value)
    return sorted(keys) if saw_literal else None


@rule("dev.serializable-incomplete", Severity.ERROR,
      "a Serializable subclass is missing part of the protocol "
      "(SCHEMA_VERSION, payload, from_payload)")
def check_serializable_protocol(project: Project, emit) -> None:
    for module in project:
        for classdef in _serializable_classes(module):
            missing = []
            if _class_constant(classdef, "SCHEMA_VERSION") is None:
                missing.append("SCHEMA_VERSION")
            if _method(classdef, "payload") is None:
                missing.append("payload()")
            if _method(classdef, "from_payload") is None:
                missing.append("from_payload()")
            if missing:
                emit(module, classdef.lineno,
                     f"{classdef.name} subclasses Serializable but lacks "
                     f"{', '.join(missing)}",
                     hint="implement the full protocol so round-trips "
                          "are versioned (see repro/serialize.py)")


@rule("dev.schema-version-unbumped", Severity.ERROR,
      "a Serializable payload's field set drifted from the committed "
      "schema manifest without a SCHEMA_VERSION bump")
def check_schema_manifest(project: Project, emit) -> None:
    manifest = load_manifest()
    for module in project:
        for classdef in _serializable_classes(module):
            version = _class_constant(classdef, "SCHEMA_VERSION")
            name = _class_constant(classdef, "SCHEMA_NAME") or classdef.name
            fields = payload_keys(classdef)
            if fields is None or not isinstance(version, int):
                continue  # protocol-completeness rule covers these
            entry = manifest.get(str(name))
            if entry is None:
                emit(module, classdef.lineno,
                     f"schema {name!r} is not registered in "
                     f"{MANIFEST_NAME}",
                     hint="run 'repro devlint --update-schema-manifest' "
                          "and commit the result")
                continue
            recorded_version = entry.get("version")
            recorded_fields = sorted(entry.get("fields", []))  # type: ignore[arg-type]
            if fields != recorded_fields and version == recorded_version:
                added = sorted(set(fields) - set(recorded_fields))
                removed = sorted(set(recorded_fields) - set(fields))
                delta = "; ".join(filter(None, [
                    f"added {added}" if added else "",
                    f"removed {removed}" if removed else ""]))
                emit(module, classdef.lineno,
                     f"payload fields of {name!r} changed ({delta}) but "
                     f"SCHEMA_VERSION is still {version}",
                     hint="bump SCHEMA_VERSION, then run 'repro devlint "
                          "--update-schema-manifest'")
            elif fields != recorded_fields or version != recorded_version:
                emit(module, classdef.lineno,
                     f"{MANIFEST_NAME} is stale for {name!r} "
                     f"(recorded v{recorded_version}, code is v{version})",
                     hint="run 'repro devlint --update-schema-manifest' "
                          "and commit the result")


def compute_manifest(project: Project) -> Dict[str, Dict[str, object]]:
    """Recompute the manifest record for every Serializable in
    ``project`` (the ``--update-schema-manifest`` implementation)."""
    manifest: Dict[str, Dict[str, object]] = {}
    for module in project:
        for classdef in _serializable_classes(module):
            version = _class_constant(classdef, "SCHEMA_VERSION")
            name = _class_constant(classdef, "SCHEMA_NAME") or classdef.name
            fields = payload_keys(classdef)
            if fields is None or not isinstance(version, int):
                continue
            manifest[str(name)] = {
                "version": version,
                "fields": fields,
                "module": module.rel,
            }
    return manifest


def write_manifest(manifest: Dict[str, Dict[str, object]],
                   path: Optional[str] = None) -> str:
    path = path or _manifest_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _local_defs(func: ast.FunctionDef) -> Set[str]:
    """Names bound by ``def``/``lambda =`` directly inside ``func``."""
    names: Set[str] = set()
    for stmt in ast.walk(func):
        if stmt is func:
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Lambda):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@rule("dev.unpicklable-task", Severity.ERROR,
      "a lambda or function-local def is passed to a worker-pool entry "
      "point; it cannot be pickled into worker processes")
def check_unpicklable_task(project: Project, emit) -> None:
    for module in project:
        if module.tree is None:
            continue
        for func in module.functions():
            local_names = _local_defs(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                callee = node.func
                callee_name = callee.id if isinstance(
                    callee, ast.Name) else (
                        callee.attr if isinstance(callee, ast.Attribute)
                        else "")
                if callee_name not in _SHIPPING_CALLS:
                    continue
                task = node.args[0]
                if isinstance(task, ast.Lambda):
                    emit(module, task.lineno,
                         f"lambda passed to {callee_name}() cannot be "
                         f"pickled into worker processes",
                         hint="hoist it to a module-level function "
                              "(bind config with functools.partial)")
                elif isinstance(task, ast.Name) and task.id in local_names:
                    emit(module, task.lineno,
                         f"{task.id!r} is defined inside "
                         f"{func.name}() but passed to {callee_name}(); "
                         f"local functions cannot be pickled into "
                         f"worker processes",
                         hint="hoist it to module level (bind config "
                              "with functools.partial)")


def shipping_calls() -> Tuple[str, ...]:
    """The audited entry points (exported for docs/tests)."""
    return tuple(sorted(_SHIPPING_CALLS))
