# devlint-expect: dev.unseeded-rng
"""Corpus fixture: draws from unseeded global RNG streams."""

import random

import numpy as np


def draw_noise(n):
    base = np.random.normal(0.0, 1.0, n)
    rng = np.random.default_rng()
    jitter = random.random()
    toss = random.Random()
    return base, rng, jitter, toss


def seeded_ok(seed):
    # Negative cases: these must NOT fire.
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.normal(), local.random()
