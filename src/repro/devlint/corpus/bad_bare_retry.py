# devlint-expect: dev.bare-convergence-retry
"""Corpus fixture: ad-hoc convergence retry inside an except handler.

Both shapes the rule must catch: a direct solver re-run at a stronger
gmin, and a retry buried in a tuple-catch handler.
"""

from repro.errors import AnalysisError, ConvergenceError
from repro.spice.analysis.dc import solve_dc
from repro.spice.analysis.transient import run_transient


def step_with_inline_retry(solver, x, time, prev):
    try:
        return solver.solve(x, time, prev, 1e-12, 50, 1e-7, 0.4)
    except ConvergenceError:
        # BAD: hard-coded strong-gmin retry, invisible to the policy
        # fingerprint.
        return solver.solve(x, time, prev, 1e-9, 50, 1e-7, 0.4)


def dc_with_inline_retry(circuit):
    try:
        return solve_dc(circuit)
    except (AnalysisError, ConvergenceError):
        # BAD: retry via a tuple-catch handler is still a retry.
        return run_transient(circuit, 1e-9, 1e-12)
