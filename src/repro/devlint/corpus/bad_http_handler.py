# devlint-expect: dev.http-handler-broad-except
"""Corpus fixture: HTTP handlers that swallow failures silently.

The three shapes the rule must catch: ``except Exception: pass``, a
bare ``except:`` that just returns, and an ``...``-bodied tuple catch.
The final handler reports before returning and must *not* fire.
"""

import json
from http.server import BaseHTTPRequestHandler


class SwallowingHandler(BaseHTTPRequestHandler):
    def do_GET(self):
        try:
            self._route()
        except Exception:
            # BAD: the client sees a hung connection, nothing is logged.
            pass

    def do_POST(self):
        try:
            self._route()
        except:  # noqa: E722
            # BAD: bare catch, silent return.
            return

    def do_DELETE(self):
        try:
            self._route()
        except (ValueError, Exception):
            ...

    def do_PUT(self):
        try:
            self._route()
        except Exception as exc:
            # OK: broad, but the failure leaves as a structured payload.
            body = json.dumps({"error": {"type": type(exc).__name__,
                                         "message": str(exc)}})
            self.wfile.write(body.encode("utf-8"))

    def _route(self):
        raise ValueError("boom")
