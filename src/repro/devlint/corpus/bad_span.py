# devlint-expect: dev.span-without-with
"""Corpus fixture: obs spans driven outside 'with' blocks."""

from repro.obs import span


def timed_solve(system):
    outer = span("corpus.solve")
    outer.__enter__()
    try:
        result = system.solve()
    finally:
        outer.__exit__(None, None, None)
    span("corpus.discarded")
    leaked = span("corpus.leaked")
    return result, leaked


def timed_ok(system):
    # Negative cases: direct 'with' and assign-then-with are both fine.
    with span("corpus.direct"):
        first = system.solve()
    staged = span("corpus.staged")
    with staged:
        second = system.solve()
    return first, second
