# devlint-expect: dev.wallclock-dependence
# devlint: keyed-path
"""Corpus fixture: wall-clock reads on a cache-keyed path.

The ``keyed-path`` marker opts this off-tree fixture into the rule.
"""

import time
from datetime import date, datetime


def stamp_result(result):
    result["created"] = time.time()
    result["day"] = date.today().isoformat()
    result["when"] = datetime.now()
    return result


def interval_ok():
    # Negative case: monotonic clocks are telemetry-only, never flagged.
    start = time.monotonic()
    return time.perf_counter() - start
