# devlint-expect: dev.error-super-init
"""Corpus fixture: error subclass dropping the diagnostics-capturing
super().__init__ call."""

from repro.errors import ReproError


class ToySolveError(ReproError):
    def __init__(self, message, node):
        self.message = message
        self.node = node


class ToyRangeError(ToySolveError):
    # Transitive subclasses are caught too.
    def __init__(self, message):
        self.message = message


class ToyCleanError(ReproError):
    # Negative case: delegates to super, must not fire.
    def __init__(self, message, node):
        super().__init__(message)
        self.node = node
