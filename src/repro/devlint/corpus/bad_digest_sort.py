# devlint-expect: dev.unsorted-digest-iteration
"""Corpus fixture: unsorted iteration feeding a canonical digest."""

from repro.serialize import stable_digest


def fingerprint(config, tags):
    pairs = [(k, v) for k, v in config.items()]
    for name in {t.upper() for t in tags}:
        pairs.append(("tag", name))
    return stable_digest({"pairs": pairs})


def fingerprint_ok(config):
    # Negative case: sorted() pins the order, so this must not fire.
    pairs = [(k, v) for k, v in sorted(config.items())]
    return stable_digest({"pairs": pairs})
