# devlint-expect: dev.config-constant-unfingerprinted
"""Corpus fixture: engine constant missing from the config fingerprint."""

SOLVER_TOL = 1e-9
DAMPING_LIMIT = 4.0
BANNER = "toy engine"  # devlint: not-keyed


def toy_config_fingerprint():
    # DAMPING_LIMIT affects numerics but is not recorded here.
    return {"solver_tol": SOLVER_TOL}
