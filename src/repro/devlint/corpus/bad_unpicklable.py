# devlint-expect: dev.unpicklable-task
"""Corpus fixture: unpicklable callables shipped to worker pools."""

from repro.parallel import parallel_map


def _double(sample):
    return sample * 2.0


def sweep(samples):
    def evaluate(sample):
        return sample * 2.0

    doubled = parallel_map(evaluate, samples, processes=2)
    squared = parallel_map(lambda s: s * s, samples, processes=2)
    # Negative case: a module-level function is picklable.
    fine = parallel_map(_double, samples, processes=2)
    return doubled, squared, fine
