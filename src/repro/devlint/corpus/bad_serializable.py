# devlint-expect: dev.serializable-incomplete, dev.schema-version-unbumped
"""Corpus fixture: Serializable protocol violations and schema drift.

Neither schema is registered in the committed manifest, so the
version-bump rule reports them as unregistered drift.
"""

from repro.serialize import Serializable


class HalfRecord(Serializable):
    SCHEMA_NAME = "corpus.half"
    SCHEMA_VERSION = 1

    def payload(self):
        return {"value": self.value}

    # from_payload is deliberately missing.


class DriftRecord(Serializable):
    SCHEMA_NAME = "corpus.drift"
    SCHEMA_VERSION = 1

    def payload(self):
        return {"unit": self.unit, "value": self.value}

    @classmethod
    def from_payload(cls, data):
        return cls()
