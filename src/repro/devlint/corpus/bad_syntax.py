# devlint-expect: dev.syntax-error
"""Corpus fixture: a file that does not parse."""


def broken(:
    return 1
