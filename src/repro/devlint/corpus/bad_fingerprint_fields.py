# devlint-expect: dev.fingerprint-missing-field
"""Corpus fixture: cache-key serializers missing class fields."""

from dataclasses import dataclass


@dataclass
class ToyDevice:
    width: float
    length: float
    threshold: float


# 'threshold' is deliberately absent from the tuple.
_TOY_DEVICE_FIELDS = (  # devlint: fingerprint-fields ToyDevice
    "width",
    "length",
)


# devlint: fingerprint-branches
def toy_fingerprint(element):
    # The branch reads only 'width'; 'length' is exempted, 'threshold'
    # is deliberately dropped.
    if type(element) is ToyDevice:
        # devlint: fingerprint-ignore length
        return ("toy", element.width)
    raise TypeError(type(element).__name__)
