"""Cache-key completeness rules.

The content-addressed result cache (PR 5) is only sound if its keys
capture *everything* a result depends on.  Two recurring hazards:

* a new field lands on a device / parameter / waveform class but the
  serializers in ``cache/keys.py`` are not updated — two circuits that
  differ only in the new field now share a key, and a warm cache replays
  the wrong result bit-exactly;
* a new engine constant changes numerics but is missing from the
  ``*config_fingerprint`` record — entries written before a constant
  tweak replay as if nothing changed (the exact hazard PR 6 handled by
  hand for ``permc_spec`` and the LTE controller constants).

Both rules are driven by marker comments in the audited code (see
:mod:`repro.devlint.model`), so the binding between a fields tuple and
the class it must cover lives next to the tuple itself and new bindings
need no analyzer change.
"""

from __future__ import annotations

import ast
import re
from typing import List, Set, Tuple

from repro.lint.diagnostics import Severity

from repro.devlint.model import PyModule, Project
from repro.devlint.registry import rule

_FIELDS_MARKER_RE = re.compile(r"^fingerprint-fields\s+(?P<cls>[\w.]+)$")
_IGNORE_FIELDS_RE = re.compile(
    r"^fingerprint-ignore\s+(?P<fields>[\w,\s]+)$")

#: The module every full-tree run must find markers in — the guard that
#: keeps the rule from silently going dark if markers are deleted.
KEYS_MODULE_SUFFIX = "repro/cache/keys.py"


def _tuple_bindings(
        module: PyModule) -> List[Tuple[ast.Assign, str, List[str]]]:
    """``(assignment, class_name, tuple_field_names)`` for every
    module-level tuple carrying a ``fingerprint-fields`` marker."""
    bindings: List[Tuple[ast.Assign, str, List[str]]] = []
    if module.tree is None:
        return bindings
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        marker = _FIELDS_MARKER_RE.match(module.marker_at_or_above(
            stmt.lineno))
        if not marker:
            continue
        value = stmt.value
        names: List[str] = []
        if isinstance(value, (ast.Tuple, ast.List)):
            names = [elt.value for elt in value.elts
                     if isinstance(elt, ast.Constant)
                     and isinstance(elt.value, str)]
        bindings.append((stmt, marker.group("cls").rsplit(".", 1)[-1],
                         names))
    return bindings


def _branch_functions(module: PyModule) -> List[ast.FunctionDef]:
    """Functions carrying the ``fingerprint-branches`` marker."""
    found: List[ast.FunctionDef] = []
    if module.tree is None:
        return found
    for node in ast.walk(module.tree):
        if isinstance(node, ast.FunctionDef) and (
                module.marker_at_or_above(node.lineno) ==
                "fingerprint-branches"):
            found.append(node)
    return found


def _type_is_branches(func: ast.FunctionDef) -> List[Tuple[str, ast.If]]:
    """``(class_name, if_node)`` for each ``if type(x) is Cls:`` test."""
    branches: List[Tuple[str, ast.If]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], (ast.Is, ast.Eq))
                and isinstance(test.left, ast.Call)
                and isinstance(test.left.func, ast.Name)
                and test.left.func.id == "type"):
            continue
        comparator = test.comparators[0]
        cls = comparator.id if isinstance(comparator, ast.Name) else (
            comparator.attr if isinstance(comparator, ast.Attribute) else "")
        if cls:
            branches.append((cls, node))
    return branches


def _branch_ignored_fields(module: PyModule, branch: ast.If) -> Set[str]:
    """Fields exempted via ``# devlint: fingerprint-ignore a,b`` anywhere
    in the branch body's line range."""
    ignored: Set[str] = set()
    end = branch.body[-1].end_lineno or branch.body[-1].lineno
    for lineno in range(branch.lineno, end + 1):
        match = _IGNORE_FIELDS_RE.match(module.marker(lineno))
        if match:
            ignored.update(f.strip() for f in
                           match.group("fields").split(",") if f.strip())
    return ignored


def _referenced_attrs(branch: ast.If) -> Set[str]:
    """Attribute names read anywhere in the branch body (``x.width`` and
    string keys count as referencing ``width``)."""
    attrs: Set[str] = set()
    for stmt in branch.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Attribute):
                attrs.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(
                    node.value, str):
                attrs.add(node.value)
    return attrs


@rule("dev.fingerprint-missing-field", Severity.ERROR,
      "a device/parameter/waveform field is absent from its cache-key "
      "serializer in cache/keys.py")
def check_fingerprint_completeness(project: Project, emit) -> None:
    saw_markers = False
    for module in project:
        # -- fields-tuple bindings ----------------------------------------
        for stmt, class_name, tuple_fields in _tuple_bindings(module):
            saw_markers = True
            class_fields = project.class_fields(class_name)
            if class_fields is None:
                # WARN, not ERROR: legitimate when linting a subtree that
                # holds keys.py but not the device modules; a typo'd
                # class name still surfaces on every full run.
                emit(module, stmt.lineno,
                     f"fingerprint-fields marker names {class_name!r}, "
                     f"which is not defined in the linted tree",
                     hint="fix the marker or widen the devlint path",
                     severity=Severity.WARN)
                continue
            for missing in sorted(class_fields - set(tuple_fields)):
                emit(module, stmt.lineno,
                     f"{class_name}.{missing} is not in the fingerprint "
                     f"field tuple — circuits differing only in "
                     f"{missing!r} would share a cache key",
                     hint=f"add {missing!r} to the tuple (cache entries "
                          f"retire automatically)")
            for stale in sorted(set(tuple_fields) - class_fields):
                emit(module, stmt.lineno,
                     f"fingerprint tuple names {stale!r}, which is not a "
                     f"field of {class_name}",
                     hint="remove the stale entry or restore the field")

        # -- type-dispatch branch functions -------------------------------
        for func in _branch_functions(module):
            saw_markers = True
            for class_name, branch in _type_is_branches(func):
                class_fields = project.class_fields(class_name)
                if class_fields is None:
                    continue  # class outside the linted tree
                covered = _referenced_attrs(branch)
                ignored = _branch_ignored_fields(module, branch)
                for missing in sorted(class_fields - covered - ignored):
                    emit(module, branch.lineno,
                         f"{func.name}() branch for {class_name} never "
                         f"reads field {missing!r} — it cannot be part "
                         f"of the cache key",
                         hint=f"fingerprint {missing!r} or exempt it "
                              f"with '# devlint: fingerprint-ignore "
                              f"{missing}'")

    keys_module = project.module_matching(KEYS_MODULE_SUFFIX)
    if keys_module is not None and not saw_markers:
        emit(keys_module, 1,
             "cache/keys.py carries no fingerprint-fields / "
             "fingerprint-branches markers — the completeness rule has "
             "nothing to check",
             hint="restore the '# devlint: fingerprint-*' markers on the "
                  "field tuples and dispatch functions")


@rule("dev.config-constant-unfingerprinted", Severity.ERROR,
      "a public engine constant is missing from the module's "
      "*config_fingerprint record — cached entries would survive a "
      "constant change")
def check_config_constants(project: Project, emit) -> None:
    for module in project:
        if module.tree is None:
            continue
        fingerprint_fns = [
            node for node in module.tree.body
            if isinstance(node, ast.FunctionDef)
            and node.name.endswith("config_fingerprint")]
        if not fingerprint_fns:
            continue
        referenced: Set[str] = set()
        for func in fingerprint_fns:
            for node in ast.walk(func):
                if isinstance(node, ast.Name):
                    referenced.add(node.id)
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if not re.fullmatch(r"[A-Z][A-Z0-9_]*", name):
                continue
            if module.marker(stmt.lineno) == "not-keyed":
                continue
            if name in referenced:
                continue
            emit(module, stmt.lineno,
                 f"constant {name} is not referenced by any "
                 f"*config_fingerprint() in this module — changing it "
                 f"would not retire cached results",
                 hint=f"add {name} to the fingerprint record, or mark "
                      f"the assignment '# devlint: not-keyed' with a "
                      f"reason if it cannot affect numerics")


def fingerprint_bindings(
        project: Project) -> List[Tuple[str, str, List[str]]]:
    """Public inspection helper: ``(module_rel, class_name, fields)`` for
    every fields-tuple binding in the project (used by tests and docs)."""
    out: List[Tuple[str, str, List[str]]] = []
    for module in project:
        for _stmt, class_name, tuple_fields in _tuple_bindings(module):
            out.append((module.rel, class_name, tuple_fields))
    return out
