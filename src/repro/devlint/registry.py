"""Rule registry for the devlint analyzer.

Deliberately the same shape as :mod:`repro.lint.registry` (the PR-2
circuit-ERC registry): rules self-register at import time via the
:func:`rule` decorator, a rule is ``check(project, emit)``, and running
the pack produces the shared :class:`~repro.lint.diagnostics.LintReport`
— so ``repro devlint`` renders text/JSON identically to ``repro lint``.

It is a *separate* registry (not a fourth ``kind`` in the lint one)
because the two self-tests have disjoint coverage contracts: the circuit
lint's corpus must fire every circuit rule and must not know about
Python-source rules, and vice versa.  Sharing ``_REGISTRY`` would let
importing one subsystem break the other's coverage gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import AnalysisError
from repro.lint.diagnostics import Diagnostic, LintReport, Severity

from repro.devlint.model import Project


@dataclass(frozen=True)
class DevRule:
    """One registered source-analysis rule."""

    rule_id: str
    severity: Severity
    description: str
    check: Callable


_REGISTRY: Dict[str, DevRule] = {}


def rule(rule_id: str, severity: Severity, description: str):
    """Decorator registering a ``check(project, emit)`` as a devlint rule."""
    if not rule_id.startswith("dev."):
        raise AnalysisError(
            f"devlint rule ids carry the 'dev.' prefix, got {rule_id!r}")

    def decorator(check: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise AnalysisError(f"duplicate devlint rule id {rule_id!r}")
        _REGISTRY[rule_id] = DevRule(rule_id, severity, description, check)
        return check

    return decorator


def all_rules() -> List[DevRule]:
    return list(_REGISTRY.values())


def rule_ids() -> List[str]:
    return [r.rule_id for r in _REGISTRY.values()]


def get_rule(rule_id: str) -> DevRule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise AnalysisError(
            f"no devlint rule {rule_id!r}; known: "
            f"{sorted(_REGISTRY)}") from None


def run_rules(project: Project, target: str = "src") -> LintReport:
    """Run every registered rule over ``project`` into one report.

    Findings are pinned to ``<relative-path>:L<line>`` locations; the
    report's ``target`` names the scanned tree.  Suppression markers
    (``# devlint: ignore[rule-id]``) are honoured here, in one place, so
    individual rules stay suppression-unaware.
    """
    report = LintReport(target)
    for dev_rule in _REGISTRY.values():
        report.rules_run.append(dev_rule.rule_id)

        def emit(module, lineno: int, message: str, hint: str = "",
                 severity: Optional[Severity] = None,
                 _rule: DevRule = dev_rule) -> None:
            if module is not None and module.suppressed(lineno, _rule.rule_id):
                return
            location = (f"{module.rel}:L{lineno}" if module is not None
                        else "<project>")
            report.add(Diagnostic(
                rule=_rule.rule_id,
                severity=_rule.severity if severity is None else severity,
                target=target, location=location, message=message, hint=hint,
            ))

        dev_rule.check(project, emit)
    return report
