"""Devlint: AST-based correctness analyzer for the repro codebase itself.

Where ``repro lint`` checks *circuits* (ERC, netlist and MTJ rules),
``repro devlint`` checks the *Python source* for the project-specific
hazards no generic linter knows about:

* determinism — unseeded RNG streams, wall-clock reads on cache-keyed
  paths, unsorted iteration feeding canonical digests;
* cache-key completeness — every device/parameter field and engine
  constant cross-referenced against the serializers in ``cache/keys.py``;
* serialization hygiene — Serializable protocol completeness and
  schema-version bumps on payload drift (via a committed manifest);
* cross-process and observability safety — picklable task callables,
  ``with``-managed spans, ``super().__init__`` in error subclasses.

Analysis is purely static (``ast`` + marker comments; linted code is
never imported) and reports reuse the shared
:class:`~repro.lint.diagnostics.LintReport`, so text/JSON output renders
identically to the circuit lint.  Run it with ``repro devlint src`` or
programmatically::

    from repro.devlint import lint_paths
    report = lint_paths(["src/repro"])
    if report.has_errors:
        print(report.render_text())
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.lint.diagnostics import (  # noqa: F401  (re-exported)
    Diagnostic,
    LintReport,
    Severity,
)

from repro.devlint.model import (  # noqa: F401
    DEFAULT_EXCLUDES,
    Project,
    PyModule,
    load_project,
)
from repro.devlint.registry import (  # noqa: F401
    DevRule,
    all_rules,
    get_rule,
    rule_ids,
    run_rules,
)

# Importing the packs registers their rules (same pattern as repro.lint).
from repro.devlint import rules_determinism  # noqa: F401,E402
from repro.devlint import rules_cachekey  # noqa: F401,E402
from repro.devlint import rules_serialization  # noqa: F401,E402
from repro.devlint import rules_obs  # noqa: F401,E402
from repro.devlint import rules_recovery  # noqa: F401,E402
from repro.devlint import rules_service  # noqa: F401,E402


def lint_paths(paths: Sequence[str],
               target: str = "src",
               excludes: Sequence[str] = DEFAULT_EXCLUDES,
               root: Optional[str] = None) -> LintReport:
    """Load ``paths`` into a project and run every registered rule."""
    project = load_project(paths, excludes=excludes, root=root)
    return run_rules(project, target=target)
