"""Service-tier hygiene: HTTP handlers must never swallow silently.

The service front-end (:mod:`repro.service.http`) promises that *every*
failure reaching a handler leaves the process as a structured JSON error
payload — a ``{"error": {"type", "message"}}`` body with a meaningful
status code.  A ``try/except Exception: pass`` (or a bare ``except``
that just returns) breaks that contract invisibly: the client sees a
hung or empty response, the job store records nothing, and the obs
counters never move.  Worse, in a ``ThreadingHTTPServer`` the swallowed
exception dies with its connection thread, so nothing ever surfaces it.

The rule flags any *broad* handler (``except Exception``, ``except
BaseException``, or a bare ``except:``) whose body does nothing —
only ``pass`` / ``...`` / ``continue`` / a bare ``return`` — inside a
service-tier module.  A module is service-tier when its path lies under
``repro/service/`` or when it imports :mod:`http.server` (so handler
subclasses outside the package are held to the same contract).  Broad
catches that *report* (send a response, log, re-raise, record the
error) are fine; it is the silent swallow that is banned.
"""

from __future__ import annotations

import ast

from repro.lint.diagnostics import Severity

from repro.devlint.model import PyModule, Project
from repro.devlint.registry import rule

#: Exception names whose catch is "broad" enough to hide real faults.
_BROAD_NAMES = {"Exception", "BaseException"}

#: The module tree that is always held to the handler contract.
_SERVICE_PATH_FRAGMENT = "repro/service/"


def _imports_http_server(module: PyModule) -> bool:
    if module.tree is None:
        return False
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if (alias.name == "http.server"
                        or alias.name.startswith("http.server.")):
                    return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and (node.module == "http.server"
                                or node.module.startswith("http.server.")):
                return True
    return False


def _is_broad(handler: ast.ExceptHandler) -> bool:
    caught = handler.type
    if caught is None:  # bare `except:`
        return True
    nodes = caught.elts if isinstance(caught, ast.Tuple) else [caught]
    for node in nodes:
        name = node.id if isinstance(node, ast.Name) else (
            node.attr if isinstance(node, ast.Attribute) else "")
        if name in _BROAD_NAMES:
            return True
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing observable."""
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)):
            continue  # `...` or a stray docstring
        if isinstance(stmt, ast.Return) and (
                stmt.value is None
                or (isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None)):
            continue
        return False
    return True


@rule("dev.http-handler-broad-except", Severity.ERROR,
      "a service-tier handler catches Exception (or everything) and "
      "silently swallows it instead of reporting a structured error")
def check_http_handler_broad_except(project: Project, emit) -> None:
    for module in project:
        if module.tree is None:
            continue
        in_scope = (_SERVICE_PATH_FRAGMENT in module.rel
                    or _imports_http_server(module))
        if not in_scope:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and _is_silent(node):
                what = ("a bare 'except:'" if node.type is None
                        else "'except Exception'")
                emit(module, node.lineno,
                     f"{what} swallows the failure silently — the "
                     f"client gets no structured error and the job "
                     f"store records nothing",
                     hint="send a JSON error body (see "
                          "repro.service.http._dispatch), record the "
                          "failure on the job record, or re-raise")
