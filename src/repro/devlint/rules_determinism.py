"""Determinism rules: unseeded randomness, wall-clock reads, unsorted
iteration feeding canonical digests.

The reproduction's core contract is bit-identical results across
engines, worker counts and warm cache replays; each rule here names a
way Python code silently breaks that contract before any golden test
can catch it.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.diagnostics import Severity

from repro.devlint.model import (
    PyModule,
    Project,
    parent_map,
    resolve_call_name,
)
from repro.devlint.registry import rule

#: ``numpy.random`` attributes that are fine to call: seeded-generator
#: constructors and the seeding machinery itself.
_NP_RANDOM_OK = {
    "default_rng", "Generator", "PCG64", "PCG64DXSM", "MT19937", "Philox",
    "SFC64", "SeedSequence", "BitGenerator", "RandomState",
}

#: stdlib ``random`` module functions that draw from the shared global
#: (hence unseeded, order-dependent) stream.
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed", "setstate", "binomialvariate",
}

#: Wall-clock reads that leak host time into results.  Monotonic and
#: perf-counter clocks are exempt: they only ever feed telemetry and
#: timeouts, never values.
_WALLCLOCK_CALLS = {
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
}

#: Module-path fragments that put a file on the cache-keyed/solver path:
#: anything here feeds cache keys, solver results, or golden metrics.
KEYED_PATH_FRAGMENTS = (
    "repro/cache/",
    "repro/serialize.py",
    "repro/spice/analysis/",
    "repro/spice/devices/",
    "repro/spice/waveforms.py",
    "repro/mtj/",
    "repro/cells/",
    "repro/recovery/",
)


def _is_keyed(module: PyModule) -> bool:
    if module.has_module_marker("keyed-path"):
        return True
    return any(fragment in module.rel for fragment in KEYED_PATH_FRAGMENTS)


@rule("dev.unseeded-rng", Severity.ERROR,
      "np.random.* / random.* convenience calls draw from an unseeded "
      "global stream; results change run to run")
def check_unseeded_rng(project: Project, emit) -> None:
    for module in project:
        if module.tree is None:
            continue
        aliases = module.import_aliases()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, aliases)
            if not name:
                continue
            _check_rng_call(module, node, name, emit)


def _check_rng_call(module: PyModule, node: ast.Call, name: str,
                    emit) -> None:
    parts = name.split(".")
    if name.startswith("numpy.random."):
        attr = parts[-1]
        if attr == "default_rng":
            if not node.args and not node.keywords:
                emit(module, node.lineno,
                     "np.random.default_rng() without a seed draws an "
                     "OS-entropy stream",
                     hint="pass an explicit seed or a spawned SeedSequence "
                          "(repro.parallel.spawn_rngs)")
            return
        if attr in _NP_RANDOM_OK:
            return
        emit(module, node.lineno,
             f"np.random.{attr} uses numpy's unseeded global stream",
             hint="draw from a seeded np.random.Generator instead")
        return
    if name == "random.Random" or name == "random.SystemRandom":
        if name == "random.SystemRandom" or (
                not node.args and not node.keywords):
            emit(module, node.lineno,
                 f"{name}() without a seed is irreproducible",
                 hint="pass an explicit seed: random.Random(seed)")
        return
    if parts[0] == "random" and len(parts) == 2 and (
            parts[1] in _STDLIB_RANDOM_FNS):
        emit(module, node.lineno,
             f"random.{parts[1]} draws from the shared global stream",
             hint="use a seeded random.Random(seed) instance or numpy "
                  "Generator")


@rule("dev.wallclock-dependence", Severity.ERROR,
      "wall-clock read (time.time / datetime.now / date.today) inside a "
      "cache-keyed or solver-path module")
def check_wallclock(project: Project, emit) -> None:
    for module in project:
        if module.tree is None or not _is_keyed(module):
            continue
        aliases = module.import_aliases()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, aliases)
            if name in _WALLCLOCK_CALLS:
                emit(module, node.lineno,
                     f"{name}() reads the wall clock on the cache-keyed "
                     f"path; the value can leak into results or keys",
                     hint="use time.monotonic()/perf_counter() for "
                          "intervals, or take the timestamp at the edge "
                          "of the system and pass it in")


def _digest_callers(module: PyModule) -> List[ast.FunctionDef]:
    """Functions that call ``stable_digest``/``canonical_json`` plus
    ``payload`` methods of ``Serializable`` subclasses — the functions
    whose output reaches a canonical digest."""
    if module.tree is None:
        return []
    aliases = module.import_aliases()
    digest_fns: List[ast.FunctionDef] = []
    serializable_classes: Set[str] = set()
    for classdef in module.classes():
        for base in classdef.bases:
            base_name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else "")
            if base_name == "Serializable":
                serializable_classes.add(classdef.name)
    seen: Set[int] = set()

    def add(func: ast.FunctionDef) -> None:
        if id(func) not in seen:
            seen.add(id(func))
            digest_fns.append(func)

    for classdef in module.classes():
        if classdef.name not in serializable_classes:
            continue
        for stmt in classdef.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "payload":
                add(stmt)
    for func in module.functions():
        if not isinstance(func, ast.FunctionDef):
            continue
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = resolve_call_name(node.func, aliases)
                if name.rsplit(".", 1)[-1] in ("stable_digest",
                                               "canonical_json"):
                    add(func)
                    break
    return digest_fns


def _inside_sorted(node: ast.AST,
                   parents: Dict[ast.AST, ast.AST],
                   stop: ast.AST) -> bool:
    """Is ``node`` (transitively) an argument of a ``sorted(...)`` call
    below ``stop``?"""
    cursor: Optional[ast.AST] = node
    while cursor is not None and cursor is not stop:
        if isinstance(cursor, ast.Call) and isinstance(
                cursor.func, ast.Name) and cursor.func.id == "sorted":
            return True
        cursor = parents.get(cursor)
    return False


@rule("dev.unsorted-digest-iteration", Severity.ERROR,
      "unsorted dict-view or set iteration in a function feeding "
      "stable_digest/canonical_json — element order leaks into digests")
def check_unsorted_digest_iteration(project: Project, emit) -> None:
    # canonical_json sorts *dict keys* itself, so dicts and dict
    # comprehensions are safe; the hazard is materialising .items() /
    # .keys() / .values() or a set into an order-carrying list/tuple.
    for module in project:
        for func in _digest_callers(module):
            parents = parent_map(func)
            for node in ast.walk(func):
                iter_expr = None
                if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    iter_expr = node.generators[0].iter
                elif isinstance(node, ast.For):
                    iter_expr = node.iter
                if iter_expr is None:
                    continue
                bad = ""
                if isinstance(iter_expr, ast.Call) and isinstance(
                        iter_expr.func, ast.Attribute) and (
                        iter_expr.func.attr in ("items", "keys", "values")):
                    bad = f".{iter_expr.func.attr}()"
                elif isinstance(iter_expr, (ast.Set, ast.SetComp)):
                    bad = "a set"
                if not bad:
                    continue
                if _inside_sorted(iter_expr, parents, func):
                    continue
                emit(module, iter_expr.lineno,
                     f"iteration over {bad} inside "
                     f"{getattr(func, 'name', '?')}() feeds a canonical "
                     f"digest without a defined order",
                     hint="wrap the iterable in sorted(...)")
