"""Devlint self-test: run every rule against the seeded bad-code corpus.

Each file under ``devlint/corpus/`` is a deliberately defective fixture
carrying a ``# devlint-expect: rule-id[, rule-id...]`` header naming the
rules it must trip.  The self-test lints each fixture as its own
single-file project and checks

* every fixture fires at least its expected rules (false-negative guard),
* the union of fired rules covers every registered rule (a new rule
  without a fixture fails the gate), and
* no fixture expectation names an unknown rule (typo guard).

The false-positive guard is the CI step next door: ``repro devlint src``
must exit 0 on the real tree.
"""

from __future__ import annotations

import os
import re
from typing import List, Set, Tuple

from repro.devlint import registry
from repro.devlint.model import load_project

_EXPECT_RE = re.compile(r"#\s*devlint-expect:\s*(?P<rules>[a-z0-9.,\-\s]+)")


def corpus_dir() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "corpus")


def corpus_files() -> List[str]:
    root = corpus_dir()
    if not os.path.isdir(root):
        return []
    return [os.path.join(root, name) for name in sorted(os.listdir(root))
            if name.endswith(".py")]


def expected_rules(path: str) -> Set[str]:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    expected: Set[str] = set()
    for match in _EXPECT_RE.finditer(text):
        expected.update(part.strip() for part in
                        match.group("rules").split(",") if part.strip())
    return expected


def run_self_test() -> Tuple[bool, List[str]]:
    """Returns ``(ok, log_lines)`` in the same shape as the circuit
    lint's corpus self-test."""
    lines: List[str] = []
    ok = True
    fired: Set[str] = set()
    known = set(registry.rule_ids())

    files = corpus_files()
    if not files:
        return False, [f"FAIL corpus: no fixtures under {corpus_dir()}"]

    for path in files:
        name = os.path.basename(path)
        expected = expected_rules(path)
        unknown = expected - known
        if unknown:
            ok = False
            lines.append(f"FAIL corpus {name}: expects unknown rules "
                         f"{sorted(unknown)}")
            continue
        if not expected:
            ok = False
            lines.append(f"FAIL corpus {name}: no '# devlint-expect:' "
                         f"header")
            continue
        project = load_project([path], excludes=(), root=corpus_dir())
        report = registry.run_rules(project, target=name)
        got = set(report.rule_ids())
        fired |= got
        missing = expected - got
        if missing:
            ok = False
            lines.append(f"FAIL corpus {name}: expected {sorted(missing)} "
                         f"to fire, got {sorted(got)}")
        else:
            lines.append(f"ok   corpus {name}: {sorted(expected)}")

    uncovered = known - fired
    if uncovered:
        ok = False
        lines.append(f"FAIL coverage: rules never fired: "
                     f"{sorted(uncovered)}")
    else:
        lines.append(f"ok   coverage: all {len(known)} rules fired")
    return ok, lines
