"""Solver-resilience hygiene: convergence retries must go through the
recovery ladder.

Before the ladder existed, every engine grew its own hard-coded retry
(`except ConvergenceError: solve again at gmin=1e-9`).  Those ad-hoc
blocks are invisible to the :class:`~repro.recovery.policy.RecoveryPolicy`
fingerprint, so two runs could differ in how they recover — and hence in
their result bits — while sharing a cache key.  The rule flags any
``except`` handler that catches :class:`~repro.errors.ConvergenceError`
and then calls a solver entry point directly from the handler body;
escalation belongs in :mod:`repro.recovery` (rung generators,
``gmin_ladder_retry``, ``dc_recover``), whose configuration *is*
fingerprinted.

``repro/recovery/`` itself is exempt (it is the one place retries are
implemented); anything else can opt out a reviewed special case with a
``# devlint: recovery-exempt`` module marker.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.diagnostics import Severity

from repro.devlint.model import Project, resolve_call_name
from repro.devlint.registry import rule

#: Final path components of solver entry points: a call whose dotted
#: name ends in one of these, made from inside a ConvergenceError
#: handler, is an inline retry.
_SOLVER_CALL_TAILS = {
    "solve", "_newton", "newton_step", "solve_dc", "run_transient",
    "run_adaptive_transient", "run_ensemble_transient",
}

#: The module tree that is allowed to implement retries.
_LADDER_PATH_FRAGMENT = "repro/recovery/"


def _caught_names(handler: ast.ExceptHandler) -> List[str]:
    caught = handler.type
    if caught is None:
        return []
    nodes = caught.elts if isinstance(caught, ast.Tuple) else [caught]
    names: List[str] = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


@rule("dev.bare-convergence-retry", Severity.ERROR,
      "an 'except ConvergenceError' handler re-runs a solver inline "
      "instead of escalating through the repro.recovery ladder")
def check_bare_convergence_retry(project: Project, emit) -> None:
    for module in project:
        if module.tree is None:
            continue
        if _LADDER_PATH_FRAGMENT in module.rel:
            continue
        if module.has_module_marker("recovery-exempt"):
            continue
        aliases = module.import_aliases()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if "ConvergenceError" not in _caught_names(node):
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if not isinstance(sub, ast.Call):
                        continue
                    name = resolve_call_name(sub.func, aliases)
                    tail = name.rsplit(".", 1)[-1] if name else ""
                    if tail in _SOLVER_CALL_TAILS:
                        emit(module, sub.lineno,
                             f"convergence failure handled by calling "
                             f"{tail}() inline — an ad-hoc retry the "
                             f"recovery-policy fingerprint cannot see",
                             hint="record the failure and escalate after "
                                  "the handler via repro.recovery "
                                  "(policy rungs, gmin_ladder_retry, "
                                  "dc_recover)")
