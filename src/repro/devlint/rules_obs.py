"""Observability and error-hygiene rules.

* Spans must be entered via ``with`` — a manual ``__enter__()`` leaks
  the span (and corrupts the contextvar nesting) on any exception raised
  before the matching ``__exit__``; a span that is created but never
  entered silently records nothing.
* Every :class:`~repro.errors.ReproError` subclass that overrides
  ``__init__`` must call ``super().__init__`` — that call is what
  captures the ``diagnostics`` tuple, the open span stack and the
  metrics snapshot that :meth:`~repro.errors.ReproError.context_report`
  renders.  Skipping it produces exceptions whose context report is
  silently empty.
* Files that do not parse cannot be analyzed (or imported): surface the
  syntax error as a first-class diagnostic instead of dying.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.lint.diagnostics import Severity

from repro.devlint.model import Project, PyModule
from repro.devlint.registry import rule

#: Local names a span constructor is bound to across the codebase.
_SPAN_NAMES = {"span", "_obs_span"}


def _span_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _SPAN_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr == "span" and isinstance(
            func.value, ast.Name) and func.value.id in ("obs", "tracer")
    return False


def _scopes(module: PyModule) -> List[ast.AST]:
    """Module plus every function body — the units span usage is
    resolved within."""
    scopes: List[ast.AST] = []
    if module.tree is None:
        return scopes
    scopes.append(module.tree)
    scopes.extend(module.functions())
    return scopes


def _direct_statements(scope: ast.AST) -> List[ast.stmt]:
    """Statements belonging to ``scope`` itself, excluding nested
    function bodies (they are their own scope)."""
    out: List[ast.stmt] = []
    stack: List[ast.stmt] = list(getattr(scope, "body", []))
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        out.append(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.excepthandler):
                stack.extend(child.body)
    return out


@rule("dev.span-without-with", Severity.ERROR,
      "an obs span is opened manually (or never entered) instead of via "
      "a 'with' block")
def check_span_usage(project: Project, emit) -> None:
    for module in project:
        if module.tree is None:
            continue
        for scope in _scopes(module):
            statements = _direct_statements(scope)
            assigned: Dict[str, ast.stmt] = {}
            with_names: Set[str] = set()
            entered: Dict[str, ast.stmt] = {}

            for stmt in statements:
                if isinstance(stmt, ast.Expr) and _span_call(stmt.value):
                    emit(module, stmt.lineno,
                         "span(...) result is discarded — the span is "
                         "never entered and records nothing",
                         hint="use 'with span(...):' around the timed "
                              "region")
                    continue
                if isinstance(stmt, ast.Assign) and _span_call(stmt.value):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            assigned[target.id] = stmt
                    continue
                if isinstance(stmt, ast.With):
                    for item in stmt.items:
                        expr = item.context_expr
                        if isinstance(expr, ast.Name):
                            with_names.add(expr.id)
                for node in ast.walk(stmt):
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr in ("__enter__", "__exit__")
                            and isinstance(node.func.value, ast.Name)):
                        entered[node.func.value.id] = stmt

            for name, stmt in assigned.items():
                if name in entered:
                    emit(module, entered[name].lineno,
                         f"span {name!r} is driven through manual "
                         f"__enter__/__exit__ calls; an exception in "
                         f"between leaks the span",
                         hint=f"restructure as 'with {name}:' (wrap the "
                              f"body in a function if control flow "
                              f"makes that awkward)")
                elif name not in with_names:
                    emit(module, stmt.lineno,
                         f"span assigned to {name!r} is never entered "
                         f"with a 'with' block in this scope",
                         hint=f"use 'with {name}:' or drop the span")


def _repro_error_classes(project: Project) -> Set[str]:
    """Transitive set of class names deriving from ReproError anywhere
    in the project (plus ReproError itself)."""
    known: Set[str] = {"ReproError"}
    class_bases: Dict[str, Set[str]] = {}
    for module in project:
        for classdef in module.classes():
            bases = set()
            for base in classdef.bases:
                if isinstance(base, ast.Name):
                    bases.add(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.add(base.attr)
            class_bases.setdefault(classdef.name, set()).update(bases)
    changed = True
    while changed:
        changed = False
        for name, bases in class_bases.items():
            if name not in known and bases & known:
                known.add(name)
                changed = True
    return known


@rule("dev.error-super-init", Severity.ERROR,
      "a ReproError subclass overrides __init__ without calling "
      "super().__init__ — diagnostics and obs context are dropped")
def check_error_super_init(project: Project, emit) -> None:
    error_classes = _repro_error_classes(project)
    for module in project:
        for classdef in module.classes():
            if classdef.name == "ReproError":
                continue
            base_names = {base.id if isinstance(base, ast.Name)
                          else base.attr if isinstance(base, ast.Attribute)
                          else "" for base in classdef.bases}
            if not (base_names & error_classes):
                continue
            init = next((s for s in classdef.body
                         if isinstance(s, ast.FunctionDef)
                         and s.name == "__init__"), None)
            if init is None:
                continue
            calls_super = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__init__"
                for node in ast.walk(init))
            if not calls_super:
                emit(module, init.lineno,
                     f"{classdef.name}.__init__ never calls "
                     f"super().__init__ — the exception loses its "
                     f"diagnostics tuple, span stack and metrics "
                     f"snapshot",
                     hint="call super().__init__(message) first")


@rule("dev.syntax-error", Severity.ERROR,
      "a file under analysis does not parse")
def check_syntax(project: Project, emit) -> None:
    for module in project.parse_failures():
        emit(module, 1, f"file does not parse: {module.error}",
             hint="fix the syntax error")
