"""Source model for the devlint analyzer: parsed modules + marker comments.

Devlint rules operate on a :class:`Project` — a set of Python source
files parsed to ASTs, with the raw source lines kept alongside so rules
can read the structured **marker comments** that bind analyzer knowledge
to the code it describes:

* ``# devlint: ignore[rule-id]`` — trailing on a line: suppress that
  rule's finding on this line (the devlint analogue of ``noqa``; use
  sparingly and leave a reason in a neighbouring comment).
* ``# devlint: fingerprint-fields <ClassName>`` — trailing on a
  module-level ``_X_FIELDS = (...)`` tuple: declares that the tuple must
  enumerate every public field of ``ClassName`` (cache-key completeness).
* ``# devlint: fingerprint-branches`` — on a ``def`` line (or the line
  above it): the function dispatches on ``type(x) is SomeClass`` and each
  branch must reference every public constructor field of its class.
* ``# devlint: fingerprint-ignore field1,field2`` — inside such a
  branch: exempt the named fields (e.g. values that are genuinely
  derived from already-fingerprinted ones).
* ``# devlint: not-keyed`` — trailing on a module-level ALL-CAPS
  constant in a module that exposes a ``*config_fingerprint`` function:
  declares the constant cannot change numerical results, so it is
  deliberately absent from the engine fingerprint.
* ``# devlint: keyed-path`` — anywhere in a module: treat the module as
  part of the cache-keyed/solver path even though its path is not in the
  built-in keyed-prefix list.

Marker parsing is purely lexical (the analyzer never imports the code it
lints), which is what lets the self-test corpus ship deliberately broken
— even syntactically broken — fixtures.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Path fragments excluded from project loads by default.  The corpus is
#: *deliberately* broken code — only the self-test may lint it.
DEFAULT_EXCLUDES = ("devlint/corpus",)

_MARKER_RE = re.compile(r"#\s*devlint:\s*(?P<body>.+?)\s*$")
_IGNORE_RE = re.compile(r"ignore\[(?P<rules>[a-z0-9.,\-\s]+)\]")


@dataclass
class PyModule:
    """One parsed source file."""

    path: str  #: absolute path
    rel: str   #: path relative to the project root, ``/``-separated
    source: str
    lines: List[str] = field(default_factory=list)
    tree: Optional[ast.Module] = None
    error: str = ""  #: syntax-error message when ``tree`` is ``None``

    # -- marker access -----------------------------------------------------

    def marker(self, lineno: int) -> str:
        """The ``# devlint: ...`` marker body on 1-based ``lineno``
        (empty string when the line carries none)."""
        if not 1 <= lineno <= len(self.lines):
            return ""
        match = _MARKER_RE.search(self.lines[lineno - 1])
        return match.group("body") if match else ""

    def marker_at_or_above(self, lineno: int) -> str:
        """Marker on ``lineno`` itself, falling back to the line above —
        the two placements accepted for ``def``/assignment markers."""
        return self.marker(lineno) or self.marker(lineno - 1)

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        """True when ``lineno`` carries ``# devlint: ignore[...]`` naming
        ``rule_id`` (with or without the ``dev.`` prefix)."""
        body = self.marker(lineno)
        if not body:
            return False
        match = _IGNORE_RE.search(body)
        if not match:
            return False
        names = {part.strip() for part in match.group("rules").split(",")}
        return rule_id in names or rule_id.removeprefix("dev.") in names

    def has_module_marker(self, body: str) -> bool:
        """True when any line of the module carries ``# devlint: <body>``."""
        for line in self.lines:
            match = _MARKER_RE.search(line)
            if match is not None and match.group("body") == body:
                return True
        return False

    # -- AST helpers -------------------------------------------------------

    def functions(self) -> Iterable[ast.FunctionDef]:
        """Every function/method definition in the module (nested too)."""
        if self.tree is None:
            return
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node  # type: ignore[misc]

    def classes(self) -> Iterable[ast.ClassDef]:
        if self.tree is None:
            return
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def import_aliases(self) -> Dict[str, str]:
        """Best-effort map of local name -> canonical dotted module/object.

        ``import numpy as np`` yields ``{"np": "numpy"}``; ``from numpy
        import random as nr`` yields ``{"nr": "numpy.random"}``.  Relative
        imports are resolved only to their written form (level dots
        dropped), which is enough for the repro-internal modules rules
        care about.
        """
        aliases: Dict[str, str] = {}
        if self.tree is None:
            return aliases
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")
        return aliases


def resolve_call_name(node: ast.AST,
                      aliases: Dict[str, str]) -> str:
    """Canonical dotted name of a call target, through the import map.

    ``np.random.normal`` with ``np -> numpy`` resolves to
    ``"numpy.random.normal"``; unresolvable shapes (calls on locals,
    subscripts, ...) return the raw dotted text, or ``""``.
    """
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
    else:
        return ""
    parts.reverse()
    head = aliases.get(parts[0], parts[0])
    return ".".join([head, *parts[1:]])


def dataclass_fields(classdef: ast.ClassDef,
                     include_private: bool = False) -> List[str]:
    """Init-participating field names of a (assumed) dataclass body.

    Annotated assignments in declaration order, skipping ``ClassVar``
    annotations, ``field(init=False)`` declarations and (by default)
    underscore-prefixed names.  Plain un-annotated class attributes
    (e.g. ``nonlinear = False``) are not dataclass fields and are
    excluded naturally.
    """
    names: List[str] = []
    for stmt in classdef.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if not include_private and name.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        if isinstance(stmt.value, ast.Call):
            call_name = stmt.value.func
            is_field = (isinstance(call_name, ast.Name)
                        and call_name.id == "field") or (
                            isinstance(call_name, ast.Attribute)
                            and call_name.attr == "field")
            if is_field and any(
                    kw.arg == "init"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in stmt.value.keywords):
                continue
        names.append(name)
    return names


def is_dataclass_def(classdef: ast.ClassDef) -> bool:
    """True when the class carries a ``@dataclass`` /
    ``@dataclasses.dataclass(...)`` decorator."""
    for deco in classdef.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else "")
        if name == "dataclass":
            return True
    return False


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child -> parent links for ancestor queries."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


class Project:
    """A set of parsed modules under one root — the devlint subject."""

    def __init__(self, root: str, modules: Sequence[PyModule]):
        self.root = root
        self.modules: List[PyModule] = sorted(modules, key=lambda m: m.rel)
        self._by_rel = {m.rel: m for m in self.modules}

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def module_matching(self, suffix: str) -> Optional[PyModule]:
        """The module whose relative path ends with ``suffix``."""
        for module in self.modules:
            if module.rel.endswith(suffix):
                return module
        return None

    def parse_failures(self) -> List[PyModule]:
        return [m for m in self.modules if m.tree is None]

    def find_classes(self, name: str) -> List[Tuple[PyModule, ast.ClassDef]]:
        """Every class definition named ``name`` across the project."""
        found: List[Tuple[PyModule, ast.ClassDef]] = []
        for module in self.modules:
            for classdef in module.classes():
                if classdef.name == name:
                    found.append((module, classdef))
        return found

    def class_fields(self, name: str,
                     include_bases: bool = True) -> Optional[Set[str]]:
        """Union of dataclass fields of ``name`` (and its in-project
        bases); ``None`` when the class is not defined in the project.

        Only ``@dataclass``-decorated bases contribute — annotated class
        attributes of a plain base (e.g. ``Device.nonlinear``) are not
        init fields of the subclass, matching dataclass semantics.
        """
        found = self.find_classes(name)
        if not found:
            return None
        fields: Set[str] = set()
        for _module, classdef in found:
            fields.update(dataclass_fields(classdef))
            if not include_bases:
                continue
            for base in classdef.bases:
                base_name = base.id if isinstance(base, ast.Name) else (
                    base.attr if isinstance(base, ast.Attribute) else "")
                if not base_name or base_name == name:
                    continue
                if not any(is_dataclass_def(base_def)
                           for _m, base_def in self.find_classes(base_name)):
                    continue
                inherited = self.class_fields(base_name)
                if inherited:
                    fields.update(inherited)
        return fields


def load_project(paths: Sequence[str],
                 excludes: Sequence[str] = DEFAULT_EXCLUDES,
                 root: Optional[str] = None) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`.

    ``paths`` may mix files and directories; ``excludes`` are substring
    filters on the ``/``-separated relative path (the corpus is excluded
    by default).  Files that fail to parse are kept as modules with
    ``tree=None`` so the syntax-error rule can report them.
    """
    root = os.path.abspath(root or os.getcwd())
    files: List[str] = []
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames
                           if d not in ("__pycache__", ".git")]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    files.append(os.path.join(dirpath, filename))

    modules: List[PyModule] = []
    seen: Set[str] = set()
    for path in files:
        if path in seen:
            continue
        seen.add(path)
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if any(fragment in rel for fragment in excludes):
            continue
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        module = PyModule(path=path, rel=rel, source=source,
                          lines=source.splitlines())
        try:
            module.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            module.error = f"line {exc.lineno}: {exc.msg}"
        modules.append(module)
    return Project(root, modules)
