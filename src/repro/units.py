"""Unit constants and formatting helpers.

All internal quantities in :mod:`repro` are expressed in SI base units
(volts, amperes, ohms, seconds, joules, watts, metres).  The paper and the
generated reports use engineering units (fJ, ps, pW, µm², ...); the helpers
here convert and format consistently so every table renderer agrees on the
same conventions.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Scale factors (multiply an SI value to express it in the unit).
# ---------------------------------------------------------------------------

FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23
#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19
#: Reduced Planck constant [J s].
HBAR = 1.054571817e-34
#: Bohr magneton [J/T].
BOHR_MAGNETON = 9.2740100783e-24
#: Vacuum permeability [T m/A].
MU_0 = 4e-7 * math.pi

#: Zero Celsius in kelvin.
ZERO_CELSIUS_K = 273.15


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return temp_c + ZERO_CELSIUS_K


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return temp_k - ZERO_CELSIUS_K


def thermal_voltage(temp_k: float) -> float:
    """Thermal voltage kT/q [V] at the given absolute temperature."""
    if temp_k <= 0.0:
        raise ValueError(f"absolute temperature must be positive, got {temp_k}")
    return BOLTZMANN * temp_k / ELEMENTARY_CHARGE


# ---------------------------------------------------------------------------
# Conversions used by the report/table layer.
# ---------------------------------------------------------------------------


def to_femtojoules(energy_j: float) -> float:
    """Express an energy given in joules in femtojoules."""
    return energy_j / FEMTO


def to_picoseconds(time_s: float) -> float:
    """Express a time given in seconds in picoseconds."""
    return time_s / PICO


def to_picowatts(power_w: float) -> float:
    """Express a power given in watts in picowatts."""
    return power_w / PICO


def to_microns(length_m: float) -> float:
    """Express a length given in metres in micrometres."""
    return length_m / MICRO


def to_square_microns(area_m2: float) -> float:
    """Express an area given in square metres in square micrometres."""
    return area_m2 / (MICRO * MICRO)


def to_microamps(current_a: float) -> float:
    """Express a current given in amperes in microamperes."""
    return current_a / MICRO


def to_kiloohms(resistance_ohm: float) -> float:
    """Express a resistance given in ohms in kiloohms."""
    return resistance_ohm / KILO


_ENG_PREFIXES = (
    (1e-18, "a"),
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
)


def format_eng(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering SI prefix, e.g. ``4.59 fJ``.

    ``digits`` controls the number of significant digits of the mantissa.
    Zero is rendered without a prefix.
    """
    if value == 0.0:
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    scale, prefix = _ENG_PREFIXES[0]
    for candidate_scale, candidate_prefix in _ENG_PREFIXES:
        if magnitude >= candidate_scale:
            scale, prefix = candidate_scale, candidate_prefix
        else:
            break
    mantissa = value / scale
    return f"{mantissa:.{digits}g} {prefix}{unit}".rstrip()
