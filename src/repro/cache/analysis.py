"""Lookup/store glue between the solver entry points and the cache.

:func:`repro.spice.analysis.transient.run_transient` and
:func:`repro.spice.analysis.dc.solve_dc` call :func:`transient_handle` /
:func:`dc_handle` once caching is active.  A handle owns the derived key
and the full request record; ``lookup()`` returns a fully hydrated
result on a hit (``None`` otherwise) and ``store()`` persists a freshly
computed one.  Every failure mode inside this module — uncacheable
device, corrupt entry, full disk — degrades to "run/ran normally";
caching must never turn a working analysis into an error.

Hydration restores more than the waveforms: characterisation and fault
flows read MTJ *end state* off the circuit after a transient
(``stored_bit()``, ``switching.events``), so a transient entry carries
each MTJ's final magnetisation, switching progress and event list, and a
hit writes them back into the caller's circuit exactly as the solver
would have left them.  (Capacitor Newton-history scratch state is *not*
restored — no flow reads it, and it only seeds the next run's first
iterate, which ``reset_state()`` clears anyway.)

Counters: ``cache.hit`` / ``cache.miss`` / ``cache.store`` /
``cache.uncacheable`` are incremented unconditionally (the registry is
always live; one integer add per analysis), so the ≥90 % solver-skip
acceptance gate can be asserted without a tracing session.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import CacheError
from repro.obs import span as _obs_span
from repro.cache.keys import (
    dc_request,
    rebuild_circuit,
    request_key,
    transient_request,
)
from repro.cache.store import (
    CacheEntry,
    ResultCache,
    _decode_array,
    _encode_array,
    bypassed,
    get_active_cache,
)


def _metrics():
    from repro.obs import metrics

    return metrics()


# ---------------------------------------------------------------------------
# Storage end-state capture / restore
# ---------------------------------------------------------------------------


def _capture_mtj_state(circuit) -> List[Dict[str, Any]]:
    """Per-storage-device end state after a transient, in netlist order.

    Delegates to the NV-backend layer, which knows every technology's
    device state (MTJ magnetisation + STT progress/events, and the SOT
    record for NAND-SPIN junctions)."""
    from repro.nv.base import capture_storage_state

    return capture_storage_state(circuit)


def _restore_mtj_state(circuit, records: List[Dict[str, Any]]) -> None:
    """Write captured storage end state back into the caller's circuit."""
    from repro.nv.base import hydrate_storage_state

    hydrate_storage_state(circuit, records)


# ---------------------------------------------------------------------------
# Handles
# ---------------------------------------------------------------------------


class _Handle:
    """One analysis request against the active cache."""

    kind = ""

    def __init__(self, cache: ResultCache, key: str,
                 request: Dict[str, Any], circuit) -> None:
        self.cache = cache
        self.key = key
        self.request = request
        self.circuit = circuit

    def _lookup_entry(self) -> Optional[CacheEntry]:
        entry = self.cache.load(self.key)
        if entry is not None and entry.kind != self.kind:
            entry = None
        return entry

    def _store_entry(self, result_payload: Dict[str, Any]) -> None:
        try:
            self.cache.store(CacheEntry(key=self.key, kind=self.kind,
                                        request=self.request,
                                        result=result_payload))
        except Exception:  # noqa: BLE001 — a failed store must not fail the run
            return
        _metrics().inc("cache.store", 1)


class TransientHandle(_Handle):
    kind = "transient"

    def lookup(self):
        """Hydrated :class:`TransientResult` on a hit, else ``None``."""
        from repro.recovery.health import SolverHealth
        from repro.spice.analysis.engine import SolverStats
        from repro.spice.analysis.transient import TransientResult

        with _obs_span("cache.lookup", category="cache",
                       attrs={"kind": self.kind,
                              "key": self.key[:12]}) as sp:
            entry = self._lookup_entry()
            if entry is None:
                _metrics().inc("cache.miss", 1)
                sp.annotate(outcome="miss")
                return None
            try:
                payload = entry.result
                times = _decode_array(payload["times"])
                voltages = _decode_array(payload["node_voltages"])
                currents = _decode_array(payload["branch_currents"])
                stats = SolverStats.from_json(payload["stats"])
                raw_trace = payload.get("dt_trace")
                dt_trace = (_decode_array(raw_trace)
                            if raw_trace is not None else None)
                raw_health = payload.get("health")
                health = (SolverHealth.from_json(raw_health)
                          if raw_health is not None else None)
                self.circuit.finalize()
                _restore_mtj_state(self.circuit, payload["mtj_state"])
            except Exception:  # noqa: BLE001 — broken entry reads as a miss
                _metrics().inc("cache.miss", 1)
                sp.annotate(outcome="miss")
                return None
            _metrics().inc("cache.hit", 1)
            sp.annotate(outcome="hit")
            return TransientResult(self.circuit, times, voltages, currents,
                                   stats=stats, dt_trace=dt_trace,
                                   health=health)

    def store(self, result) -> None:
        """Persist a freshly computed transient (with MTJ end state)."""
        self._store_entry({
            "times": _encode_array(result.times),
            "node_voltages": _encode_array(result.node_voltages),
            "branch_currents": _encode_array(result.branch_currents),
            "stats": result.stats.to_json() if result.stats is not None
            else None,
            "mtj_state": _capture_mtj_state(self.circuit),
            "dt_trace": (_encode_array(result.dt_trace)
                         if result.dt_trace is not None else None),
            "health": (result.health.to_json()
                       if result.health is not None else None),
        })


class DCHandle(_Handle):
    kind = "dc"

    def lookup(self):
        """Hydrated :class:`DCResult` on a hit, else ``None``."""
        from repro.spice.analysis.dc import DCResult

        with _obs_span("cache.lookup", category="cache",
                       attrs={"kind": self.kind,
                              "key": self.key[:12]}) as sp:
            entry = self._lookup_entry()
            if entry is None:
                _metrics().inc("cache.miss", 1)
                sp.annotate(outcome="miss")
                return None
            try:
                payload = entry.result
                voltages = _decode_array(payload["voltages"])
                currents = _decode_array(payload["branch_currents"])
                iterations = int(payload["iterations"])
                gmin = float(payload["gmin"])
                self.circuit.finalize()
            except Exception:  # noqa: BLE001 — broken entry reads as a miss
                _metrics().inc("cache.miss", 1)
                sp.annotate(outcome="miss")
                return None
            _metrics().inc("cache.hit", 1)
            sp.annotate(outcome="hit")
            return DCResult(self.circuit, voltages, currents, iterations,
                            gmin)

    def store(self, result) -> None:
        self._store_entry({
            "voltages": _encode_array(result.voltages),
            "branch_currents": _encode_array(result.branch_currents),
            "iterations": result.iterations,
            "gmin": result.gmin,
        })


def transient_handle(circuit, *, stop_time, dt, integrator, initial_voltages,
                     dc_seed, max_iterations, vtol, damping, engine,
                     adaptive=None, recovery=None
                     ) -> Optional[TransientHandle]:
    """A handle for this transient request, or ``None`` when caching is
    off / bypassed / the circuit is uncacheable.  ``adaptive`` is the
    sparse engine's timestep-control config dict (or ``None``);
    ``recovery`` the run's
    :class:`~repro.recovery.policy.RecoveryPolicy` (or ``None``)."""
    cache = get_active_cache()
    if cache is None:
        return None
    try:
        request = transient_request(
            circuit, stop_time=stop_time, dt=dt, integrator=integrator,
            initial_voltages=initial_voltages, dc_seed=dc_seed,
            max_iterations=max_iterations, vtol=vtol, damping=damping,
            engine=engine, adaptive=adaptive,
            recovery=(recovery.fingerprint()
                      if recovery is not None else None))
        key = request_key(request)
    except CacheError:
        _metrics().inc("cache.uncacheable", 1)
        return None
    return TransientHandle(cache, key, request, circuit)


def dc_handle(circuit, *, time, initial_guess, max_iterations, vtol,
              damping, engine=None, recovery=None) -> Optional[DCHandle]:
    """A handle for this DC request, or ``None`` when uncacheable."""
    cache = get_active_cache()
    if cache is None:
        return None
    try:
        request = dc_request(circuit, time=time, initial_guess=initial_guess,
                             max_iterations=max_iterations, vtol=vtol,
                             damping=damping, engine=engine,
                             recovery=(recovery.fingerprint()
                                       if recovery is not None else None))
        key = request_key(request)
    except CacheError:
        _metrics().inc("cache.uncacheable", 1)
        return None
    return DCHandle(cache, key, request, circuit)


# ---------------------------------------------------------------------------
# Verification (``repro cache verify``)
# ---------------------------------------------------------------------------


def verify_entry(entry: CacheEntry) -> Dict[str, Any]:
    """Re-run a stored entry from its own request record and compare the
    recompute against the stored arrays **bit-exactly**.

    Returns ``{"key", "kind", "ok", "detail"}``.  The recompute runs
    under :func:`bypassed` so it can neither hit the entry being checked
    nor overwrite it.
    """
    from repro.recovery.policy import RecoveryPolicy
    from repro.spice.analysis.dc import solve_dc
    from repro.spice.analysis.transient import run_transient

    request = entry.request
    circuit = rebuild_circuit(request["circuit"])
    raw_policy = request.get("recovery")
    policy = (RecoveryPolicy.from_fingerprint(raw_policy)
              if raw_policy is not None else None)

    def bits(blob: Dict[str, Any]) -> bytes:
        return np.ascontiguousarray(_decode_array(blob)).tobytes()

    with bypassed():
        if entry.kind == "transient":
            adaptive_cfg = request.get("adaptive") or {}
            result = run_transient(
                circuit, stop_time=request["stop_time"], dt=request["dt"],
                integrator=request["integrator"],
                initial_voltages=(dict(request["initial_voltages"])
                                  if request["initial_voltages"] is not None
                                  else None),
                dc_seed=(dict(request["dc_seed"])
                         if request["dc_seed"] is not None else None),
                max_iterations=request["max_iterations"],
                vtol=request["vtol"], damping=request["damping"],
                engine=request["engine"], lint="off",
                adaptive=bool(adaptive_cfg.get("adaptive", False)),
                lte_tol=adaptive_cfg.get("lte_tol"),
                max_dt_factor=adaptive_cfg.get("max_dt_factor"),
                recovery=policy)
            checks = [
                ("times", result.times, entry.result["times"]),
                ("node_voltages", result.node_voltages,
                 entry.result["node_voltages"]),
                ("branch_currents", result.branch_currents,
                 entry.result["branch_currents"]),
            ]
        elif entry.kind == "dc":
            result = solve_dc(
                circuit, time=request["time"],
                initial_guess=(dict(request["initial_guess"])
                               if request["initial_guess"] is not None
                               else None),
                max_iterations=request["max_iterations"],
                vtol=request["vtol"], damping=request["damping"], lint="off",
                engine=request.get("engine"), recovery=policy)
            checks = [
                ("voltages", result.voltages, entry.result["voltages"]),
                ("branch_currents", result.branch_currents,
                 entry.result["branch_currents"]),
            ]
        else:
            raise CacheError(f"cannot verify entry of kind {entry.kind!r}")

    for label, recomputed, stored_blob in checks:
        recomputed_bytes = np.ascontiguousarray(
            np.asarray(recomputed, dtype=np.float64)).tobytes()
        if recomputed_bytes != bits(stored_blob):
            return {"key": entry.key, "kind": entry.kind, "ok": False,
                    "detail": f"{label} differs from stored bits"}
    return {"key": entry.key, "kind": entry.kind, "ok": True,
            "detail": "recompute is bit-identical"}
