"""Dedup-aware batch scheduler for analysis fan-out.

The high-level flows fan identical work out more often than is obvious:
a corner sweep characterises the *typical* corner that Table III's flow
also needs; every zero-magnitude fault baseline re-runs the same nominal
restore; Monte-Carlo draws can collide on the same parameter set.  The
on-disk cache (:mod:`repro.cache.store`) already makes the *second
process* cheap — this module makes the *same batch* cheap: group the
items of one ``map`` call by a content key, dispatch only unique work to
:func:`repro.parallel.parallel_map`, and fan each result back out to
every requester of that key (single-flight semantics — parallel workers
never compute the same key twice, because duplicates never reach the
pool at all).

Correctness restriction: single-flight is only sound when the function
is a pure function of the item *value*.  Campaign tasks are not — their
RNG streams are seeded per item *index* — so :mod:`repro.faults.campaign`
deliberately does not route through here.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.parallel import parallel_map


def _default_key(item: Any) -> Hashable:
    """A grouping key for ``item``: the item itself when hashable
    (frozen dataclasses like ``SimulationCorner``/``MTJParameters``
    hash by value), else its ``repr``."""
    try:
        hash(item)
    except TypeError:
        return repr(item)
    return item


def dedup_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: Optional[int] = None,
    chunksize: int = 1,
    key: Optional[Callable[[Any], Hashable]] = None,
) -> List[Any]:
    """``parallel_map`` that computes each distinct item only once.

    Items are grouped by ``key(item)`` (default: value identity, see
    :func:`_default_key`); one representative per group is dispatched to
    :func:`repro.parallel.parallel_map` and its result is shared by every
    duplicate.  Result order matches ``items``.  Only sound for ``fn``
    that depends on the item value alone — not on call index, call count,
    or ambient RNG state.

    Emits ``scheduler.requests`` / ``scheduler.unique`` /
    ``scheduler.deduped`` counters so tests (and ``repro cache stats``)
    can observe the collapse.
    """
    from repro.obs import metrics

    items = list(items)
    key_fn = key or _default_key
    order: List[Hashable] = []          # first-seen order of unique keys
    slots: Dict[Hashable, List[int]] = {}
    representatives: List[Any] = []
    for index, item in enumerate(items):
        item_key = key_fn(item)
        if item_key not in slots:
            slots[item_key] = []
            order.append(item_key)
            representatives.append(item)
        slots[item_key].append(index)

    registry = metrics()
    registry.inc("scheduler.requests", len(items))
    registry.inc("scheduler.unique", len(representatives))
    registry.inc("scheduler.deduped", len(items) - len(representatives))

    unique_results = parallel_map(fn, representatives, workers=workers,
                                  chunksize=chunksize)

    results: List[Any] = [None] * len(items)
    for item_key, result in zip(order, unique_results):
        for index in slots[item_key]:
            results[index] = result
    return results
