"""Content-addressed cache keys for circuit analyses.

A cache key is the SHA-256 digest of a **canonical serialization** of
everything the analysis result depends on:

* the circuit fingerprint — node names plus, per device and in netlist
  order, the device type, terminal indices and every constructor
  parameter (waveform breakpoints, MOSFET model card, MTJ parameter set,
  the MTJ's *initial* magnetisation state and switching-model charge);
* the analysis options (stop time, timestep, integrator, tolerances,
  initial conditions / DC seed);
* the engine configuration (selected engine plus the fast-engine
  constants and whether the LAPACK LU path is available — a scipy-less
  host must not share entries with a scipy host);
* a code-version salt (:data:`CACHE_SALT`), so upgrading the package
  invalidates every prior entry at once.

Fingerprints are *constructive*: they carry enough to rebuild the exact
circuit (see :func:`rebuild_circuit`), which is what lets ``repro cache
verify`` re-run any stored entry from its own request record and assert
bit-exact agreement.

Anything the fingerprint cannot describe — an unknown device or
waveform class — raises :class:`~repro.errors.CacheError`; callers treat
that as "uncacheable, run normally" rather than guessing at a key.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import repro
from repro.errors import CacheError
from repro.mtj.device import MTJDevice, MTJState
from repro.mtj.dynamics import SwitchingModel
from repro.mtj.parameters import MTJParameters
from repro.mtj.sot import SOTSwitchingModel
from repro.serialize import stable_digest
from repro.spice.devices.mosfet import MOSFET, MOSFETModel
from repro.spice.devices.mtj_element import MTJElement
from repro.spice.devices.sot_element import NandSpinJunction
from repro.spice.devices.passive import Capacitor, Resistor
from repro.spice.devices.sources import CurrentSource, VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.waveforms import DC, PWL, Pulse, Waveform

#: Cache format generation; bump to orphan every existing entry.
CACHE_FORMAT = 1

#: Code-version salt mixed into every key: entries written by a
#: different package version or cache format never collide with ours.
CACHE_SALT = f"repro/{repro.__version__}/cache-v{CACHE_FORMAT}"

_MOSFET_MODEL_FIELDS = (  # devlint: fingerprint-fields MOSFETModel
    "polarity", "vth0", "slope_factor", "kp", "lambda_clm",
    "cox_per_area", "overlap_cap_per_width", "junction_cap_per_width",
    "temperature",
)

_MTJ_PARAM_FIELDS = (  # devlint: fingerprint-fields MTJParameters
    "radius", "free_layer_thickness", "oxide_thickness",
    "resistance_area_product", "tmr_zero_bias", "critical_current",
    "switching_current", "resistance_p", "tmr_half_bias_voltage",
    "thermal_stability", "attempt_time", "write_pulse_width",
)


# devlint: fingerprint-branches
def _waveform_fingerprint(waveform: Waveform) -> Dict[str, Any]:
    if type(waveform) is DC:
        return {"kind": "dc", "level": waveform.level}
    if type(waveform) is Pulse:
        return {"kind": "pulse", "initial": waveform.initial,
                "pulsed": waveform.pulsed, "delay": waveform.delay,
                "rise": waveform.rise, "fall": waveform.fall,
                "width": waveform.width, "period": waveform.period}
    if type(waveform) is PWL:
        return {"kind": "pwl",
                "points": [[t, v] for t, v in waveform.points]}
    raise CacheError(
        f"waveform type {type(waveform).__name__} has no cache fingerprint")


def _rebuild_waveform(data: Dict[str, Any]) -> Waveform:
    kind = data["kind"]
    if kind == "dc":
        return DC(level=float(data["level"]))
    if kind == "pulse":
        return Pulse(initial=float(data["initial"]),
                     pulsed=float(data["pulsed"]), delay=float(data["delay"]),
                     rise=float(data["rise"]), fall=float(data["fall"]),
                     width=float(data["width"]), period=float(data["period"]))
    if kind == "pwl":
        return PWL(points=tuple((float(t), float(v))
                                for t, v in data["points"]))
    raise CacheError(f"unknown waveform kind {kind!r} in cache request")


# devlint: fingerprint-branches
def _device_fingerprint(device: Any) -> Dict[str, Any]:
    if type(device) is Resistor:
        return {"type": "resistor", "name": device.name,
                "nodes": [device.positive, device.negative],
                "resistance": device.resistance}
    if type(device) is Capacitor:
        return {"type": "capacitor", "name": device.name,
                "nodes": [device.positive, device.negative],
                "capacitance": device.capacitance}
    if type(device) is VoltageSource:
        return {"type": "vsource", "name": device.name,
                "nodes": [device.positive, device.negative],
                "waveform": _waveform_fingerprint(device.waveform)}
    if type(device) is CurrentSource:
        return {"type": "isource", "name": device.name,
                "nodes": [device.positive, device.negative],
                "waveform": _waveform_fingerprint(device.waveform)}
    if type(device) is MOSFET:
        return {"type": "mosfet", "name": device.name,
                "nodes": [device.drain, device.gate, device.source,
                          device.bulk],
                "width": device.width, "length": device.length,
                "model": {f: getattr(device.model, f)
                          for f in _MOSFET_MODEL_FIELDS}}
    if type(device) is MTJElement:
        fp: Dict[str, Any] = {
            "type": "mtj", "name": device.name,
            "nodes": [device.free, device.ref],
            # The run begins with reset_state(), so only the *initial*
            # magnetisation matters — not whatever the live state is.
            "initial_state": device._initial_state.value,
            "params": {f: getattr(device.device.params, f)
                       for f in _MTJ_PARAM_FIELDS},
        }
        if device.switching is None:
            fp["switching"] = None
        else:
            fp["switching"] = {
                "dynamic_charge": device.switching.dynamic_charge}
        return fp
    if type(device) is NandSpinJunction:
        fp = {
            "type": "nandspin", "name": device.name,
            "nodes": [device.free, device.ref],
            "hm_nodes": [device.hm_left, device.hm_right],
            "hm_conductance": device.hm_conductance,
            "initial_state": device._initial_state.value,
            "params": {f: getattr(device.device.params, f)
                       for f in _MTJ_PARAM_FIELDS},
        }
        if device.switching is None:
            fp["switching"] = None
        else:
            fp["switching"] = {
                "dynamic_charge": device.switching.dynamic_charge}
        if device.sot is None:
            fp["sot"] = None
        else:
            fp["sot"] = {
                "critical_current": device.sot.critical_current,
                "dynamic_charge": device.sot.dynamic_charge}
        return fp
    raise CacheError(
        f"device type {type(device).__name__} has no cache fingerprint")


def circuit_fingerprint(circuit: Circuit) -> Dict[str, Any]:
    """Constructive fingerprint of a circuit: node names + per-device
    parameter records, in netlist order.

    Raises :class:`~repro.errors.CacheError` when the circuit contains a
    device the fingerprint cannot describe (treat as uncacheable).
    """
    return {
        "name": circuit.name,
        "nodes": circuit.node_names,
        # NV-backend identity (set by the latch builders): two backends —
        # or two parameterisations of one — never share cache entries.
        "nv_backend": getattr(circuit, "nv_backend_fingerprint", None),
        "devices": [_device_fingerprint(d) for d in circuit.devices],
    }


def rebuild_circuit(fingerprint: Dict[str, Any]) -> Circuit:
    """Reconstruct the exact circuit a fingerprint describes.

    Devices are registered directly (not through the ``add_*`` sugar, so
    a MOSFET's already-fingerprinted parasitic capacitors are not added a
    second time) in the original order; :meth:`Circuit.finalize` then
    assigns identical branch indices.  Used by cache verification to
    re-run a stored entry from nothing but its request record.
    """
    try:
        circuit = Circuit(str(fingerprint["name"]))
        for node_name in fingerprint["nodes"]:
            circuit.node(node_name)
        for fp in fingerprint["devices"]:
            kind = fp["type"]
            name = fp["name"]
            nodes = [int(n) for n in fp["nodes"]]
            if kind == "resistor":
                device: Any = Resistor(positive=nodes[0], negative=nodes[1],
                                       name=name,
                                       resistance=float(fp["resistance"]))
            elif kind == "capacitor":
                device = Capacitor(positive=nodes[0], negative=nodes[1],
                                   name=name,
                                   capacitance=float(fp["capacitance"]))
            elif kind == "vsource":
                device = VoltageSource(positive=nodes[0], negative=nodes[1],
                                       name=name,
                                       waveform=_rebuild_waveform(
                                           fp["waveform"]))
            elif kind == "isource":
                device = CurrentSource(positive=nodes[0], negative=nodes[1],
                                       name=name,
                                       waveform=_rebuild_waveform(
                                           fp["waveform"]))
            elif kind == "mosfet":
                model = MOSFETModel(**{f: fp["model"][f]
                                       for f in _MOSFET_MODEL_FIELDS})
                device = MOSFET(drain=nodes[0], gate=nodes[1],
                                source=nodes[2], bulk=nodes[3],
                                model=model, width=float(fp["width"]),
                                length=float(fp["length"]), name=name)
            elif kind == "mtj":
                params = MTJParameters(**{f: fp["params"][f]
                                          for f in _MTJ_PARAM_FIELDS})
                mtj_device = MTJDevice(
                    params=params,
                    state=MTJState(fp["initial_state"]))
                element = MTJElement(free=nodes[0], ref=nodes[1],
                                     device=mtj_device, name=name)
                if fp["switching"] is not None:
                    element.switching = SwitchingModel(
                        device=mtj_device,
                        dynamic_charge=float(
                            fp["switching"]["dynamic_charge"]))
                device = element
            elif kind == "nandspin":
                params = MTJParameters(**{f: fp["params"][f]
                                          for f in _MTJ_PARAM_FIELDS})
                mtj_device = MTJDevice(
                    params=params,
                    state=MTJState(fp["initial_state"]))
                hm_nodes = [int(n) for n in fp["hm_nodes"]]
                junction = NandSpinJunction(
                    free=nodes[0], ref=nodes[1], device=mtj_device,
                    name=name, hm_left=hm_nodes[0], hm_right=hm_nodes[1],
                    hm_conductance=float(fp["hm_conductance"]))
                if fp["switching"] is not None:
                    junction.switching = SwitchingModel(
                        device=mtj_device,
                        dynamic_charge=float(
                            fp["switching"]["dynamic_charge"]))
                if fp["sot"] is not None:
                    junction.sot = SOTSwitchingModel(
                        device=mtj_device,
                        dynamic_charge=float(fp["sot"]["dynamic_charge"]),
                        critical_current=float(
                            fp["sot"]["critical_current"]))
                device = junction
            else:
                raise CacheError(f"unknown device kind {kind!r} in cache "
                                 f"request")
            circuit._register(device, name)
        circuit.nv_backend_fingerprint = fingerprint.get("nv_backend")
        circuit.finalize()
        return circuit
    except CacheError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheError(
            f"malformed circuit fingerprint: {exc}") from exc


def _voltages_fingerprint(
    voltages: Optional[Dict[str, float]]
) -> Optional[List[List[Any]]]:
    """Order-independent form of an ``initial_voltages``/``dc_seed`` map."""
    if voltages is None:
        return None
    return [[name, float(value)] for name, value in sorted(voltages.items())]


def transient_request(
    circuit: Circuit,
    stop_time: float,
    dt: float,
    integrator: str,
    initial_voltages: Optional[Dict[str, float]],
    dc_seed: Optional[Dict[str, float]],
    max_iterations: int,
    vtol: float,
    damping: float,
    engine: str,
    adaptive: Optional[Dict[str, Any]] = None,
    recovery: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The full request record a transient key digests (also stored in
    the cache entry, so verification can replay it).

    ``adaptive`` is the sparse engine's timestep-control configuration
    (``{"adaptive": bool, "lte_tol": float, "max_dt_factor": int}``) or
    ``None`` for the fixed-step engines; it is part of the digest so a
    fixed-step entry can never replay as an adaptive result or vice
    versa.

    ``recovery`` is the
    :meth:`~repro.recovery.policy.RecoveryPolicy.fingerprint` of the
    run's recovery policy: two runs that differ only in how they would
    *recover* a failing step can produce different bits, so they never
    share an entry."""
    from repro.spice.analysis.engine import engine_config_fingerprint

    return {
        "kind": "transient",
        "salt": CACHE_SALT,
        "circuit": circuit_fingerprint(circuit),
        "stop_time": stop_time,
        "dt": dt,
        "integrator": integrator,
        "initial_voltages": _voltages_fingerprint(initial_voltages),
        "dc_seed": _voltages_fingerprint(dc_seed),
        "max_iterations": max_iterations,
        "vtol": vtol,
        "damping": damping,
        "engine": engine,
        "adaptive": adaptive,
        "recovery": recovery,
        "engine_config": engine_config_fingerprint(),
    }


def dc_request(
    circuit: Circuit,
    time: float,
    initial_guess: Optional[Dict[str, float]],
    max_iterations: int,
    vtol: float,
    damping: float,
    engine: Optional[str] = None,
    recovery: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Request record for a DC operating-point solve.

    ``engine`` is the linear-solve backend (``None``/``"dense"`` vs
    ``"sparse"``); the two can differ in final bits, so they must not
    share entries.  ``None`` is normalised to ``"dense"`` so the
    historical default keeps its digests.  ``recovery`` is the recovery
    policy fingerprint (see :func:`transient_request`)."""
    return {
        "kind": "dc",
        "salt": CACHE_SALT,
        "circuit": circuit_fingerprint(circuit),
        "time": time,
        "initial_guess": _voltages_fingerprint(initial_guess),
        "max_iterations": max_iterations,
        "vtol": vtol,
        "damping": damping,
        "engine": "dense" if engine is None else engine,
        "recovery": recovery,
    }


def request_key(request: Dict[str, Any]) -> str:
    """SHA-256 digest of a request record's canonical serialization."""
    return stable_digest(request)
