"""Content-addressed simulation result cache + dedup scheduler.

Two layers of redundant-work elimination:

* :mod:`repro.cache.store` — persistent memoization.  Once caching is
  enabled (:func:`enable`, the ``REPRO_CACHE_DIR`` environment variable,
  or ``repro.api.Session(cache=...)``), every transient/DC analysis is
  keyed by a SHA-256 digest of its full request (circuit fingerprint +
  analysis options + engine config + code-version salt,
  :mod:`repro.cache.keys`) and byte-identical requests — across
  processes and sessions — return the stored result **bit-exactly**
  without touching the Newton loop.
* :mod:`repro.cache.scheduler` — in-batch dedup.  :func:`dedup_map`
  collapses value-identical items of one fan-out before they reach the
  process pool (single-flight), so parallel workers never compute the
  same key twice even on a cold cache.

Observability: analyses emit ``cache.hit`` / ``cache.miss`` /
``cache.store`` counters and annotate their spans with the outcome;
the scheduler emits ``scheduler.requests`` / ``scheduler.unique`` /
``scheduler.deduped``.
"""

from repro.cache.keys import (
    CACHE_SALT,
    circuit_fingerprint,
    dc_request,
    rebuild_circuit,
    request_key,
    transient_request,
)
from repro.cache.scheduler import dedup_map
from repro.cache.store import (
    CACHE_ENV_VAR,
    CacheEntry,
    ResultCache,
    bypassed,
    disable,
    enable,
    get_active_cache,
)

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_SALT",
    "CacheEntry",
    "ResultCache",
    "bypassed",
    "circuit_fingerprint",
    "dc_request",
    "dedup_map",
    "disable",
    "enable",
    "get_active_cache",
    "rebuild_circuit",
    "request_key",
    "transient_request",
]
