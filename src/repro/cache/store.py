"""Content-addressed, on-disk store for simulation results.

Layout: one JSON file per entry at ``<root>/<key[:2]>/<key>.json``
(two-level sharding keeps directory listings sane for large caches).
Waveform arrays are stored as base64 of their raw little-endian float64
bytes — **bit-exact**, not decimal-rounded — so a cache hit returns the
very same floats the solver produced.  Writes are atomic (temp file +
``os.replace``), so a killed process can never leave a half-written
entry where a later read would trust it; any entry that fails to load —
truncated file, corrupt JSON, wrong schema — is treated as a miss and
the broken file removed, never as an error.

Activation is process-global and **off by default**: nothing changes for
callers until :func:`enable` is called (or the ``REPRO_CACHE_DIR``
environment variable is set, which is how forked/spawned pool workers
inherit the parent's cache).  :func:`bypassed` suspends lookups in a
scope — used by the profile solver self-check, which must measure a real
solve.
"""

from __future__ import annotations

import base64
import contextlib
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from repro.errors import CacheError
from repro.serialize import Serializable

#: Environment variable carrying the active cache root (set by
#: :func:`enable` so pool workers join the parent's cache).
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: Entry kinds the store understands.
ENTRY_KINDS = ("transient", "dc")


def _encode_array(array: np.ndarray) -> Dict[str, Any]:
    data = np.ascontiguousarray(array, dtype=np.float64)
    return {"shape": list(data.shape),
            "data": base64.b64encode(data.tobytes()).decode("ascii")}


def _decode_array(blob: Dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(blob["data"].encode("ascii"))
    array = np.frombuffer(raw, dtype=np.float64)
    return array.reshape([int(n) for n in blob["shape"]]).copy()


@dataclass
class CacheEntry(Serializable):
    """One stored analysis result, self-describing and replayable.

    ``request`` is the full key-derivation record (including the
    constructive circuit fingerprint), ``result`` the kind-specific
    payload with arrays in encoded form.  ``created`` is a wall-clock
    stamp for human inspection; eviction order uses file mtimes, which
    ``load``/``get`` refresh on every hit (LRU, not FIFO).
    """

    SCHEMA_NAME = "CacheEntry"
    SCHEMA_VERSION = 1

    key: str
    kind: str
    request: Dict[str, Any]
    result: Dict[str, Any]
    created: float = field(default_factory=time.time)

    def payload(self) -> Dict[str, Any]:
        return {"key": self.key, "kind": self.kind, "request": self.request,
                "result": self.result, "created": self.created}

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "CacheEntry":
        try:
            entry = cls(key=str(data["key"]), kind=str(data["kind"]),
                        request=dict(data["request"]),
                        result=dict(data["result"]),
                        created=float(data.get("created", 0.0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheError(f"malformed cache entry: {exc}") from exc
        if entry.kind not in ENTRY_KINDS:
            raise CacheError(f"unknown cache entry kind {entry.kind!r}")
        return entry


class ResultCache:
    """Content-addressed store rooted at one directory."""

    def __init__(self, root: str):
        self.root = os.path.abspath(str(root))
        os.makedirs(self.root, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _entry_paths(self) -> List[str]:
        paths: List[str] = []
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    # -- entry I/O ---------------------------------------------------------

    def load(self, key: str) -> Optional[CacheEntry]:
        """The stored entry for ``key``, or ``None`` on miss.

        *Any* failure to read or parse — truncated write, corrupted
        bytes, foreign schema — counts as a miss; the unusable file is
        removed so it cannot shadow a future store.
        """
        import json

        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = CacheEntry.from_json(json.load(handle))
            if entry.key != key:
                raise CacheError(f"entry at {path} claims key {entry.key!r}")
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 — a broken entry must read as a miss
            with contextlib.suppress(OSError):
                os.remove(path)
            return None
        # Refresh the LRU clock.
        with contextlib.suppress(OSError):
            os.utime(path, None)
        return entry

    def store(self, entry: CacheEntry) -> str:
        """Atomically write an entry; returns its path.

        Concurrent writers of the same key are safe: both produce
        byte-identical content and ``os.replace`` is atomic, so the last
        rename wins and readers only ever see complete files.
        """
        import json

        path = self.path_for(entry.key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            prefix=f".{entry.key[:8]}.", suffix=".tmp",
            dir=os.path.dirname(path))
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry.to_json(), handle)
            os.replace(temp_path, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.remove(temp_path)
            raise
        return path

    # -- maintenance -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Entry count and byte total of the store (on-disk truth)."""
        paths = self._entry_paths()
        total = 0
        for path in paths:
            with contextlib.suppress(OSError):
                total += os.path.getsize(path)
        return {"root": self.root, "entries": len(paths), "bytes": total}

    def gc(self, max_bytes: int) -> Dict[str, Any]:
        """Least-recently-used eviction down to ``max_bytes``.

        Entries are removed oldest-mtime-first (``load`` touches files on
        every hit, so mtime order *is* recency order) until the store
        fits the bound.  Returns ``{"removed": n, "freed": bytes,
        "remaining": bytes}``.
        """
        if max_bytes < 0:
            raise CacheError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        for path in self._entry_paths():
            with contextlib.suppress(OSError):
                stat = os.stat(path)
                entries.append((stat.st_mtime, path, stat.st_size))
        entries.sort()
        total = sum(size for _, _, size in entries)
        removed = 0
        freed = 0
        for _mtime, path, size in entries:
            if total <= max_bytes:
                break
            with contextlib.suppress(OSError):
                os.remove(path)
                removed += 1
                freed += size
                total -= size
        return {"removed": removed, "freed": freed, "remaining": total}

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self._entry_paths():
            with contextlib.suppress(OSError):
                os.remove(path)
                removed += 1
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir) and not os.listdir(shard_dir):
                with contextlib.suppress(OSError):
                    os.rmdir(shard_dir)
        return removed

    def entries(self) -> Iterator[CacheEntry]:
        """Iterate over every readable entry (unreadable ones skipped)."""
        import json

        for path in self._entry_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    yield CacheEntry.from_json(json.load(handle))
            except Exception:  # noqa: BLE001 — sweep past broken files
                continue


# ---------------------------------------------------------------------------
# Process-global activation
# ---------------------------------------------------------------------------

_active: Optional[ResultCache] = None
_bypass_depth = 0


def enable(root: str) -> ResultCache:
    """Activate result caching for this process (and, via the
    :data:`CACHE_ENV_VAR` environment variable, for pool workers it
    spawns).  Returns the active :class:`ResultCache`."""
    global _active
    _active = ResultCache(root)
    os.environ[CACHE_ENV_VAR] = _active.root
    return _active


def disable() -> None:
    """Deactivate result caching for this process."""
    global _active
    _active = None
    os.environ.pop(CACHE_ENV_VAR, None)


def get_active_cache() -> Optional[ResultCache]:
    """The cache analyses should consult right now, or ``None``.

    Resolution order: an explicit :func:`enable` wins; otherwise the
    :data:`CACHE_ENV_VAR` environment variable (how pool workers inherit
    the parent's cache) activates lazily.  Returns ``None`` inside a
    :func:`bypassed` scope.
    """
    global _active
    if _bypass_depth > 0:
        return None
    if _active is not None:
        return _active
    root = os.environ.get(CACHE_ENV_VAR)
    if root:
        _active = ResultCache(root)
        return _active
    return None


@contextlib.contextmanager
def bypassed() -> Iterator[None]:
    """Scope in which analyses ignore the cache entirely (no lookups, no
    stores).  Used wherever a *real* solve is the point — the profile
    solver self-check, cache verification recomputes."""
    global _bypass_depth
    _bypass_depth += 1
    try:
        yield
    finally:
        _bypass_depth -= 1


def wipe(root: str) -> None:
    """Delete a cache directory tree entirely (CLI ``cache clear``)."""
    shutil.rmtree(root, ignore_errors=True)
