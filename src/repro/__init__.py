"""repro — reproduction of *Multi-Bit Non-Volatile Spintronic Flip-Flop*
(Münch, Bishnoi, Tahoori — DATE 2018).

The library builds, from first principles, everything the paper's
evaluation rests on:

* :mod:`repro.mtj` — MTJ compact device model (Table I parameters,
  STT switching dynamics, ±3σ variation),
* :mod:`repro.spice` — a pure-Python analog circuit simulator
  (MNA, Newton–Raphson DC, transient) with an EKV-class MOSFET model,
* :mod:`repro.cells` — the standard 1-bit and the proposed 2-bit NV
  shadow latch netlists, their control sequences, and the Table II
  characterisation engine,
* :mod:`repro.layout` — 12-track cell layout generation (Fig 8, cell
  areas),
* :mod:`repro.physd` — synthetic benchmark netlists, quadratic
  placement, legalisation, DEF I/O,
* :mod:`repro.core` — the paper's contribution: neighbour-flip-flop
  pairing and 2-bit NV merging, with the Table III accounting,
* :mod:`repro.analysis` — table/figure renderers and experiment
  reports.

Quick start::

    from repro.core import run_system_flow
    outcome = run_system_flow("s344")
    print(outcome.result.as_row())
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
