"""Figure generators (paper Figs 6–9).

* :func:`render_control_sequence` — ASCII timing diagram of a control
  schedule (Figs 6(a)/6(b)/7(b)),
* :func:`render_layout_ascii` / :func:`layout_svg` — the 2-bit cell
  layout (Fig 8),
* :func:`floorplan_ascii` / :func:`floorplan_svg` — a placed design with
  mergeable flip-flop pairs circled (Fig 9).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cells.control import ControlSchedule
from repro.core.merge import MergeResult
from repro.errors import AnalysisError
from repro.layout.cell_layout import CellPlan
from repro.physd.placement.result import Placement
from repro.units import to_microns


def render_control_sequence(
    schedule: ControlSchedule,
    signals: Optional[Sequence[str]] = None,
    width: int = 88,
) -> str:
    """ASCII timing diagram: one line per signal, sampled uniformly.

    High level renders as ``▔``, low as ``▁``, mid-slew as ``/`` or
    ``\\`` — enough to reproduce the waveform sequences of Figs 6/7.
    """
    if width < 10:
        raise AnalysisError("diagram width must be at least 10 columns")
    names = list(signals) if signals else sorted(schedule.signals)
    half = schedule.vdd / 2.0
    dt = schedule.stop_time / width
    label_width = max(len(n) for n in names) + 1

    lines = [f"{schedule.name}  (0 .. {schedule.stop_time * 1e9:.2f} ns, "
             f"{width} columns of {dt * 1e12:.0f} ps)"]
    for name in names:
        waveform = schedule.signal(name)
        chars = []
        prev_high = waveform.value(0.0) >= half
        for k in range(width):
            t = (k + 0.5) * dt
            high = waveform.value(t) >= half
            if high and not prev_high:
                chars.append("/")
            elif prev_high and not high:
                chars.append("\\")
            else:
                chars.append("▔" if high else "▁")
            prev_high = high
        lines.append(f"{name.rjust(label_width)} {''.join(chars)}")

    # Phase ruler.
    ruler = [" "] * width
    for phase in schedule.phases:
        start_col = int(phase.start / schedule.stop_time * width)
        if 0 <= start_col < width:
            ruler[start_col] = "|"
    lines.append(f"{'phase'.rjust(label_width)} {''.join(ruler)}")
    lines.append(f"{''.rjust(label_width)} "
                 + ", ".join(f"{p.name}@{p.start * 1e9:.2f}ns"
                             for p in schedule.phases))
    return "\n".join(lines)


def render_layout_ascii(plan: CellPlan) -> str:
    """Fig 8 as a stick diagram (delegates to the plan)."""
    return plan.to_ascii()


def layout_svg(plan: CellPlan) -> str:
    """Fig 8 as SVG (delegates to the plan)."""
    return plan.to_svg()


def _merged_ff_names(merge: MergeResult) -> Dict[str, int]:
    """Map merged flip-flop name → pair index."""
    names: Dict[str, int] = {}
    for k, pair in enumerate(merge.pairs):
        names[pair.ff_a] = k
        names[pair.ff_b] = k
    return names


def floorplan_ascii(
    placement: Placement,
    merge: Optional[MergeResult] = None,
    columns: int = 100,
) -> str:
    """Fig 9 as a character grid: ``.`` logic, ``F`` unmerged flip-flop,
    ``A``–``Z`` (cycling) the two members of each merged pair."""
    die = placement.floorplan.die
    rows_count = max(1, int(round(die.height / die.width * columns * 0.5)))
    grid = [[" "] * columns for _ in range(rows_count)]

    def cell_of(x: float, y: float) -> Tuple[int, int]:
        col = min(columns - 1, max(0, int((x - die.x_min) / die.width * columns)))
        row = min(rows_count - 1,
                  max(0, int((y - die.y_min) / die.height * rows_count)))
        return rows_count - 1 - row, col  # y grows upward, text grows down

    for inst in placement.netlist.combinational_instances():
        r, c = cell_of(*_center_xy(placement, inst.name))
        if grid[r][c] == " ":
            grid[r][c] = "."

    merged = _merged_ff_names(merge) if merge else {}
    for inst in placement.netlist.sequential_instances():
        r, c = cell_of(*_center_xy(placement, inst.name))
        if inst.name in merged:
            grid[r][c] = chr(ord("A") + merged[inst.name] % 26)
        else:
            grid[r][c] = "F"

    header = (f"{placement.netlist.name}: die "
              f"{to_microns(die.width):.1f} x {to_microns(die.height):.1f} um; "
              f"F = unmerged FF, letters = merged pairs (same letter = one pair)")
    border = "+" + "-" * columns + "+"
    body = [border] + ["|" + "".join(row) + "|" for row in grid] + [border]
    return "\n".join([header] + body)


def _center_xy(placement: Placement, name: str) -> Tuple[float, float]:
    center = placement.center(name)
    return center.x, center.y


def floorplan_svg(
    placement: Placement,
    merge: Optional[MergeResult] = None,
    width_px: float = 720.0,
) -> str:
    """Fig 9 as SVG: logic cells grey, flip-flops blue, merged pairs
    circled in red (the paper's encircled neighbours)."""
    die = placement.floorplan.die
    scale = width_px / die.width
    height_px = die.height * scale
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px:.0f}" '
        f'height="{height_px:.0f}" viewBox="0 0 {width_px:.0f} {height_px:.0f}">',
        f'<rect width="{width_px:.0f}" height="{height_px:.0f}" fill="#fafafa" '
        f'stroke="#000"/>',
    ]

    def to_px(x: float, y: float) -> Tuple[float, float]:
        return (x - die.x_min) * scale, height_px - (y - die.y_min) * scale

    for inst in placement.netlist.combinational_instances():
        rect = placement.cell_rect(inst.name)
        px, py = to_px(rect.x_min, rect.y_max)
        parts.append(
            f'<rect x="{px:.1f}" y="{py:.1f}" width="{rect.width * scale:.1f}" '
            f'height="{rect.height * scale:.1f}" fill="#d9d9d9"/>'
        )
    for inst in placement.netlist.sequential_instances():
        rect = placement.cell_rect(inst.name)
        px, py = to_px(rect.x_min, rect.y_max)
        parts.append(
            f'<rect x="{px:.1f}" y="{py:.1f}" width="{rect.width * scale:.1f}" '
            f'height="{rect.height * scale:.1f}" fill="#4d7dbf">'
            f'<title>{inst.name}</title></rect>'
        )
    if merge:
        for pair in merge.pairs:
            ca = placement.center(pair.ff_a)
            cb = placement.center(pair.ff_b)
            cx, cy = to_px((ca.x + cb.x) / 2.0, (ca.y + cb.y) / 2.0)
            radius = max(ca.distance_to(cb) / 2.0 * scale * 1.4, 6.0)
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{radius:.1f}" '
                f'fill="none" stroke="#c0392b" stroke-width="1.5">'
                f'<title>{pair.ff_a} + {pair.ff_b} '
                f'({pair.distance * 1e6:.2f} um)</title></circle>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def render_transient_ascii(
    result,
    signals: Sequence[str],
    t0: float = 0.0,
    t1: Optional[float] = None,
    width: int = 90,
    height: int = 8,
    v_max: float = 1.2,
) -> str:
    """ASCII analog waveform plot of a transient result.

    Unlike :func:`render_control_sequence` (which draws the *commanded*
    digital levels), this renders the *simulated* analog voltages — the
    true Fig 6 view: each signal gets a ``height``-row strip, sampled at
    ``width`` points over [t0, t1].
    """
    import numpy as np

    if t1 is None:
        t1 = float(result.times[-1])
    if t1 <= t0:
        raise AnalysisError(f"empty window [{t0}, {t1}]")
    if width < 10 or height < 2:
        raise AnalysisError("plot must be at least 10x2 characters")

    sample_times = np.linspace(t0, t1, width)
    label_width = max(len(s) for s in signals) + 1
    lines: List[str] = [
        f"transient {t0 * 1e9:.2f}..{t1 * 1e9:.2f} ns "
        f"({(t1 - t0) / width * 1e12:.0f} ps/column, "
        f"0..{v_max:g} V over {height} rows)"
    ]
    for signal in signals:
        wave = np.interp(sample_times, result.times, result.voltage(signal))
        rows = [[" "] * width for _ in range(height)]
        for col, value in enumerate(wave):
            level = min(height - 1,
                        max(0, int(round(value / v_max * (height - 1)))))
            rows[height - 1 - level][col] = "*"
        for k, row in enumerate(rows):
            label = signal.rjust(label_width) if k == height // 2 else " " * label_width
            edge = f"{v_max:4.1f}V" if k == 0 else ("  0V " if k == height - 1
                                                    else "     ")
            lines.append(f"{label} {edge}|{''.join(row)}|")
        lines.append("")
    return "\n".join(lines)
