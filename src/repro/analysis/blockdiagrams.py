"""Block-diagram renderings of the paper's architecture figures (2–4).

ASCII renderings of the shadow-flip-flop architectures, each generated
together with a *structural audit* of the corresponding netlist builder,
so the diagrams cannot drift from the circuits: the audit counts the
blocks' devices in the real netlists and the bench asserts the counts
the diagram advertises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.spice.devices.mosfet import MOSFET
from repro.spice.devices.mtj_element import MTJElement


def fig2a_shadow_architecture() -> str:
    """Paper Fig 2(a): the shadow NV flip-flop block diagram."""
    return "\n".join([
        "Fig 2(a) — shadow non-volatile flip-flop architecture",
        "",
        "         +--------------+     +--------------+",
        "  D ---->| master latch |---->| slave latch  |----> Q",
        "         +--------------+     +--------------+",
        "                clk                 |    ^",
        "                              store |    | restore",
        "                                    v    |",
        "                              +--------------+",
        "      PD (power-down) ------->|   NV latch   |",
        "                              |  (2 x MTJ)   |",
        "                              +--------------+",
    ])


def fig3_multibit_overview() -> str:
    """Paper Fig 3: two flip-flops sharing one multi-bit shadow component."""
    return "\n".join([
        "Fig 3 — multi-bit shadow flip-flop overview",
        "",
        "  D0 -->[ master|slave ]--> Q0      D1 -->[ master|slave ]--> Q1",
        "              |   ^                            |   ^",
        "        store |   | restore              store |   | restore",
        "              v   |                            v   |",
        "         +---------------------------------------------+",
        "  PD --->|        shared 2-bit NV shadow latch          |",
        "         |  one sense amplifier, 4 MTJs (2 pairs),      |",
        "         |  sequential restore: lower pair then upper   |",
        "         +---------------------------------------------+",
    ])


def fig4b_block_structure() -> str:
    """Paper Fig 4(b): the combined (proposed) block organisation."""
    return "\n".join([
        "Fig 4(b) — proposed combined latch, block level",
        "",
        "   write D1 ->  [ upper MTJ pair ]   <- GND-precharge read",
        "                       |  (via T1/T2)",
        "              +-------------------+",
        "              |  shared read/SA   |  <- pre-charge circuit",
        "              |  + P4/N4 equalise |     (VDD or GND)",
        "              +-------------------+",
        "                       |",
        "   write D0 ->  [ lower MTJ pair ]   <- VDD-precharge read",
    ])


@dataclass
class ArchitectureAudit:
    """Counted structure of a latch netlist, grouped by block."""

    design: str
    blocks: Dict[str, int]
    mtjs: int

    def total_read_transistors(self) -> int:
        return sum(self.blocks.values())


_BLOCK_OF_1BIT = {
    "pc1": "precharge", "pc2": "precharge",
    "p1": "sense-amp", "p2": "sense-amp", "n1": "sense-amp", "n2": "sense-amp",
    "tg1.mn": "isolation", "tg1.mp": "isolation",
    "tg2.mn": "isolation", "tg2.mp": "isolation",
    "nfoot": "enable",
}

_BLOCK_OF_2BIT = {
    "pcv1": "precharge", "pcv2": "precharge",
    "pcg1": "precharge", "pcg2": "precharge",
    "p1": "sense-amp", "p2": "sense-amp", "n1": "sense-amp", "n2": "sense-amp",
    "t1.mn": "isolation", "t1.mp": "isolation",
    "t2.mn": "isolation", "t2.mp": "isolation",
    "p3": "enable", "n3": "enable",
    "p4": "equalizer", "n4": "equalizer",
}


def audit_standard_latch() -> ArchitectureAudit:
    """Count the Fig 2(b) netlist's blocks from the real circuit."""
    from repro.cells.nvlatch_1bit import build_standard_latch

    return _audit(build_standard_latch().circuit, "standard-1bit",
                  _BLOCK_OF_1BIT)


def audit_proposed_latch() -> ArchitectureAudit:
    """Count the Fig 5 netlist's blocks from the real circuit."""
    from repro.cells.nvlatch_2bit import build_proposed_latch

    return _audit(build_proposed_latch().circuit, "proposed-2bit",
                  _BLOCK_OF_2BIT)


def _audit(circuit, design: str, block_map: Dict[str, str]) -> ArchitectureAudit:
    blocks: Dict[str, int] = {}
    for device in circuit.devices:
        if isinstance(device, MOSFET) and device.name in block_map:
            block = block_map[device.name]
            blocks[block] = blocks.get(block, 0) + 1
    mtjs = len(circuit.devices_of_type(MTJElement))
    return ArchitectureAudit(design=design, blocks=blocks, mtjs=mtjs)


def render_architecture_comparison() -> str:
    """Fig 2(b) vs Fig 5 block-by-block transistor accounting — the
    sharing arithmetic that yields '5 more than one, 6 fewer than two'."""
    std = audit_standard_latch()
    prop = audit_proposed_latch()
    block_names = sorted(set(std.blocks) | set(prop.blocks))
    lines = ["Block-level transistor accounting (read path)",
             "block      | standard 1-bit | proposed 2-bit",
             "-----------+----------------+---------------"]
    for block in block_names:
        lines.append(f"{block:10s} | {std.blocks.get(block, 0):14d} | "
                     f"{prop.blocks.get(block, 0):14d}")
    lines.append(f"{'TOTAL':10s} | {std.total_read_transistors():14d} | "
                 f"{prop.total_read_transistors():14d}")
    lines.append(f"{'MTJs':10s} | {std.mtjs:14d} | {prop.mtjs:14d}")
    return "\n".join(lines)
