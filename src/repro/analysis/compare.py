"""Cross-technology comparison pipeline (``repro compare``).

Runs the paper's characterisation stack once per registered NV backend —
Table II latch metrics, Table III system accounting with the backend's
own cell costs, a restore-failure campaign, and the store write-error
analysis — and collects the results into one :class:`CompareReport`:
a table with one column per technology and one row per figure of merit
(backup energy/latency, restore margin, WER, read energy/delay,
leakage, system-level improvements).

The MTJ column reproduces the paper's numbers; the NAND-SPIN column
(arXiv:1912.06986's shared-heavy-metal, erase-before-program array cell)
quantifies what the flip-flop gains from SOT-assisted backup: a longer
fixed erase+program backup, but a far stronger single-junction STT
program drive and hence a much lower write-error rate at equal pulse
width.

``quick=True`` (the CI ``compare-smoke`` configuration) restricts the
sweep to the typical corner, the coarse fault-analysis timestep, a small
benchmark subset and a handful of campaign samples — enough to exercise
every backend code path end-to-end in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import AnalysisError
from repro.serialize import Serializable

#: Quick-mode knobs (CI smoke).
QUICK_CORNERS = ("typical",)
QUICK_DT = 4e-12
QUICK_SAMPLES = 4
QUICK_BENCHMARKS = ("s344",)

#: Full-run knobs (the paper-grade sweep).
FULL_DT = 1e-12
FULL_SAMPLES = 50


@dataclass
class BackendComparison(Serializable):
    """One technology's column of the comparison table (SI units)."""

    SCHEMA_NAME = "BackendComparison"
    SCHEMA_VERSION = 1

    backend: str
    #: Proposed 2-bit cell, typical corner.
    read_energy: float
    read_delay: float
    leakage: float
    #: Backup (store) of the proposed cell: energy and latency of the
    #: full sequence — for NAND-SPIN that includes the SOT bulk erase.
    backup_energy: float
    backup_latency: float
    #: Mean signed restore margin (fraction of VDD) and wrong-read rate
    #: from the fault-free restore campaign of the standard cell.
    restore_margin: float
    restore_failure_rate: float
    #: Store write-error rate of the standard cell's bit.
    write_error_rate: float
    #: Table III averages (fractional) under this backend's cell costs.
    area_improvement: float
    energy_improvement: float

    def payload(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "read_energy": self.read_energy,
            "read_delay": self.read_delay,
            "leakage": self.leakage,
            "backup_energy": self.backup_energy,
            "backup_latency": self.backup_latency,
            "restore_margin": self.restore_margin,
            "restore_failure_rate": self.restore_failure_rate,
            "write_error_rate": self.write_error_rate,
            "area_improvement": self.area_improvement,
            "energy_improvement": self.energy_improvement,
        }

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "BackendComparison":
        try:
            return cls(
                backend=str(data["backend"]),
                read_energy=float(data["read_energy"]),
                read_delay=float(data["read_delay"]),
                leakage=float(data["leakage"]),
                backup_energy=float(data["backup_energy"]),
                backup_latency=float(data["backup_latency"]),
                restore_margin=float(data["restore_margin"]),
                restore_failure_rate=float(data["restore_failure_rate"]),
                write_error_rate=float(data["write_error_rate"]),
                area_improvement=float(data["area_improvement"]),
                energy_improvement=float(data["energy_improvement"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(
                f"malformed BackendComparison record {data!r}: {exc}"
            ) from exc


@dataclass
class CompareReport(Serializable):
    """The full cross-technology comparison."""

    SCHEMA_NAME = "CompareReport"
    SCHEMA_VERSION = 1

    rows: List[BackendComparison]
    quick: bool = False

    def payload(self) -> Dict[str, Any]:
        return {"quick": self.quick,
                "rows": [row.to_json() for row in self.rows]}

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "CompareReport":
        try:
            return cls(
                rows=[BackendComparison.from_json(r) for r in data["rows"]],
                quick=bool(data.get("quick", False)),
            )
        except (KeyError, TypeError) as exc:
            raise AnalysisError(
                f"malformed CompareReport record {data!r}: {exc}") from exc

    def row(self, backend: str) -> BackendComparison:
        for row in self.rows:
            if row.backend == backend:
                return row
        raise AnalysisError(
            f"no comparison row for backend {backend!r}; have "
            f"{[r.backend for r in self.rows]}")

    def render(self) -> str:
        """Text table: one column per technology."""
        from repro.analysis.tables import render_text_table

        specs = [
            ("Read energy [fJ, 2-bit]", "read_energy", 1e15, ".3f"),
            ("Read delay [ps]", "read_delay", 1e12, ".1f"),
            ("Leakage [pW]", "leakage", 1e12, ".1f"),
            ("Backup energy [fJ]", "backup_energy", 1e15, ".1f"),
            ("Backup latency [ns]", "backup_latency", 1e9, ".3f"),
            ("Restore margin [VDD]", "restore_margin", 1.0, "+.3f"),
            ("Restore failure rate", "restore_failure_rate", 1.0, ".3f"),
            ("Store WER (1-bit)", "write_error_rate", 1.0, ".3g"),
            ("Area improvement [%]", "area_improvement", 100.0, ".2f"),
            ("Energy improvement [%]", "energy_improvement", 100.0, ".2f"),
        ]
        table_rows = []
        for label, attr, scale, fmt in specs:
            table_rows.append(
                (label,) + tuple(format(getattr(row, attr) * scale, fmt)
                                 for row in self.rows))
        mode = "quick" if self.quick else "full"
        return render_text_table(
            ("Metric",) + tuple(row.backend for row in self.rows),
            table_rows,
            title=f"Cross-technology NV backend comparison ({mode})",
        )


def _compare_one(
    backend: Any,
    quick: bool,
    benchmarks: Optional[Sequence[str]],
    samples: Optional[int],
    dt: Optional[float],
    workers: Optional[int],
) -> BackendComparison:
    from repro.analysis.tables import _build_table2, _build_table3
    from repro.faults.analyses import (
        FAULTS_DT,
        _restore_failure_rate,
        store_write_error_rates,
    )
    from repro.nv.base import get_backend
    from repro.spice.corners import CORNER_ORDER

    nv = get_backend(backend)
    corners = QUICK_CORNERS if quick else CORNER_ORDER
    dt = dt if dt is not None else (QUICK_DT if quick else FULL_DT)
    samples = samples if samples is not None else (
        QUICK_SAMPLES if quick else FULL_SAMPLES)
    if benchmarks is None and quick:
        benchmarks = QUICK_BENCHMARKS

    table2 = _build_table2(corners=corners, dt=dt, include_write=True,
                           workers=workers, backend=nv)
    prop = table2.proposed["typical"]

    table3 = _build_table3(benchmarks=benchmarks, workers=workers,
                           backend=nv)
    area_impr = (sum(r.area_improvement for r, _ in table3) / len(table3)
                 if table3 else float("nan"))
    energy_impr = (sum(r.energy_improvement for r, _ in table3) / len(table3)
                   if table3 else float("nan"))

    campaign = _restore_failure_rate("standard", (), samples=samples,
                                     dt=FAULTS_DT, workers=workers,
                                     backend=nv)
    wer = store_write_error_rates("standard", backend=nv, dt=FAULTS_DT)

    return BackendComparison(
        backend=nv.name,
        read_energy=prop.read_energy,
        read_delay=prop.read_delay,
        leakage=prop.leakage,
        backup_energy=prop.write_energy,
        backup_latency=prop.write_latency,
        restore_margin=campaign.mean_margin,
        restore_failure_rate=campaign.failure_rate,
        write_error_rate=wer["bit"],
        area_improvement=area_impr,
        energy_improvement=energy_impr,
    )


def build_compare(
    backends: Optional[Sequence[Any]] = None,
    quick: bool = False,
    benchmarks: Optional[Sequence[str]] = None,
    samples: Optional[int] = None,
    dt: Optional[float] = None,
    workers: Optional[int] = None,
) -> CompareReport:
    """Run the comparison pipeline over ``backends`` (default: every
    registered backend, in registration order — MTJ first)."""
    from repro.nv.base import list_backends

    names = list(backends) if backends else list_backends()
    if not names:
        raise AnalysisError("no NV backends registered to compare")
    rows = [_compare_one(name, quick, benchmarks, samples, dt, workers)
            for name in names]
    return CompareReport(rows=rows, quick=quick)
