"""Renderers for the paper's Tables I, II and III.

Each ``build_*`` function runs the underlying experiment; each
``render_*`` function formats results (with the paper's reference values
alongside) as a plain-text table for the benchmark logs and
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cells.characterize import (
    LatchMetrics,
    characterize_proposed,
    characterize_standard,
)
from repro.cells.sizing import DEFAULT_SIZING, LatchSizing
from repro.core.evaluate import SystemResult, evaluate_benchmarks
from repro.core.flow import FlowConfig
from repro.errors import AnalysisError
from repro.mtj.parameters import MTJParameters, PAPER_TABLE_I
from repro.physd.benchmarks import BENCHMARKS
from repro.spice.corners import CORNER_ORDER, SimulationCorner, _sweep_corners
from repro.units import (
    MICRO,
    to_femtojoules,
    to_kiloohms,
    to_microamps,
    to_square_microns,
)


def render_text_table(headers: Sequence[str], rows: Iterable[Sequence[str]],
                      title: str = "") -> str:
    """Fixed-width text table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table I — circuit-level setup
# ---------------------------------------------------------------------------


def table1_rows(params: MTJParameters = PAPER_TABLE_I,
                vdd: float = 1.1, temperature_c: float = 27.0) -> List[Tuple[str, str]]:
    """Parameter/value pairs of the paper's Table I, from our model."""
    return [
        ("VDD and Temperature", f"{vdd:g} V and {temperature_c:g} C"),
        ("MTJ radius", f"{params.radius / 1e-9:.0f} nm"),
        ("Free/Oxide layer thickness",
         f"{params.free_layer_thickness / 1e-9:.2f}/"
         f"{params.oxide_thickness / 1e-9:.2f} nm"),
        ("RA", f"{params.resistance_area_product / (MICRO * MICRO):.2f} Ohm um^2"),
        ("TMR @ 0V", f"{params.tmr_zero_bias * 100:.0f}%"),
        ("Critical current", f"{to_microamps(params.critical_current):.0f} uA"),
        ("Switching current", f"{to_microamps(params.switching_current):.0f} uA"),
        ("'AP'/'P' resistance",
         f"{to_kiloohms(params.resistance_ap):.1f} kOhm/"
         f"{to_kiloohms(params.resistance_p):.1f} kOhm"),
    ]


def render_table1(params: MTJParameters = PAPER_TABLE_I) -> str:
    return render_text_table(
        ("Parameter", "Value"), table1_rows(params),
        title="Table I — circuit-level setup",
    )


# ---------------------------------------------------------------------------
# Table II — latch comparison across corners
# ---------------------------------------------------------------------------

#: Paper Table II reference values for the rendered comparison:
#: metric → (two-standard (worst, typ, best), proposed (worst, typ, best)).
PAPER_TABLE_II = {
    "read_energy_fj": ((6.348, 5.650, 4.916), (4.799, 4.587, 4.327)),
    "read_delay_ps": ((310.0, 187.0, 127.0), (600.0, 360.0, 228.0)),
    "leakage_pw": ((4998.0, 1565.0, 424.0), (4960.0, 1528.0, 394.0)),
}
PAPER_TABLE_II_TRANSISTORS = (22, 16)
PAPER_TABLE_II_AREA = (5.635, 3.696)


@dataclass
class Table2Data:
    """Per-process-corner metrics for both designs, plus the derived
    per-metric worst/typical/best columns (see corners.py on why the
    paper's columns are per-metric extremes)."""

    standard: Dict[str, LatchMetrics] = field(default_factory=dict)
    proposed: Dict[str, LatchMetrics] = field(default_factory=dict)
    #: NV backend the characterisation ran against.
    backend: str = "mtj"

    def _column(self, design: str, metric: str, how: str) -> float:
        metrics = self.standard if design == "standard" else self.proposed
        scale = 2.0 if (design == "standard" and metric != "read_delay") else 1.0
        values = [getattr(metrics[c], metric) * scale for c in metrics]
        if how == "typical":
            return getattr(metrics["typical"], metric) * scale
        return max(values) if how == "worst" else min(values)

    def column_values(self, design: str, metric: str) -> Tuple[float, float, float]:
        """(worst, typical, best) of a metric; standard-design energies and
        leakage are doubled to compare equal bit counts, delays are not
        (the paper's two 1-bit latches restore in parallel)."""
        return tuple(self._column(design, metric, how)
                     for how in ("worst", "typical", "best"))

    def all_reads_ok(self) -> bool:
        return all(m.read_values_ok
                   for m in list(self.standard.values()) + list(self.proposed.values()))


def _characterize_both(
    corner: SimulationCorner,
    sizing: LatchSizing,
    dt: float,
    include_write: bool,
    backend: str = "mtj",
) -> Tuple[LatchMetrics, LatchMetrics]:
    """Worker: (standard, proposed) metrics at one corner (picklable —
    the backend travels by registry name)."""
    return (
        characterize_standard(corner, sizing, dt=dt,
                              include_write=include_write, backend=backend),
        characterize_proposed(corner, sizing, dt=dt,
                              include_write=include_write, backend=backend),
    )


def _build_table2(
    sizing: LatchSizing = DEFAULT_SIZING,
    corners: Sequence[str] = CORNER_ORDER,
    dt: float = 1e-12,
    include_write: bool = True,
    workers: Optional[int] = None,
    backend: Any = "mtj",
) -> Table2Data:
    """Characterise both designs at every process corner (runs the full
    transient simulations — the corners run in parallel through
    :func:`repro.spice.corners._sweep_corners`).  ``backend`` selects the
    NV storage technology (see :mod:`repro.nv`)."""
    from repro.nv.base import get_backend

    nv = get_backend(backend)
    both = _sweep_corners(
        partial(_characterize_both, sizing=sizing, dt=dt,
                include_write=include_write, backend=nv.name),
        corners=corners, workers=workers,
    )
    data = Table2Data(backend=nv.name)
    for corner_name, (standard, proposed) in both.items():
        data.standard[corner_name] = standard
        data.proposed[corner_name] = proposed
    return data


def render_table2(data: Table2Data) -> str:
    """Side-by-side rendering with the paper's values."""
    def fmt3(values: Tuple[float, float, float], scale: float, digits: int = 2) -> str:
        return "/".join(f"{v * scale:.{digits}f}" for v in values)

    rows = []
    specs = [
        ("Read energy [fJ]", "read_energy", 1e15, "read_energy_fj"),
        ("Read delay [ps]", "read_delay", 1e12, "read_delay_ps"),
        ("Leakage [pW]", "leakage", 1e12, "leakage_pw"),
    ]
    for label, metric, scale, paper_key in specs:
        std = data.column_values("standard", metric)
        prop = data.column_values("proposed", metric)
        paper_std, paper_prop = PAPER_TABLE_II[paper_key]
        rows.append((label,
                     fmt3(std, scale), "/".join(f"{v:g}" for v in paper_std),
                     fmt3(prop, scale), "/".join(f"{v:g}" for v in paper_prop)))
    std_count = 2 * data.standard["typical"].transistor_count
    prop_count = data.proposed["typical"].transistor_count
    rows.append(("# transistors", str(std_count),
                 str(PAPER_TABLE_II_TRANSISTORS[0]),
                 str(prop_count), str(PAPER_TABLE_II_TRANSISTORS[1])))

    from repro.layout.cell_layout import plan_proposed_2bit, standard_pair_area
    rows.append(("Area [um^2]",
                 f"{to_square_microns(standard_pair_area()):.3f}",
                 f"{PAPER_TABLE_II_AREA[0]:g}",
                 f"{to_square_microns(plan_proposed_2bit().area):.3f}",
                 f"{PAPER_TABLE_II_AREA[1]:g}"))
    return render_text_table(
        ("Metric (worst/typ/best)", "2x standard (ours)", "2x standard (paper)",
         "proposed (ours)", "proposed (paper)"),
        rows,
        title="Table II — two standard 1-bit latches vs proposed 2-bit latch",
    )


# ---------------------------------------------------------------------------
# Table III — system-level results
# ---------------------------------------------------------------------------


def _build_table3(
    benchmarks: Optional[Sequence[str]] = None,
    config: Optional[FlowConfig] = None,
    workers: Optional[int] = None,
    backend: Any = "mtj",
) -> List[Tuple[SystemResult, int]]:
    """Run the system flow per benchmark (benchmarks in parallel through
    :func:`repro.core.evaluate.evaluate_benchmarks`); returns (our result,
    paper pair count) tuples in benchmark order.

    With no explicit ``config``, the cell-level costs come from the
    selected backend's :meth:`~repro.nv.base.NVBackend.cell_costs`; a
    caller-supplied ``config`` wins outright (its ``costs`` already pin
    the technology).
    """
    if config is None:
        from repro.nv.base import get_backend

        config = FlowConfig(costs=get_backend(backend).cell_costs())
    names = list(benchmarks) if benchmarks else list(BENCHMARKS)
    results = evaluate_benchmarks(names, config=config, workers=workers)
    return [(result, BENCHMARKS[name].paper_merged_pairs)
            for name, result in zip(names, results)]


def render_table3(results: Sequence[Tuple[SystemResult, int]]) -> str:
    rows = []
    total_area_impr = 0.0
    total_energy_impr = 0.0
    for result, paper_pairs in results:
        spec = BENCHMARKS[result.benchmark]
        paper_area_impr = 100 * (1 - spec.paper_area_2bit / spec.paper_area_1bit)
        paper_energy_impr = 100 * (1 - spec.paper_energy_2bit / spec.paper_energy_1bit)
        rows.append((
            result.benchmark,
            str(result.total_flip_flops),
            f"{result.merged_pairs} / {paper_pairs}",
            f"{to_square_microns(result.area_baseline):.1f}",
            f"{to_square_microns(result.area_proposed):.1f}",
            f"{100 * result.area_improvement:.2f}% / {paper_area_impr:.2f}%",
            f"{to_femtojoules(result.energy_proposed):.1f}",
            f"{100 * result.energy_improvement:.2f}% / {paper_energy_impr:.2f}%",
        ))
        total_area_impr += result.area_improvement
        total_energy_impr += result.energy_improvement
    n = max(1, len(results))
    rows.append((
        "AVERAGE", "", "", "", "",
        f"{100 * total_area_impr / n:.2f}% (paper 26%)",
        "",
        f"{100 * total_energy_impr / n:.2f}% (paper 14%)",
    ))
    return render_text_table(
        ("Benchmark", "FFs", "2-bit FFs (ours/paper)", "Area 1-bit [um^2]",
         "Area 2-bit [um^2]", "Area impr (ours/paper)",
         "Energy 2-bit [fJ]", "Energy impr (ours/paper)"),
        rows,
        title="Table III — system-level results",
    )
