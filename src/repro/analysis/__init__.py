"""Reporting: table renderers (paper Tables I–III) and figure generators
(paper Figs 6–9)."""

from repro.analysis.compare import (
    BackendComparison,
    CompareReport,
    build_compare,
)
from repro.analysis.tables import (
    render_text_table,
    table1_rows,
    render_table1,
    Table2Data,
    render_table2,
    render_table3,
)
from repro.analysis.blockdiagrams import (
    audit_proposed_latch,
    audit_standard_latch,
    render_architecture_comparison,
)
from repro.analysis.figures import (
    render_control_sequence,
    render_layout_ascii,
    layout_svg,
    floorplan_ascii,
    floorplan_svg,
)

__all__ = [
    "BackendComparison",
    "CompareReport",
    "build_compare",
    "render_text_table",
    "table1_rows",
    "render_table1",
    "Table2Data",
    "render_table2",
    "render_table3",
    "render_control_sequence",
    "render_layout_ascii",
    "layout_svg",
    "floorplan_ascii",
    "floorplan_svg",
    "audit_proposed_latch",
    "audit_standard_latch",
    "render_architecture_comparison",
]
