"""Circuit container: named nodes, typed element constructors.

Nodes are referred to by string names; the special names ``"0"``,
``"gnd"`` and ``"GND"`` denote ground (internal index ``-1``).  All
``add_*`` helpers return the created device so callers can keep handles
for measurements.

The :meth:`Circuit.add_mosfet` helper attaches the transistor's parasitic
capacitances (gate-source, gate-drain, drain-bulk, source-bulk) as
explicit :class:`~repro.spice.devices.passive.Capacitor` elements, which
keeps the MOSFET stamp purely resistive and the integrator handling in
one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import NetlistError, suggest_names
from repro.mtj.device import MTJDevice, MTJState
from repro.mtj.dynamics import SwitchingModel
from repro.mtj.parameters import MTJParameters, PAPER_TABLE_I
from repro.spice.devices.base import Device
from repro.spice.devices.mosfet import MOSFET, MOSFETModel, NMOS_40LP, PMOS_40LP
from repro.spice.devices.mtj_element import MTJElement
from repro.spice.devices.passive import Capacitor, Resistor
from repro.spice.devices.sources import CurrentSource, VoltageSource
from repro.spice.waveforms import DC, Waveform

#: Canonical ground node name.
GROUND = "0"

_GROUND_ALIASES = frozenset({"0", "gnd", "GND", "vss", "VSS"})


def _as_waveform(value: Union[Waveform, float, int]) -> Waveform:
    if isinstance(value, Waveform):
        return value
    return DC(float(value))


class Circuit:
    """A flat netlist of devices over named nodes."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._node_index: Dict[str, int] = {}
        self._node_names: List[str] = []
        self.devices: List[Device] = []
        self._device_index: Dict[str, Device] = {}
        self._num_branches = 0
        self._finalized = False
        #: NV-backend identity record (set by the latch builders); enters
        #: the cache fingerprint so backends never share cache entries.
        self.nv_backend_fingerprint: Optional[Dict[str, object]] = None

    # -- nodes -----------------------------------------------------------------

    def node(self, name: str) -> int:
        """Index of the named node, creating it on first use."""
        if name in _GROUND_ALIASES:
            return -1
        index = self._node_index.get(name)
        if index is None:
            if self._finalized:
                raise NetlistError(
                    f"cannot create node {name!r} after the circuit was "
                    f"finalized"
                    + suggest_names(name, self._node_index)
                )
            index = len(self._node_names)
            self._node_index[name] = index
            self._node_names.append(name)
        return index

    def node_name(self, index: int) -> str:
        """Name of a node index (ground for ``-1``)."""
        if index == -1:
            return GROUND
        return self._node_names[index]

    def has_node(self, name: str) -> bool:
        return name in _GROUND_ALIASES or name in self._node_index

    @property
    def num_nodes(self) -> int:
        return len(self._node_names)

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    # -- device registry ---------------------------------------------------------

    def _register(self, device: Device, name: str) -> Device:
        if self._finalized:
            raise NetlistError(f"cannot add device {name!r} after finalize()")
        if not name:
            raise NetlistError("device name must be non-empty")
        if name in self._device_index:
            raise NetlistError(f"duplicate device name {name!r}")
        device.name = name
        self.devices.append(device)
        self._device_index[name] = device
        return device

    def device(self, name: str) -> Device:
        """Look up a device by name."""
        try:
            return self._device_index[name]
        except KeyError:
            raise NetlistError(
                f"no device named {name!r} in circuit {self.name!r}"
                + suggest_names(name, self._device_index)
            ) from None

    def devices_of_type(self, cls: type) -> List[Device]:
        """All devices that are instances of ``cls``."""
        return [d for d in self.devices if isinstance(d, cls)]

    # -- element constructors ------------------------------------------------------

    def add_resistor(self, name: str, a: str, b: str, resistance: float) -> Resistor:
        return self._register(
            Resistor(positive=self.node(a), negative=self.node(b), resistance=resistance),
            name,
        )

    def add_capacitor(self, name: str, a: str, b: str, capacitance: float) -> Capacitor:
        return self._register(
            Capacitor(positive=self.node(a), negative=self.node(b), capacitance=capacitance),
            name,
        )

    def add_vsource(
        self, name: str, positive: str, negative: str, waveform: Union[Waveform, float]
    ) -> VoltageSource:
        return self._register(
            VoltageSource(
                positive=self.node(positive),
                negative=self.node(negative),
                waveform=_as_waveform(waveform),
            ),
            name,
        )

    def add_isource(
        self, name: str, positive: str, negative: str, waveform: Union[Waveform, float]
    ) -> CurrentSource:
        return self._register(
            CurrentSource(
                positive=self.node(positive),
                negative=self.node(negative),
                waveform=_as_waveform(waveform),
            ),
            name,
        )

    def add_mosfet(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        bulk: str,
        model: MOSFETModel,
        width: float = 120e-9,
        length: float = 40e-9,
        with_caps: bool = True,
    ) -> MOSFET:
        """Add a transistor plus (optionally) its parasitic capacitances."""
        fet = MOSFET(
            drain=self.node(drain),
            gate=self.node(gate),
            source=self.node(source),
            bulk=self.node(bulk),
            model=model,
            width=width,
            length=length,
        )
        self._register(fet, name)
        if with_caps:
            half_gate = 0.5 * fet.gate_channel_capacitance() + fet.overlap_capacitance()
            junction = fet.junction_capacitance()
            self.add_capacitor(f"{name}.cgs", gate, source, half_gate)
            self.add_capacitor(f"{name}.cgd", gate, drain, half_gate)
            self.add_capacitor(f"{name}.cdb", drain, bulk, junction)
            self.add_capacitor(f"{name}.csb", source, bulk, junction)
        return fet

    def add_nmos(self, name: str, drain: str, gate: str, source: str,
                 model: MOSFETModel = NMOS_40LP, width: float = 120e-9,
                 length: float = 40e-9, bulk: str = GROUND) -> MOSFET:
        """NMOS with bulk defaulting to ground."""
        return self.add_mosfet(name, drain, gate, source, bulk, model, width, length)

    def add_pmos(self, name: str, drain: str, gate: str, source: str, bulk: str,
                 model: MOSFETModel = PMOS_40LP, width: float = 240e-9,
                 length: float = 40e-9) -> MOSFET:
        """PMOS; the bulk (n-well) node must be given explicitly — it is
        normally the VDD rail."""
        return self.add_mosfet(name, drain, gate, source, bulk, model, width, length)

    def add_mtj(
        self,
        name: str,
        free: str,
        ref: str,
        params: Optional[MTJParameters] = None,
        state: MTJState = MTJState.PARALLEL,
        dynamic: bool = True,
    ) -> MTJElement:
        """Add an MTJ; ``dynamic=True`` attaches STT switching dynamics so
        transient write currents can flip the stored bit."""
        device = MTJDevice(params=params or PAPER_TABLE_I, state=state)
        switching = SwitchingModel(device=device) if dynamic else None
        element = MTJElement(free=self.node(free), ref=self.node(ref),
                             device=device, switching=switching)
        self._register(element, name)
        return element

    # -- lifecycle ---------------------------------------------------------------

    def finalize(self, lint: bool = False) -> None:
        """Assign branch-current indices.  Called automatically by analyses;
        idempotent.  After finalisation the topology is frozen.

        ``lint=True`` additionally runs the SPICE ERC rule pack
        (:mod:`repro.lint`) and raises :class:`NetlistError` — with the
        structured diagnostics attached — if any error-severity finding
        exists.  Lint runs even when the circuit was already finalized,
        so the opt-in check can be added after the fact.
        """
        if not self._finalized:
            branch = 0
            for device in self.devices:
                count = device.num_branches()
                if count:
                    device.assign_branches(branch)
                    branch += count
            self._num_branches = branch
            self._finalized = True
        if lint:
            from repro.lint import assert_lint_clean

            assert_lint_clean(self)

    @property
    def num_branches(self) -> int:
        if not self._finalized:
            self.finalize()
        return self._num_branches

    def reset_state(self) -> None:
        """Reset all device dynamic state (capacitor history, MTJ progress)."""
        for device in self.devices:
            device.reset_state()

    def summary(self) -> str:
        """One-line inventory used in logs and examples."""
        kinds: Dict[str, int] = {}
        for device in self.devices:
            kinds[type(device).__name__] = kinds.get(type(device).__name__, 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return f"{self.name}: {self.num_nodes} nodes, {parts}"
