"""Independent voltage and current sources."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.spice.devices.base import EvalContext, TwoTerminal
from repro.spice.waveforms import DC, Waveform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spice.analysis.mna import MNAStamper


@dataclass
class VoltageSource(TwoTerminal):
    """Ideal independent voltage source (one MNA branch unknown).

    The branch current is defined flowing from the positive terminal
    through the source to the negative terminal; a positive supply
    sourcing current into the circuit therefore reports a *negative*
    branch current (standard SPICE convention).
    """

    waveform: Waveform = field(default_factory=DC)
    nonlinear = False
    branch_index: int = field(default=-1, init=False)

    def num_branches(self) -> int:
        return 1

    def assign_branches(self, first_index: int) -> None:
        self.branch_index = first_index

    def voltage_at(self, time: float) -> float:
        return self.waveform.value(time)

    def stamp_static(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        # Branch incidence only; the time-dependent source value goes on
        # the RHS in stamp_step.
        stamper.add_voltage_source(
            self.branch_index, self.positive, self.negative, 0.0
        )

    def stamp_step(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        # ctx.source_scale is 1.0 outside source-stepping homotopy; the
        # multiply is bit-exact there.
        stamper.rhs[stamper.branch_row(self.branch_index)] += (
            self.voltage_at(ctx.time) * ctx.source_scale)

    def stamp(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        self.stamp_static(stamper, ctx)
        self.stamp_step(stamper, ctx)


@dataclass
class CurrentSource(TwoTerminal):
    """Ideal independent current source; positive value pushes current out
    of the positive terminal, through the external circuit, into the
    negative terminal (i.e. it *sources* current into the node attached to
    ``positive``... note: SPICE convention is the opposite; here we choose
    the intuitive one and document it: current flows from ``negative`` to
    ``positive`` inside the source, so the ``positive`` node receives
    current)."""

    waveform: Waveform = field(default_factory=DC)
    nonlinear = False

    def current_at(self, time: float) -> float:
        return self.waveform.value(time)

    def stamp_step(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        value = self.current_at(ctx.time) * ctx.source_scale
        stamper.add_current(self.positive, value)
        stamper.add_current(self.negative, -value)

    def stamp(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        self.stamp_step(stamper, ctx)
