"""Circuit-level MTJ element: couples the device physics of
:mod:`repro.mtj` into the MNA solver.

Electrically the junction is a voltage-dependent resistor whose
conductance depends on the magnetisation state (P/AP) and, in the AP
state, on the bias through the TMR roll-off.  During transient analysis
the element also integrates the STT switching model with the junction
current after every accepted timestep, so write operations driven by the
latch's tristate inverters actually flip the stored state — no scripted
"write happened here" shortcuts.

Terminal convention matches :mod:`repro.mtj.dynamics`: ``free`` is the
free-layer terminal, ``ref`` the reference-layer terminal, and positive
device current (free → ref) drives toward antiparallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.mtj.device import MTJDevice, MTJState
from repro.mtj.dynamics import SwitchingModel
from repro.spice.devices.base import Device, EvalContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spice.analysis.mna import MNAStamper


@dataclass
class MTJElement(Device):
    """One MTJ between two circuit nodes."""

    nonlinear = True  # conductance depends on the bias iterate

    free: int = -1
    ref: int = -1
    device: MTJDevice = field(default_factory=MTJDevice)
    #: Optional switching dynamics; None freezes the state (read-only use).
    switching: Optional[SwitchingModel] = None
    name: str = ""
    _initial_state: MTJState = field(init=False)

    def __post_init__(self) -> None:
        self._initial_state = self.device.state

    def node_indices(self) -> Tuple[int, int]:
        return (self.free, self.ref)

    def reset_state(self) -> None:
        """Restore the magnetisation captured at construction time and clear
        accumulated switching progress."""
        self.device.state = self._initial_state
        if self.switching is not None:
            self.switching.progress = 0.0

    def set_initial_state(self, state: MTJState) -> None:
        """Pin both the live and the reset state (used when programming the
        latch before a restore simulation)."""
        self.device.state = state
        self._initial_state = state
        if self.switching is not None:
            self.switching.progress = 0.0

    # -- electrical view -------------------------------------------------------

    def bias(self, ctx: EvalContext) -> float:
        """Voltage across the junction, free − ref [V]."""
        return ctx.v(self.free) - ctx.v(self.ref)

    def current(self, ctx: EvalContext) -> float:
        """Device current free → ref at the iterate [A]."""
        v = self.bias(ctx)
        return self.device.conductance(abs(v)) * v

    def stamp(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        v = self.bias(ctx)
        g = self.device.conductance(abs(v))
        # i(v) = G(|v|) v  →  di/dv = G + v dG/d|v| · sign(v) = G + |v| dG/d|v|.
        dg = self.device.conductance_derivative(abs(v))
        g_eff = g + abs(v) * dg
        # Guard against a non-positive small-signal conductance at very high
        # bias of the roll-off model (never reached in these circuits, but a
        # property test probes it).
        g_eff = max(g_eff, 0.1 * g)
        i0 = g * v
        const = i0 - g_eff * v
        stamper.add_conductance(self.free, self.ref, g_eff)
        stamper.add_current(self.free, -const)
        stamper.add_current(self.ref, const)

    # -- magnetisation dynamics --------------------------------------------------

    def update_state(self, ctx: EvalContext) -> None:
        if self.switching is None or not ctx.is_transient:
            return
        self.switching.step(self.current(ctx), ctx.dt, now=ctx.time)
