"""Device protocol for the MNA solver.

Every element stamps its linearised companion model into an
:class:`~repro.spice.analysis.mna.MNAStamper` at each Newton iteration.
The contract:

* ``stamp(stamper, ctx)`` adds conductances / currents / branch relations
  for the element, linearised around the voltages in ``ctx``.
* ``update_state(ctx)`` is called once per *accepted* transient timepoint
  (after Newton convergence) so stateful devices (capacitor charge
  history, MTJ magnetisation) can advance.

Node handles are integer indices assigned by the :class:`Circuit`; index
``-1`` denotes ground (stamps to ground rows/columns are dropped by the
stamper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spice.analysis.mna import MNAStamper


@dataclass
class EvalContext:
    """Operating-point information handed to device stamps.

    ``voltages`` is the current Newton iterate (node voltages only);
    ``prev_voltages`` the last accepted timepoint (transient) or ``None``
    (DC).  ``dt`` is ``None`` for DC analyses.  ``gmin`` is the current
    homotopy conductance added from every node to ground.
    """

    voltages: np.ndarray
    prev_voltages: Optional[np.ndarray]
    time: float
    dt: Optional[float]
    gmin: float = 0.0
    #: 'be' (backward Euler) or 'trap' (trapezoidal) for capacitor companions.
    integrator: str = "be"
    #: Source-stepping homotopy scale: independent sources stamp this
    #: fraction of their value (1.0 everywhere except inside the DC
    #: recovery ladder's source-stepping stages).
    source_scale: float = 1.0

    def v(self, node: int) -> float:
        """Voltage of a node index (ground reads as 0 V)."""
        return 0.0 if node < 0 else float(self.voltages[node])

    def v_prev(self, node: int) -> float:
        """Previous-timepoint voltage of a node index."""
        if self.prev_voltages is None or node < 0:
            return 0.0
        return float(self.prev_voltages[node])

    @property
    def is_transient(self) -> bool:
        return self.dt is not None


class Device:
    """Base class of all circuit elements.

    Stamping contract (used by both solver paths):

    * ``stamp(stamper, ctx)`` — the full linearised companion model.  The
      naive engine calls this on every device, every Newton iteration.
    * ``nonlinear`` — class attribute.  ``True`` (the safe default) means
      the stamp depends on the Newton iterate and must be re-applied every
      iteration.  ``False`` declares the *linear-device split* below, which
      the fast engine (:mod:`repro.spice.analysis.engine`) exploits:

      - ``stamp_static(stamper, ctx)`` writes only **matrix** entries and
        may depend on ``ctx.dt`` / ``ctx.integrator`` but on neither the
        iterate, the time, nor the previous timepoint.  It is applied once
        per analysis and cached.
      - ``stamp_step(stamper, ctx)`` writes only **RHS** entries and may
        depend on ``ctx.time`` and ``ctx.prev_voltages`` but not on the
        iterate.  It is applied once per timepoint.

      For a linear device ``stamp`` must equal ``stamp_static`` followed by
      ``stamp_step`` — the equivalence tests enforce this to 1e-12.
    """

    #: Unique name within the circuit (assigned by :class:`Circuit`).
    name: str = ""
    #: Whether the stamp depends on the Newton iterate (see class docstring).
    nonlinear: bool = True

    def node_indices(self) -> Sequence[int]:
        """Indices of all nodes this device touches (for connectivity checks)."""
        raise NotImplementedError

    def num_branches(self) -> int:
        """How many extra MNA branch-current unknowns this device needs."""
        return 0

    def assign_branches(self, first_index: int) -> None:
        """Receive the indices of this device's branch unknowns."""

    def stamp(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        """Stamp the linearised model at the given iterate."""
        raise NotImplementedError

    def stamp_static(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        """Iterate/time-invariant matrix stamps (linear devices only)."""

    def stamp_step(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        """Per-timepoint RHS stamps (linear devices only)."""

    def update_state(self, ctx: EvalContext) -> None:
        """Advance internal state after an accepted timestep (default: none)."""

    def reset_state(self) -> None:
        """Reset internal dynamic state before a fresh analysis (default: none)."""


@dataclass
class TwoTerminal(Device):
    """Convenience base for two-terminal elements."""

    positive: int = -1
    negative: int = -1
    name: str = ""

    def node_indices(self) -> Tuple[int, int]:
        return (self.positive, self.negative)

    def branch_voltage(self, ctx: EvalContext) -> float:
        """Voltage from the positive to the negative terminal."""
        return ctx.v(self.positive) - ctx.v(self.negative)
