"""Circuit-level NAND-SPIN junction: an MTJ pillar on a heavy-metal strip.

Electrically the junction *is* an MTJ — same resistive stamp, same STT
dynamics on the pillar current — so the element subclasses
:class:`~repro.spice.devices.mtj_element.MTJElement` and inherits the
solver integration (including the fast engine's vectorised MTJ group,
whose state update dispatches per device).  On top of that it observes
the voltage drop across its local heavy-metal segment and integrates a
:class:`~repro.mtj.sot.SOTSwitchingModel` with the resulting strip
current, so a NAND-SPIN erase pulse through the strip actually flips the
stored states in simulation — the same no-shortcuts policy as the STT
write path.

The strip itself is built from ordinary resistors by the backend
(:mod:`repro.nv.nandspin`); this element only *reads* the segment
voltages (``hm_left`` → ``hm_right``), it does not conduct between them.
The segment orientation is chosen so positive strip current is the erase
direction (toward antiparallel), matching the SOT model's convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mtj.sot import SOTSwitchingModel
from repro.spice.devices.base import EvalContext
from repro.spice.devices.mtj_element import MTJElement


@dataclass
class NandSpinJunction(MTJElement):
    """MTJ pillar with SOT erase coupling to its heavy-metal segment."""

    #: Strip node on the erase-current upstream side of the pillar.
    hm_left: int = -1
    #: Strip node on the downstream side (toward the common tap).
    hm_right: int = -1
    #: Conductance [S] of the observed strip segment (1 / R_segment).
    hm_conductance: float = 0.0
    #: SOT erase dynamics; ``None`` freezes the SOT path (read-only use).
    sot: Optional[SOTSwitchingModel] = None

    def reset_state(self) -> None:
        super().reset_state()
        if self.sot is not None:
            self.sot.progress = 0.0
            self.sot.events.clear()

    def set_initial_state(self, state) -> None:
        super().set_initial_state(state)
        if self.sot is not None:
            self.sot.progress = 0.0

    def hm_current(self, ctx: EvalContext) -> float:
        """Strip current under the pillar [A], positive = erase direction."""
        return (ctx.v(self.hm_left) - ctx.v(self.hm_right)) * self.hm_conductance

    def update_state(self, ctx: EvalContext) -> None:
        super().update_state(ctx)
        if self.sot is None or not ctx.is_transient:
            return
        self.sot.step(self.hm_current(ctx), ctx.dt, now=ctx.time)
