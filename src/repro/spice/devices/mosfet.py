"""EKV-style MOSFET compact model.

A single smooth equation covers weak inversion (subthreshold — the source
of the leakage numbers in paper Table II), moderate and strong inversion:

    I_D = I_spec · (i_f − i_r) · (1 + λ · h(v_DS))

    i_f = F(v_P − v_SB),   i_r = F(v_P − v_DB),
    v_P = (v_GB − V_T0) / n,
    F(u) = ln²(1 + exp(u / (2 V_t)))

with ``I_spec = 2 n β V_t²`` and ``β = KP · W / L`` (KP = µ·C_ox).  The
interpolation function F gives ``exp(u/V_t)`` in weak inversion and
``(u/2V_t)²`` in strong inversion — the classic EKV limits.  Channel
length modulation uses the even, smooth overdrive ``h(v) = √(v²+ε²) − ε``
so the drain current stays antisymmetric under drain/source exchange
(the transmission gates in the latches rely on bidirectional conduction).

The model is bulk-referenced and therefore handles stacked devices and
body effect to first order; PMOS devices are computed as mirrored NMOS
(all terminal voltages negated).

Two model cards approximate a 40 nm low-power CMOS process
(:data:`NMOS_40LP`, :data:`PMOS_40LP`); they are calibrated so that
minimum-size device leakage, drive current and gate capacitance land in
the range typical of such a process (I_off of a few pA at V_T ≈ 0.45 V,
I_on of a few hundred µA/µm).  :meth:`MOSFETModel.with_corner` derives
process-corner variants via threshold shift and mobility scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Tuple

from repro.errors import DeviceModelError
from repro.spice.devices.base import Device, EvalContext
from repro.units import thermal_voltage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spice.analysis.mna import MNAStamper

#: Smoothing of the channel-length-modulation overdrive [V].
_CLM_EPSILON = 1e-3
#: Clamp for exponents inside the interpolation function.
_EXP_CLAMP = 60.0


def _interp(u_over_2vt: float) -> Tuple[float, float]:
    """EKV interpolation function F and its derivative dF/du · (2 V_t).

    Returns ``(F, dF_dx)`` where ``x = u / (2 V_t)``; the caller rescales
    the derivative by 1/(2 V_t).
    """
    x = u_over_2vt
    if x > _EXP_CLAMP:
        log_term = x
        sigmoid = 1.0
    elif x < -_EXP_CLAMP:
        # exp(x) underflows; ln(1+e^x) ≈ e^x.
        log_term = math.exp(x)
        sigmoid = log_term
    else:
        e = math.exp(x)
        log_term = math.log1p(e)
        sigmoid = e / (1.0 + e)
    return log_term * log_term, 2.0 * log_term * sigmoid


@dataclass(frozen=True)
class MOSFETModel:
    """Process model card shared by devices of one flavour."""

    #: 'n' or 'p'.
    polarity: str
    #: Threshold voltage magnitude [V].
    vth0: float
    #: Subthreshold slope factor n (dimensionless, > 1).
    slope_factor: float
    #: Transconductance parameter KP = µ·C_ox [A/V²].
    kp: float
    #: Channel-length modulation λ [1/V].
    lambda_clm: float
    #: Gate oxide capacitance per area [F/m²].
    cox_per_area: float = 1.7e-2
    #: Gate overlap capacitance per width [F/m].
    overlap_cap_per_width: float = 3.0e-10
    #: Junction (drain/source to bulk) capacitance per width [F/m].
    junction_cap_per_width: float = 5.0e-10
    #: Simulation temperature [K].
    temperature: float = 300.15

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise DeviceModelError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.vth0 <= 0.0:
            raise DeviceModelError("vth0 is a magnitude and must be positive")
        if self.slope_factor <= 1.0:
            raise DeviceModelError("slope factor must exceed 1")
        if self.kp <= 0.0 or self.lambda_clm < 0.0:
            raise DeviceModelError("kp must be positive and lambda non-negative")

    @property
    def sign(self) -> float:
        """+1 for NMOS, −1 for PMOS (terminal-voltage mirror factor)."""
        return 1.0 if self.polarity == "n" else -1.0

    @property
    def thermal_volt(self) -> float:
        return thermal_voltage(self.temperature)

    def specific_current(self, width: float, length: float) -> float:
        """I_spec = 2 n β V_t² for the given geometry [A]."""
        beta = self.kp * width / length
        vt = self.thermal_volt
        return 2.0 * self.slope_factor * beta * vt * vt

    def with_corner(self, vth_shift: float = 0.0, mobility_scale: float = 1.0,
                    temperature: float | None = None) -> "MOSFETModel":
        """Derive a corner variant.

        ``vth_shift`` adds to the threshold magnitude (negative → leakier,
        faster device), ``mobility_scale`` multiplies KP.
        """
        if mobility_scale <= 0.0:
            raise DeviceModelError("mobility_scale must be positive")
        new_vth = self.vth0 + vth_shift
        if new_vth <= 0.0:
            raise DeviceModelError(
                f"corner shift {vth_shift} drives vth0 non-positive ({new_vth})"
            )
        return replace(
            self,
            vth0=new_vth,
            kp=self.kp * mobility_scale,
            temperature=self.temperature if temperature is None else temperature,
        )


#: 40 nm-class low-power NMOS / PMOS model cards (see module docstring).
NMOS_40LP = MOSFETModel(polarity="n", vth0=0.46, slope_factor=1.35, kp=280e-6,
                        lambda_clm=0.12)
PMOS_40LP = MOSFETModel(polarity="p", vth0=0.47, slope_factor=1.35, kp=95e-6,
                        lambda_clm=0.14)


@dataclass
class MOSFET(Device):
    """One MOS transistor instance (drain, gate, source, bulk node indices)."""

    nonlinear = True  # re-linearised every Newton iteration

    drain: int = -1
    gate: int = -1
    source: int = -1
    bulk: int = -1
    model: MOSFETModel = field(default_factory=lambda: NMOS_40LP)
    width: float = 120e-9
    length: float = 40e-9
    name: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.length <= 0.0:
            raise DeviceModelError(f"MOSFET {self.name!r}: W and L must be positive")

    def node_indices(self) -> Tuple[int, int, int, int]:
        return (self.drain, self.gate, self.source, self.bulk)

    # -- core evaluation -----------------------------------------------------

    def evaluate(self, vd: float, vg: float, vs: float, vb: float
                 ) -> Tuple[float, Dict[str, float]]:
        """Drain current (into the drain terminal, through the channel, out
        of the source terminal) and its partial derivatives w.r.t. the four
        terminal voltages.

        Returns ``(i_drain, {"d": gdd, "g": gm, "s": gss, "b": gbb})``.
        """
        sigma = self.model.sign
        vt = self.model.thermal_volt
        n = self.model.slope_factor
        two_vt = 2.0 * vt

        # Mirrored (primed) frame: PMOS becomes an NMOS.
        vdp, vgp, vsp, vbp = sigma * vd, sigma * vg, sigma * vs, sigma * vb
        vp_pinch = (vgp - vbp - self.model.vth0) / n
        u_f = vp_pinch - (vsp - vbp)
        u_r = vp_pinch - (vdp - vbp)

        f_f, df_f = _interp(u_f / two_vt)
        f_r, df_r = _interp(u_r / two_vt)
        df_f /= two_vt  # now dF/du
        df_r /= two_vt

        i_spec = self.model.specific_current(self.width, self.length)
        delta_i = f_f - f_r

        vds_p = vdp - vsp
        h = math.sqrt(vds_p * vds_p + _CLM_EPSILON * _CLM_EPSILON) - _CLM_EPSILON
        m = 1.0 + self.model.lambda_clm * h
        dm_dvds = (self.model.lambda_clm * vds_p
                   / math.sqrt(vds_p * vds_p + _CLM_EPSILON * _CLM_EPSILON))

        i_prime = i_spec * delta_i * m

        # Partials in the primed frame.
        di_dvg = i_spec * m * (df_f - df_r) / n
        di_dvd = i_spec * (m * df_r + delta_i * dm_dvds)
        di_dvs = i_spec * (-m * df_f - delta_i * dm_dvds)
        di_dvb = i_spec * m * (df_f - df_r) * (1.0 - 1.0 / n)

        # Back to the real frame: i_drain = sigma * i_prime, v' = sigma v,
        # so d(i_drain)/dv = sigma * d(i')/dv' * sigma = d(i')/dv'.
        i_drain = sigma * i_prime
        return i_drain, {"d": di_dvd, "g": di_dvg, "s": di_dvs, "b": di_dvb}

    def drain_current(self, ctx: EvalContext) -> float:
        """Drain current at the given operating point [A]."""
        current, _ = self.evaluate(
            ctx.v(self.drain), ctx.v(self.gate), ctx.v(self.source), ctx.v(self.bulk)
        )
        return current

    # -- stamping --------------------------------------------------------------

    def stamp(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        vd, vg = ctx.v(self.drain), ctx.v(self.gate)
        vs, vb = ctx.v(self.source), ctx.v(self.bulk)
        i0, partials = self.evaluate(vd, vg, vs, vb)

        nodes = {"d": self.drain, "g": self.gate, "s": self.source, "b": self.bulk}
        voltages = {"d": vd, "g": vg, "s": vs, "b": vb}

        # Linearised current entering the drain node is -i, leaving source +i:
        # i(v) = i0 + sum_k g_k (v_k - v_k0)
        const = i0 - sum(partials[k] * voltages[k] for k in partials)
        for k, g in partials.items():
            node_k = nodes[k]
            if node_k < 0:
                continue
            if self.drain >= 0:
                stamper.matrix[self.drain, node_k] += g
            if self.source >= 0:
                stamper.matrix[self.source, node_k] -= g
        stamper.add_current(self.drain, -const)
        stamper.add_current(self.source, const)

    # -- capacitance helpers (used by Circuit.add_mosfet) ----------------------

    def gate_channel_capacitance(self) -> float:
        """Total intrinsic gate capacitance C_ox·W·L [F]."""
        return self.model.cox_per_area * self.width * self.length

    def overlap_capacitance(self) -> float:
        """Gate-drain / gate-source overlap capacitance each [F]."""
        return self.model.overlap_cap_per_width * self.width

    def junction_capacitance(self) -> float:
        """Drain/source junction capacitance each [F]."""
        return self.model.junction_cap_per_width * self.width
