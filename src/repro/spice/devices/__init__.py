"""Circuit elements for the MNA solver."""

from repro.spice.devices.base import Device, EvalContext, TwoTerminal
from repro.spice.devices.passive import Resistor, Capacitor
from repro.spice.devices.sources import VoltageSource, CurrentSource
from repro.spice.devices.mosfet import MOSFET, MOSFETModel, NMOS_40LP, PMOS_40LP
from repro.spice.devices.mtj_element import MTJElement

__all__ = [
    "Device",
    "EvalContext",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "MOSFET",
    "MOSFETModel",
    "NMOS_40LP",
    "PMOS_40LP",
    "MTJElement",
]
