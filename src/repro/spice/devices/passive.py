"""Linear passive elements: resistor and capacitor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import NetlistError
from repro.spice.devices.base import EvalContext, TwoTerminal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spice.analysis.mna import MNAStamper


@dataclass
class Resistor(TwoTerminal):
    """Ohmic resistor."""

    resistance: float = 1.0
    nonlinear = False

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise NetlistError(f"resistor {self.name!r}: resistance must be positive")

    def stamp_static(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        stamper.add_conductance(self.positive, self.negative, 1.0 / self.resistance)

    def stamp(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        self.stamp_static(stamper, ctx)

    def current(self, ctx: EvalContext) -> float:
        """Current flowing positive → negative [A]."""
        return self.branch_voltage(ctx) / self.resistance


@dataclass
class Capacitor(TwoTerminal):
    """Linear capacitor with backward-Euler or trapezoidal companion model.

    For DC analyses the capacitor stamps nothing (open circuit).  During
    transient analysis it stamps the Norton companion

    * BE:    g = C/dt,   Ieq = g · v_prev
    * trap:  g = 2C/dt,  Ieq = g · v_prev + i_prev

    where ``i_prev`` is the capacitor current at the previous accepted
    timepoint (tracked in :attr:`_prev_current`).
    """

    capacitance: float = 1e-15
    nonlinear = False
    _prev_current: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise NetlistError(f"capacitor {self.name!r}: capacitance must be positive")

    def reset_state(self) -> None:
        self._prev_current = 0.0

    def companion_conductance(self, ctx: EvalContext) -> float:
        """Companion conductance [S] for the active integrator/timestep."""
        if ctx.integrator == "trap":
            return 2.0 * self.capacitance / ctx.dt
        return self.capacitance / ctx.dt

    def _companion(self, ctx: EvalContext) -> tuple:
        g = self.companion_conductance(ctx)
        v_prev = ctx.v_prev(self.positive) - ctx.v_prev(self.negative)
        if ctx.integrator == "trap":
            return g, g * v_prev + self._prev_current
        return g, g * v_prev

    def stamp_static(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        if not ctx.is_transient:
            return
        stamper.add_conductance(self.positive, self.negative,
                                self.companion_conductance(ctx))

    def stamp_step(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        if not ctx.is_transient:
            return
        _g, ieq = self._companion(ctx)
        stamper.add_current(self.positive, ieq)
        stamper.add_current(self.negative, -ieq)

    def stamp(self, stamper: "MNAStamper", ctx: EvalContext) -> None:
        self.stamp_static(stamper, ctx)
        self.stamp_step(stamper, ctx)

    def current(self, ctx: EvalContext) -> float:
        """Capacitor current positive → negative at the current iterate [A]."""
        if not ctx.is_transient:
            return 0.0
        g, ieq = self._companion(ctx)
        return g * self.branch_voltage(ctx) - ieq

    def update_state(self, ctx: EvalContext) -> None:
        if ctx.is_transient:
            self._prev_current = self.current(ctx)
