"""SPICE-deck export for :class:`~repro.spice.netlist.Circuit`.

Writes an industry-readable ``.sp`` deck from a circuit: element cards
for resistors, capacitors, sources (DC/PULSE/PWL), MOSFETs (with
``.model`` cards carrying our EKV parameters as comments plus a
level-1-compatible approximation) and MTJs (emitted as state-dependent
resistors with their magnetisation noted).  The export lets the latch
netlists built here be inspected or re-simulated in an external
simulator; it is also used by the documentation benches.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import NetlistError
from repro.spice.devices.mosfet import MOSFET, MOSFETModel
from repro.spice.devices.mtj_element import MTJElement
from repro.spice.devices.passive import Capacitor, Resistor
from repro.spice.devices.sources import CurrentSource, VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.waveforms import DC, PWL, Pulse, Waveform


def _node(circuit: Circuit, index: int) -> str:
    return "0" if index < 0 else circuit.node_name(index)


def _spice_name(name: str, prefix: str) -> str:
    clean = name.replace(".", "_")
    if clean and clean[0].upper() == prefix:
        return prefix + clean[1:]
    return f"{prefix}{clean}"


def _waveform_card(waveform: Waveform) -> str:
    if isinstance(waveform, DC):
        return f"DC {waveform.level:g}"
    if isinstance(waveform, Pulse):
        return (f"PULSE({waveform.initial:g} {waveform.pulsed:g} "
                f"{waveform.delay:g} {waveform.rise:g} {waveform.fall:g} "
                f"{waveform.width:g} "
                f"{waveform.period if waveform.period > 0 else 1:g})")
    if isinstance(waveform, PWL):
        points = " ".join(f"{t:g} {v:g}" for t, v in waveform.points)
        return f"PWL({points})"
    raise NetlistError(f"cannot export waveform type {type(waveform).__name__}")


def _model_card(name: str, model: MOSFETModel) -> str:
    """A level-1 approximation of the EKV card (KP, VTO, LAMBDA)."""
    mtype = "NMOS" if model.polarity == "n" else "PMOS"
    vto = model.vth0 if model.polarity == "n" else -model.vth0
    return (f".model {name} {mtype} (LEVEL=1 VTO={vto:g} KP={model.kp:g} "
            f"LAMBDA={model.lambda_clm:g})"
            f"  * EKV: n={model.slope_factor:g} T={model.temperature:g}K")


def export_spice(circuit: Circuit, title: str = "") -> str:
    """Serialise the circuit as a SPICE deck."""
    lines: List[str] = [f"* {title or circuit.name} — exported by repro"]
    models: Dict[int, str] = {}

    def model_name(model: MOSFETModel) -> str:
        key = id(model)
        if key not in models:
            models[key] = f"{model.polarity}mos_{len(models)}"
        return models[key]

    mtj_counter = 0
    for device in circuit.devices:
        if isinstance(device, Resistor):
            lines.append(f"{_spice_name(device.name, 'R')} "
                         f"{_node(circuit, device.positive)} "
                         f"{_node(circuit, device.negative)} "
                         f"{device.resistance:g}")
        elif isinstance(device, Capacitor):
            lines.append(f"{_spice_name(device.name, 'C')} "
                         f"{_node(circuit, device.positive)} "
                         f"{_node(circuit, device.negative)} "
                         f"{device.capacitance:g}")
        elif isinstance(device, VoltageSource):
            lines.append(f"{_spice_name(device.name, 'V')} "
                         f"{_node(circuit, device.positive)} "
                         f"{_node(circuit, device.negative)} "
                         f"{_waveform_card(device.waveform)}")
        elif isinstance(device, CurrentSource):
            lines.append(f"{_spice_name(device.name, 'I')} "
                         f"{_node(circuit, device.positive)} "
                         f"{_node(circuit, device.negative)} "
                         f"{_waveform_card(device.waveform)}")
        elif isinstance(device, MOSFET):
            lines.append(f"{_spice_name(device.name, 'M')} "
                         f"{_node(circuit, device.drain)} "
                         f"{_node(circuit, device.gate)} "
                         f"{_node(circuit, device.source)} "
                         f"{_node(circuit, device.bulk)} "
                         f"{model_name(device.model)} "
                         f"W={device.width:g} L={device.length:g}")
        elif isinstance(device, MTJElement):
            mtj_counter += 1
            state = device.device.state.value
            lines.append(f"R{_spice_name(device.name, 'R')[1:]}_mtj "
                         f"{_node(circuit, device.free)} "
                         f"{_node(circuit, device.ref)} "
                         f"{device.device.resistance(0.0):g}"
                         f"  * MTJ in state {state} "
                         f"(R_P={device.device.params.resistance_p:g}, "
                         f"R_AP={device.device.params.resistance_ap:g})")
        else:
            raise NetlistError(
                f"cannot export device type {type(device).__name__}")

    emitted = set()
    for device in circuit.devices:
        if isinstance(device, MOSFET):
            name = model_name(device.model)
            if name not in emitted:
                lines.append(_model_card(name, device.model))
                emitted.add(name)

    lines.append(".end")
    return "\n".join(lines) + "\n"
