"""A compact analog circuit simulator (SPICE-class) in pure Python.

This package substitutes for the Cadence Spectre + TSMC 40 nm flow the
paper used (see DESIGN.md §2).  It provides:

* :mod:`repro.spice.netlist` — circuit/netlist container with typed
  element constructors,
* :mod:`repro.spice.devices` — resistors, capacitors, independent
  sources, an EKV-style MOSFET compact model, and an MTJ adapter that
  couples :mod:`repro.mtj` into the solver,
* :mod:`repro.spice.analysis` — modified nodal analysis (MNA) assembly,
  Newton–Raphson DC operating point with gmin stepping, fixed-step
  transient analysis (backward-Euler / trapezoidal), and measurement
  utilities (delays, crossing times, integrated supply energy),
* :mod:`repro.spice.waveforms` — DC / pulse / piecewise-linear stimuli,
* :mod:`repro.spice.corners` — combined CMOS + MTJ simulation corners.
"""

from repro.spice.netlist import Circuit, GROUND
from repro.spice.waveforms import DC, Pulse, PWL, Waveform
from repro.spice.devices.mosfet import MOSFETModel, NMOS_40LP, PMOS_40LP
from repro.spice.corners import CMOSCorner, SimulationCorner, CORNERS
from repro.spice.analysis.dc import solve_dc, DCResult
from repro.spice.analysis.transient import run_transient, TransientResult
from repro.spice.analysis.measure import (
    crossing_time,
    delay_between,
    integrate_supply_energy,
    average_power,
)
from repro.spice.export import export_spice
from repro.spice.vcd import export_vcd

__all__ = [
    "Circuit",
    "GROUND",
    "DC",
    "Pulse",
    "PWL",
    "Waveform",
    "MOSFETModel",
    "NMOS_40LP",
    "PMOS_40LP",
    "CMOSCorner",
    "SimulationCorner",
    "CORNERS",
    "solve_dc",
    "DCResult",
    "run_transient",
    "TransientResult",
    "crossing_time",
    "delay_between",
    "integrate_supply_energy",
    "average_power",
    "export_spice",
    "export_vcd",
]
