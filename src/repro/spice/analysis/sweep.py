"""DC sweep analysis and derived static metrics.

``dc_sweep`` steps one voltage source through a list of values, solving
the operating point at each step with the previous solution as the warm
start (continuation), which tracks a consistent branch through bistable
regions.  On top of it:

* :func:`transfer_curve` — a VTC of any input/output node pair,
* :func:`static_noise_margin` — the butterfly-curve SNM of a
  cross-coupled inverter pair, the hold-stability metric of the sense
  amplifier at the heart of both latch designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError, suggest_names
from repro.spice.devices.mosfet import MOSFETModel, NMOS_40LP, PMOS_40LP
from repro.spice.devices.sources import VoltageSource
from repro.spice.analysis.dc import solve_dc
from repro.spice.netlist import Circuit
from repro.spice.waveforms import DC


@dataclass
class SweepResult:
    """DC sweep samples: one operating point per swept value."""

    circuit: Circuit
    source_name: str
    values: np.ndarray
    #: node voltages per step, shape (steps, num_nodes).
    node_voltages: np.ndarray

    def voltage(self, node_name: str) -> np.ndarray:
        """Per-step waveform of a node voltage; ground reads as zeros, an
        unknown (misspelled) node name raises :class:`AnalysisError`."""
        if not self.circuit.has_node(node_name):
            raise AnalysisError(
                f"no node named {node_name!r} in circuit {self.circuit.name!r}"
                + suggest_names(node_name, self.circuit.node_names)
            )
        index = self.circuit.node(node_name)
        if index < 0:
            return np.zeros(len(self.values))
        return self.node_voltages[:, index]


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: Sequence[float],
    initial_guess: Optional[dict] = None,
) -> SweepResult:
    """Sweep a voltage source through ``values`` (continuation solve)."""
    if len(values) < 1:
        raise AnalysisError("sweep needs at least one value")
    device = circuit.device(source_name)
    if not isinstance(device, VoltageSource):
        raise AnalysisError(f"{source_name!r} is not a voltage source")

    samples = []
    guess = initial_guess
    for value in values:
        device.waveform = DC(float(value))
        result = solve_dc(circuit, initial_guess=guess)
        samples.append(result.voltages.copy())
        # Warm-start the next step from this solution.
        guess = {circuit.node_name(i): float(v)
                 for i, v in enumerate(result.voltages)}
    return SweepResult(circuit=circuit, source_name=source_name,
                       values=np.asarray(values, dtype=float),
                       node_voltages=np.vstack(samples))


def transfer_curve(
    build: Callable[[], Circuit],
    input_source: str,
    output_node: str,
    values: Sequence[float],
) -> SweepResult:
    """Convenience: build a fresh circuit and sweep its input."""
    return dc_sweep(build(), input_source, values)


def inverter_vtc(
    nmos: MOSFETModel = NMOS_40LP,
    pmos: MOSFETModel = PMOS_40LP,
    vdd: float = 1.1,
    points: int = 45,
    nmos_width: float = 300e-9,
    pmos_width: float = 450e-9,
) -> SweepResult:
    """VTC of the latch-style inverter (the SA half-cell)."""
    c = Circuit("vtc")
    c.add_vsource("vdd", "vdd", "0", vdd)
    c.add_vsource("vin", "in", "0", 0.0)
    c.add_mosfet("mp", "out", "in", "vdd", "vdd", pmos, pmos_width, 40e-9,
                 with_caps=False)
    c.add_mosfet("mn", "out", "in", "0", "0", nmos, nmos_width, 40e-9,
                 with_caps=False)
    return dc_sweep(c, "vin", np.linspace(0.0, vdd, points),
                    initial_guess={"out": vdd})


def static_noise_margin(
    nmos: MOSFETModel = NMOS_40LP,
    pmos: MOSFETModel = PMOS_40LP,
    vdd: float = 1.1,
    points: int = 45,
) -> float:
    """Hold SNM [V] of the cross-coupled pair (butterfly method).

    The largest square that fits between the two mirrored inverter VTCs;
    computed on the 45°-rotated curves as is standard.
    """
    vtc = inverter_vtc(nmos, pmos, vdd, points)
    vin = vtc.values
    vout = vtc.voltage("out")

    # Curve 1: (vin, vout); curve 2 is its mirror (vout, vin).  Work in
    # the rotated frame u = (x - y)/sqrt(2), v = (x + y)/sqrt(2): the SNM
    # is sqrt(2) * max vertical gap between the rotated curves on one lobe.
    u1 = (vin - vout) / np.sqrt(2.0)
    v1 = (vin + vout) / np.sqrt(2.0)
    u2 = (vout - vin) / np.sqrt(2.0)
    v2 = (vout + vin) / np.sqrt(2.0)

    order1 = np.argsort(u1)
    order2 = np.argsort(u2)
    u_grid = np.linspace(max(u1.min(), u2.min()), min(u1.max(), u2.max()), 400)
    curve1 = np.interp(u_grid, u1[order1], v1[order1])
    curve2 = np.interp(u_grid, u2[order2], v2[order2])
    gap = curve1 - curve2
    # One lobe has curve1 above curve2, the other the opposite; the SNM is
    # the smaller of the two lobes' maximal square sides.
    lobe_high = gap.max()
    lobe_low = (-gap).max()
    if lobe_high <= 0 or lobe_low <= 0:
        raise AnalysisError("butterfly curves do not form two lobes — "
                            "the inverter pair is not bistable")
    return float(min(lobe_high, lobe_low) / np.sqrt(2.0))
