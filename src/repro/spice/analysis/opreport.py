"""Operating-point reports: per-device currents and power at a DC point.

The debugging companion of :func:`~repro.spice.analysis.dc.solve_dc`:
tabulates every device's terminal voltages, current and dissipated
power, plus a power-balance check (Σ device dissipation = Σ source
delivery) — the Tellegen identity that every valid operating point must
satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import AnalysisError
from repro.spice.devices.base import EvalContext
from repro.spice.devices.mosfet import MOSFET
from repro.spice.devices.mtj_element import MTJElement
from repro.spice.devices.passive import Resistor
from repro.spice.devices.sources import VoltageSource
from repro.spice.analysis.dc import DCResult


@dataclass
class DeviceOperatingPoint:
    """One device's DC state."""

    name: str
    kind: str
    current: float  # through-current [A]
    power: float    # dissipated (+) or delivered (−) [W]
    detail: str = ""


def operating_point_report(result: DCResult) -> List[DeviceOperatingPoint]:
    """Per-device operating points of a solved DC result."""
    circuit = result.circuit
    ctx = EvalContext(voltages=result.voltages, prev_voltages=None,
                      time=0.0, dt=None)
    rows: List[DeviceOperatingPoint] = []
    for device in circuit.devices:
        if isinstance(device, Resistor):
            current = device.current(ctx)
            power = current * device.branch_voltage(ctx)
            rows.append(DeviceOperatingPoint(device.name, "R", current, power))
        elif isinstance(device, MOSFET):
            current = device.drain_current(ctx)
            vds = ctx.v(device.drain) - ctx.v(device.source)
            vgs = ctx.v(device.gate) - ctx.v(device.source)
            rows.append(DeviceOperatingPoint(
                device.name, "M", current, current * vds,
                detail=f"vgs={vgs:.3f} vds={vds:.3f}"))
        elif isinstance(device, MTJElement):
            current = device.current(ctx)
            power = current * device.bias(ctx)
            rows.append(DeviceOperatingPoint(
                device.name, "MTJ", current, power,
                detail=f"state={device.device.state.value}"))
        elif isinstance(device, VoltageSource):
            branch = float(result.branch_currents[device.branch_index])
            voltage = device.voltage_at(0.0)
            rows.append(DeviceOperatingPoint(
                device.name, "V", branch, branch * voltage,
                detail=f"v={voltage:.3f}"))
    # The solver's residual gmin (one conductance per node to ground) also
    # dissipates; without it the Tellegen sum would show a spurious
    # residual of ~nodes × V² × gmin.
    gmin_power = float(result.gmin * (result.voltages ** 2).sum())
    if gmin_power > 0.0:
        rows.append(DeviceOperatingPoint(
            "(gmin)", "G", 0.0, gmin_power,
            detail=f"solver homotopy, {result.gmin:g} S/node"))
    return rows


def power_balance(result: DCResult, tolerance: float = 1e-9) -> float:
    """Tellegen check: total power over all devices must vanish.

    Returns the residual [W]; raises when it exceeds ``tolerance``
    relative to the total dissipation.
    """
    rows = operating_point_report(result)
    dissipated = sum(r.power for r in rows if r.power > 0)
    total = sum(r.power for r in rows)
    scale = max(dissipated, 1e-18)
    if abs(total) > tolerance * scale + 1e-18:
        raise AnalysisError(
            f"power balance violated: residual {total:g} W "
            f"against {dissipated:g} W dissipated")
    return total


def render_operating_point(result: DCResult, min_current: float = 0.0) -> str:
    """Plain-text operating-point table (devices above ``min_current``)."""
    rows = [r for r in operating_point_report(result)
            if abs(r.current) >= min_current]
    rows.sort(key=lambda r: -abs(r.power))
    lines = ["device            | kind |    current |      power | detail",
             "------------------+------+------------+------------+-------"]
    for r in rows:
        lines.append(f"{r.name:17s} | {r.kind:4s} | {r.current:10.3e} | "
                     f"{r.power:10.3e} | {r.detail}")
    return "\n".join(lines)
