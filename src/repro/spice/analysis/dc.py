"""DC operating-point analysis: damped Newton–Raphson with gmin stepping.

The solver assembles the MNA system linearised at the current iterate and
re-solves until the update is small.  Robustness aids, in escalation
order:

1. per-iteration voltage-update damping (default 0.4 V clamp),
2. gmin homotopy: if plain Newton fails, solve a sequence of problems
   with a large conductance from every node to ground, reducing it one
   decade at a time and warm-starting each stage.

Both are standard SPICE practice and are exercised by the latch circuits,
whose cross-coupled sense amplifiers have multiple DC solutions — the
homotopy reliably lands on the one seeded by the initial guess.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.obs import is_active as _obs_active
from repro.obs import metrics as _obs_metrics
from repro.obs import span as _obs_span
from repro.spice.devices.base import EvalContext
from repro.spice.devices.sources import VoltageSource
from repro.spice.analysis.mna import MNAStamper
from repro.spice.netlist import Circuit

#: Default Newton iteration limit per gmin stage.
DEFAULT_MAX_ITERATIONS = 150
#: Default absolute voltage-convergence tolerance [V].
DEFAULT_VTOL = 1e-7
#: Default clamp on the per-iteration voltage update [V].
DEFAULT_DAMPING = 0.4
#: Residual gmin left in the final solve [S].
FLOOR_GMIN = 1e-12


@dataclass
class DCResult:
    """Solved operating point."""

    circuit: Circuit
    voltages: np.ndarray
    branch_currents: np.ndarray
    iterations: int
    gmin: float

    def voltage(self, node_name: str) -> float:
        """Node voltage by name [V]."""
        index = self.circuit.node(node_name)
        return 0.0 if index < 0 else float(self.voltages[index])

    def source_current(self, source_name: str) -> float:
        """Branch current of a voltage source [A] (positive flows from the
        + terminal through the source to the − terminal)."""
        device = self.circuit.device(source_name)
        if not isinstance(device, VoltageSource):
            raise ConvergenceError(f"{source_name!r} is not a voltage source")
        return float(self.branch_currents[device.branch_index])

    def supply_power(self, source_name: str) -> float:
        """Power delivered by the named source [W] at this operating point."""
        device = self.circuit.device(source_name)
        if not isinstance(device, VoltageSource):
            raise ConvergenceError(f"{source_name!r} is not a voltage source")
        v = device.voltage_at(0.0)
        return -v * float(self.branch_currents[device.branch_index])


def _newton(
    circuit: Circuit,
    x0: np.ndarray,
    time: float,
    gmin: float,
    max_iterations: int,
    vtol: float,
    damping: float,
    prev_voltages: Optional[np.ndarray] = None,
    dt: Optional[float] = None,
    integrator: str = "be",
    deadline: Optional[float] = None,
    linear_solve=None,
    source_scale: float = 1.0,
    probe=None,
) -> tuple:
    """One Newton solve; returns ``(x, iterations)`` or raises.

    ``deadline`` is an absolute :func:`time.monotonic` instant; when the
    iteration loop crosses it, a :class:`ConvergenceError` is raised with
    the last iterate attached as ``state`` — pathological (e.g.
    fault-injected) circuits abort on the wall clock instead of grinding
    through every remaining iteration and gmin stage.

    ``source_scale`` scales every independent source (the recovery
    ladder's source-stepping homotopy); ``probe`` is an optional
    :class:`~repro.recovery.health.ConditionProbe` sampling the stamped
    system's conditioning.
    """
    num_nodes = circuit.num_nodes
    x = x0.copy()
    for iteration in range(1, max_iterations + 1):
        if deadline is not None and _time.monotonic() > deadline:
            raise ConvergenceError(
                f"Newton solve exceeded its wall-clock timeout at "
                f"iteration {iteration} (gmin={gmin:g})",
                iterations=iteration, state=x.copy(),
            )
        ctx = EvalContext(
            voltages=x[:num_nodes],
            prev_voltages=prev_voltages,
            time=time,
            dt=dt,
            gmin=gmin,
            integrator=integrator,
            source_scale=source_scale,
        )
        stamper = MNAStamper(num_nodes, circuit.num_branches)
        for device in circuit.devices:
            device.stamp(stamper, ctx)
        stamper.apply_gmin(gmin)
        try:
            if linear_solve is None:
                x_new = stamper.solve()
            else:
                x_new = linear_solve(stamper.matrix, stamper.rhs)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix at gmin={gmin:g} (iteration {iteration})",
                iterations=iteration,
            ) from exc
        if probe is not None:
            probe.estimate_dense(stamper.matrix)

        delta = x_new - x
        dv = delta[:num_nodes]
        max_dv = float(np.max(np.abs(dv))) if num_nodes else 0.0
        if max_dv > damping:
            # Damp the whole update uniformly to preserve the Newton direction.
            delta *= damping / max_dv
            x = x + delta
        else:
            x = x_new
            if max_dv < vtol:
                return x, iteration
    raise ConvergenceError(
        f"Newton failed to converge in {max_iterations} iterations "
        f"(gmin={gmin:g}, last max dV={max_dv:g})",
        iterations=max_iterations,
        residual=max_dv,
        state=x.copy(),
    )


def newton_step(
    circuit: Circuit,
    x0: np.ndarray,
    time: float,
    prev_voltages: np.ndarray,
    dt: float,
    integrator: str = "be",
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    vtol: float = DEFAULT_VTOL,
    damping: float = DEFAULT_DAMPING,
    gmin: float = FLOOR_GMIN,
    stats=None,
    probe=None,
) -> np.ndarray:
    """Newton solve for one transient timepoint (used by the transient
    driver).  ``stats`` — optional
    :class:`~repro.spice.analysis.engine.SolverStats` accumulating the
    naive engine's iteration counts for observability; ``probe`` — an
    optional :class:`~repro.recovery.health.ConditionProbe`."""
    x, iterations = _newton(
        circuit, x0, time, gmin, max_iterations, vtol, damping,
        prev_voltages=prev_voltages, dt=dt, integrator=integrator,
        probe=probe,
    )
    if stats is not None:
        stats.iterations += iterations
        stats.solves += 1
        stats.factorizations += iterations  # one dense solve per iteration
    return x


def solve_dc(
    circuit: Circuit,
    time: float = 0.0,
    initial_guess: Optional[dict] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    vtol: float = DEFAULT_VTOL,
    damping: float = DEFAULT_DAMPING,
    lint: str = "error",
    timeout: Optional[float] = None,
    engine: Optional[str] = None,
    recovery=None,
) -> DCResult:
    """Find the DC operating point with source values evaluated at ``time``.

    ``recovery`` — optional
    :class:`~repro.recovery.policy.RecoveryPolicy` configuring the DC
    recovery ladder (gmin homotopy staging, source-stepping homotopy,
    forensics shrinking).  The policy fingerprint is part of the cache
    key.

    ``engine`` — ``None``/``"dense"`` solves each Newton iteration's
    linear system densely (the historical path); ``"sparse"`` routes it
    through the SuperLU backend of :mod:`repro.spice.analysis.sparse`
    (worthwhile for array-scale circuits).  Both obey the same gmin
    ladder; the choice is part of the cache key.

    ``initial_guess`` maps node names to seed voltages; unlisted nodes
    start at 0 V.  For bistable circuits (sense amplifiers, latches) the
    seed selects the solution branch.

    ``lint`` selects the ERC pre-flight mode (``"error"``/``"warn"``/
    ``"off"``, see :func:`repro.lint.preflight`): circuits whose MNA
    system is structurally singular (floating nodes, voltage-source
    loops) are reported by name up front instead of as a gmin-stepping
    stall.

    ``timeout`` bounds the *wall-clock* seconds spent across all Newton
    iterations and gmin stages; crossing it raises
    :class:`~repro.errors.ConvergenceError` with the last Newton iterate
    attached as ``state``.  Fault-injection campaigns rely on this so one
    pathological injected circuit cannot stall a whole sweep.
    """
    from repro.lint import preflight

    preflight(circuit, lint)

    if timeout is not None and timeout <= 0.0:
        raise ConvergenceError(f"timeout must be positive, got {timeout}")
    deadline = None if timeout is None else _time.monotonic() + timeout

    if engine in (None, "dense"):
        linear_solve = None
    elif engine == "sparse":
        from repro.spice.analysis.sparse import sparse_linear_solve

        linear_solve = sparse_linear_solve
    else:
        raise ConvergenceError(
            f"unknown DC engine {engine!r}; expected 'dense' or 'sparse'")

    # Content-addressed result cache: the timeout is a wall-clock budget,
    # not part of the solution, so it is deliberately absent from the key.
    from repro.cache.analysis import dc_handle

    from repro.recovery.policy import DEFAULT_POLICY

    policy = DEFAULT_POLICY if recovery is None else recovery

    cache_handle = dc_handle(circuit, time=time, initial_guess=initial_guess,
                             max_iterations=max_iterations, vtol=vtol,
                             damping=damping, engine=engine, recovery=policy)
    if cache_handle is not None:
        cached = cache_handle.lookup()
        if cached is not None:
            return cached

    circuit.finalize()
    size = circuit.num_nodes + circuit.num_branches
    x0 = np.zeros(size)
    if initial_guess:
        for node_name, value in initial_guess.items():
            index = circuit.node(node_name)
            if index >= 0:
                x0[index] = value

    with _obs_span("analysis.dc", category="analysis",
                   attrs={"circuit": circuit.name}) as sp:
        last_error: Optional[ConvergenceError] = None
        # Plain Newton first, then gmin stepping from strong to weak.
        try:
            x, iterations = _newton(
                circuit, x0, time, FLOOR_GMIN, max_iterations, vtol, damping,
                deadline=deadline, linear_solve=linear_solve,
            )
            _flush_dc_metrics(sp, iterations, gmin_stages=0)
            result = DCResult(circuit, x[: circuit.num_nodes],
                              x[circuit.num_nodes:], iterations, FLOOR_GMIN)
            if cache_handle is not None:
                cache_handle.store(result)
            return result
        except ConvergenceError as exc:
            last_error = exc
            if deadline is not None and _time.monotonic() > deadline:
                raise ConvergenceError(
                    f"DC solve of {circuit.name!r} exceeded its {timeout:g} s "
                    f"wall-clock timeout: {exc}",
                    iterations=exc.iterations, residual=exc.residual,
                    state=exc.state,
                ) from exc

        # Recovery ladder: staged gmin homotopy, then source stepping.
        # (Deliberately outside the except handler above so the devlint
        # dev.bare-convergence-retry rule holds: all retry policy lives
        # in repro.recovery.)
        from repro.recovery.ladder import dc_recover

        x, total_iterations, health, _trajectory = dc_recover(
            circuit, _newton, x0, time, max_iterations, vtol, damping,
            FLOOR_GMIN, last_error, policy=policy,
            linear_solve=linear_solve, deadline=deadline,
            engine_label="sparse" if linear_solve is not None else "dense",
        )
        _flush_dc_metrics(sp, total_iterations, health.dc_gmin_stages,
                          health=health)
        result = DCResult(circuit, x[: circuit.num_nodes],
                          x[circuit.num_nodes:], total_iterations, FLOOR_GMIN)
        if cache_handle is not None:
            cache_handle.store(result)
        return result


def _flush_dc_metrics(sp, iterations: int, gmin_stages: int,
                      health=None) -> None:
    """Record a finished DC solve in the metrics registry (no-op while
    observability is off) and annotate the enclosing span."""
    if not _obs_active():
        return
    sp.annotate(newton_iterations=iterations, gmin_stages=gmin_stages)
    registry = _obs_metrics()
    registry.inc("engine.dc_solves", 1)
    registry.inc("engine.newton_iterations", iterations)
    if gmin_stages:
        registry.inc("engine.gmin_stepping_stages", gmin_stages)
    if health is not None:
        health.flush_to(registry)
