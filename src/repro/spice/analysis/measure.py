"""Measurement utilities over transient results.

These mirror the ``.measure`` statements the paper's authors would have
used in Spectre: threshold-crossing times, delays between signal edges,
and integrated supply energy over a window.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AnalysisError
from repro.spice.analysis.transient import TransientResult


def crossing_time(
    times: np.ndarray,
    values: np.ndarray,
    threshold: float,
    direction: str = "any",
    start: float = 0.0,
) -> Optional[float]:
    """First time ``values`` crosses ``threshold`` after ``start``.

    ``direction`` is ``"rise"``, ``"fall"`` or ``"any"``.  Returns the
    linearly interpolated crossing time, or ``None`` if no crossing occurs.
    """
    if direction not in ("rise", "fall", "any"):
        raise AnalysisError(f"unknown direction {direction!r}")
    if len(times) != len(values):
        raise AnalysisError("times and values must have equal length")
    above = values >= threshold
    for i in range(1, len(times)):
        if times[i] < start:
            continue
        if above[i] == above[i - 1]:
            continue
        rising = bool(above[i]) and not bool(above[i - 1])
        if direction == "rise" and not rising:
            continue
        if direction == "fall" and rising:
            continue
        v0, v1 = values[i - 1], values[i]
        t0, t1 = times[i - 1], times[i]
        frac = (threshold - v0) / (v1 - v0)
        crossing = t0 + frac * (t1 - t0)
        if crossing >= start:
            return float(crossing)
    return None


def delay_between(
    result: TransientResult,
    from_signal: str,
    to_signal: str,
    from_threshold: float,
    to_threshold: float,
    from_direction: str = "any",
    to_direction: str = "any",
    start: float = 0.0,
) -> float:
    """Delay from an edge on ``from_signal`` to the next edge on
    ``to_signal`` [s].  Raises if either edge is missing."""
    t_from = crossing_time(
        result.times, result.voltage(from_signal), from_threshold,
        direction=from_direction, start=start,
    )
    if t_from is None:
        raise AnalysisError(
            f"no {from_direction} crossing of {from_signal!r} at {from_threshold} V"
        )
    t_to = crossing_time(
        result.times, result.voltage(to_signal), to_threshold,
        direction=to_direction, start=t_from,
    )
    if t_to is None:
        raise AnalysisError(
            f"no {to_direction} crossing of {to_signal!r} at {to_threshold} V "
            f"after t={t_from:g}"
        )
    return t_to - t_from


def integrate_supply_energy(
    result: TransientResult,
    source_name: str,
    t0: float = 0.0,
    t1: Optional[float] = None,
) -> float:
    """Energy delivered by a voltage source over [t0, t1] [J].

    Positive values mean the source delivered energy to the circuit (the
    branch current of a sourcing supply is negative by convention, hence
    the sign flip).
    """
    if t1 is None:
        t1 = float(result.times[-1])
    mask = result.window(t0, t1)
    if mask.sum() < 2:
        raise AnalysisError(f"window [{t0}, {t1}] contains fewer than 2 samples")
    times = result.times[mask]
    current = result.source_current(source_name)[mask]
    device = result.circuit.device(source_name)
    volts = np.array([device.voltage_at(t) for t in times])
    power = -volts * current
    return float(np.trapezoid(power, times))


def average_power(
    result: TransientResult,
    source_name: str,
    t0: float = 0.0,
    t1: Optional[float] = None,
) -> float:
    """Mean power delivered by a source over the window [W]."""
    if t1 is None:
        t1 = float(result.times[-1])
    if t1 <= t0:
        raise AnalysisError(f"empty window [{t0}, {t1}]")
    return integrate_supply_energy(result, source_name, t0, t1) / (t1 - t0)


def settle_value(
    result: TransientResult,
    node_name: str,
    window: float = 100e-12,
) -> float:
    """Mean node voltage over the trailing ``window`` seconds — a
    noise-tolerant 'final value' readout."""
    t_end = float(result.times[-1])
    mask = result.window(max(0.0, t_end - window), t_end)
    return float(np.mean(result.voltage(node_name)[mask]))
