"""Fast-path simulation engine: cached MNA assembly + Jacobian reuse.

The naive transient path re-allocates a dense MNA system and re-stamps
*every* device on *every* Newton iteration.  For the latch circuits the
device population is dominated by linear elements (resistors, the
capacitors' companion conductances, source incidence rows) whose matrix
stamps never change within a run — only the MOSFETs and MTJs genuinely
need re-linearisation.  This module exploits that:

* :class:`MNAWorkspace` preallocates the matrix/RHS once, caches the
  static stamps of linear devices (``Device.stamp_static``) and the
  per-timepoint RHS of sources/capacitor companions
  (``Device.stamp_step``), and re-stamps only nonlinear devices per
  Newton iteration.  MOSFETs are evaluated *vectorised* across all
  transistors of the circuit (one EKV evaluation over numpy arrays
  instead of N Python calls) when the circuit has enough of them.
* :class:`FastNewtonSolver` implements damped modified Newton: the LU
  factorisation of the Jacobian is reused across iterations (only the
  residual is refreshed), with automatic fallback to a full
  refactorisation when convergence slows down or stalls.
* :func:`fast_transient_step` mirrors :func:`~repro.spice.analysis.dc.newton_step`
  for the fast path; :func:`~repro.spice.analysis.transient.run_transient`
  selects it with ``engine="fast"`` (the default) and keeps the legacy
  path under ``engine="naive"`` so tests can compare the two.

Equivalence contract, enforced by ``tests/test_engine_equivalence.py``:
the workspace assembly matches the naive :class:`MNAStamper` assembly to
≤ 1e-12 and fast waveforms match naive waveforms to ≤ 1 µV.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # LU reuse via LAPACK getrf/getrs; graceful degradation without scipy.
    from scipy.linalg import get_lapack_funcs

    _getrf, _getrs = get_lapack_funcs(("getrf", "getrs"),
                                      (np.empty((1, 1)), np.empty(1)))
    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _HAVE_SCIPY = False

from repro.errors import ConvergenceError
from repro.mtj.device import MTJState
from repro.obs import is_active as _obs_active
from repro.spice.devices.base import Device, EvalContext
from repro.spice.devices.mosfet import MOSFET
from repro.spice.devices.mtj_element import MTJElement
from repro.spice.devices.passive import Capacitor
from repro.spice.analysis.mna import MNAStamper
from repro.spice.netlist import Circuit

#: Minimum transistor count before the vectorised MOSFET group pays off;
#: below this the per-device scalar stamp (identical to the naive path)
#: is cheaper than numpy call overhead.
VECTORIZE_MOSFET_THRESHOLD = 4
#: Minimum MTJ count before the vectorised MTJ group pays off — array
#: workloads (1T-1MTJ grids) have hundreds of junctions whose scalar
#: Python stamps would otherwise dominate the Newton iteration.  Set
#: *above* 4 so the shipped cells (1-bit: 2 MTJs, 2-bit: 4 MTJs) keep
#: the scalar per-element stamps: vectorised accumulation reorders the
#: floating-point sums at the ulp level, and the golden baselines
#: (tests/test_golden_faults_baseline.py) pin those cells bit-exactly.
VECTORIZE_MTJ_THRESHOLD = 5
#: Refactorise the Jacobian at least every this many iterations.
JACOBIAN_MAX_AGE = 6
#: Smoothing of the channel-length-modulation overdrive (mirrors mosfet.py).
_CLM_EPSILON = 1e-3


@dataclass
class SolverStats:
    """Counters the engine maintains about its own work.

    Kept as plain attribute increments so the untraced hot path pays
    integer adds only; :meth:`flush_to` moves the totals into the
    observability metrics registry once per analysis when a session is
    active.  ``stamp_seconds`` holds per-device-class assembly time and
    is only populated while tracing is on (it needs clock reads).
    """

    solves: int = 0
    iterations: int = 0
    factorizations: int = 0
    reuses: int = 0
    singular_retries: int = 0
    gmin_retries: int = 0
    timesteps: int = 0
    #: Sparse engine: symbolic pattern analyses performed vs served from
    #: the topology-keyed registry (see repro.spice.analysis.sparse).
    pattern_builds: int = 0
    pattern_reuses: int = 0
    #: Adaptive timestep control: steps rejected by the LTE estimator.
    lte_rejects: int = 0
    #: Timesteps completed only via the recovery ladder (any rung); the
    #: detailed per-rung breakdown lives on
    #: :class:`~repro.recovery.health.SolverHealth`.
    recovered_steps: int = 0
    stamp_seconds: Dict[str, float] = field(default_factory=dict)

    def flush_to(self, registry) -> None:
        """Add these totals to an :class:`repro.obs.MetricsRegistry`."""
        registry.inc("engine.solves", self.solves)
        registry.inc("engine.newton_iterations", self.iterations)
        registry.inc("engine.jacobian_factorizations", self.factorizations)
        registry.inc("engine.jacobian_reuses", self.reuses)
        if self.singular_retries:
            registry.inc("engine.singular_retries", self.singular_retries)
        if self.gmin_retries:
            registry.inc("engine.gmin_retries", self.gmin_retries)
        if self.timesteps:
            registry.inc("engine.timesteps", self.timesteps)
        if self.pattern_builds:
            registry.inc("engine.sparse_pattern_builds", self.pattern_builds)
        if self.pattern_reuses:
            registry.inc("engine.sparse_pattern_reuses", self.pattern_reuses)
        if self.lte_rejects:
            registry.inc("engine.lte_rejects", self.lte_rejects)
        if self.recovered_steps:
            registry.inc("engine.recovered_steps", self.recovered_steps)
        for device_class in sorted(self.stamp_seconds):
            registry.inc(f"engine.stamp_seconds.{device_class}",
                         self.stamp_seconds[device_class])

    def as_attrs(self) -> Dict[str, int]:
        """Span-attribute form (the trace viewer's tooltip payload)."""
        return {
            "solves": self.solves,
            "newton_iterations": self.iterations,
            "jacobian_factorizations": self.factorizations,
            "jacobian_reuses": self.reuses,
            "singular_retries": self.singular_retries,
            "gmin_retries": self.gmin_retries,
            "timesteps": self.timesteps,
            "pattern_builds": self.pattern_builds,
            "pattern_reuses": self.pattern_reuses,
            "lte_rejects": self.lte_rejects,
            "recovered_steps": self.recovered_steps,
        }

    def to_json(self) -> Dict[str, object]:
        """Plain-dict form for cache entries: what the original solve
        cost, replayed verbatim on a hit."""
        return {
            "solves": self.solves,
            "iterations": self.iterations,
            "factorizations": self.factorizations,
            "reuses": self.reuses,
            "singular_retries": self.singular_retries,
            "gmin_retries": self.gmin_retries,
            "timesteps": self.timesteps,
            "pattern_builds": self.pattern_builds,
            "pattern_reuses": self.pattern_reuses,
            "lte_rejects": self.lte_rejects,
            "recovered_steps": self.recovered_steps,
            "stamp_seconds": dict(self.stamp_seconds),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "SolverStats":
        return cls(
            solves=int(data.get("solves", 0)),
            iterations=int(data.get("iterations", 0)),
            factorizations=int(data.get("factorizations", 0)),
            reuses=int(data.get("reuses", 0)),
            singular_retries=int(data.get("singular_retries", 0)),
            gmin_retries=int(data.get("gmin_retries", 0)),
            timesteps=int(data.get("timesteps", 0)),
            pattern_builds=int(data.get("pattern_builds", 0)),
            pattern_reuses=int(data.get("pattern_reuses", 0)),
            lte_rejects=int(data.get("lte_rejects", 0)),
            recovered_steps=int(data.get("recovered_steps", 0)),
            stamp_seconds={str(k): float(v)
                           for k, v in dict(
                               data.get("stamp_seconds", {})).items()},
        )


def engine_config_fingerprint() -> Dict[str, object]:
    """The engine configuration a cache key must capture: anything that
    could change the bit pattern of a solution between two hosts or two
    builds.  The LAPACK-LU availability flag matters because the fast
    engine's Jacobian-reuse path only runs with scipy present, and a
    different factorisation route can differ in final bits."""
    from repro.spice.analysis.sparse import sparse_config_fingerprint

    return {
        "vectorize_mosfet_threshold": VECTORIZE_MOSFET_THRESHOLD,
        "vectorize_mtj_threshold": VECTORIZE_MTJ_THRESHOLD,
        "jacobian_max_age": JACOBIAN_MAX_AGE,
        "scipy_lu": _HAVE_SCIPY,
        "sparse": sparse_config_fingerprint(),
    }


def _gather(voltages: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Node voltages for an index array, ground (−1) reading as 0 V."""
    if voltages.size == 0:
        return np.zeros(indices.shape)
    return np.where(indices >= 0, voltages[np.clip(indices, 0, None)], 0.0)


class _Gather:
    """Precompiled ground-masked gather: clipped indices + 0/1 mask, so the
    per-iteration work is one ``take`` and one multiply."""

    def __init__(self, indices: np.ndarray):
        self.clipped = np.clip(indices, 0, None)
        self.mask = (indices >= 0).astype(float)

    def __call__(self, voltages: np.ndarray) -> np.ndarray:
        if voltages.size == 0:
            return np.zeros(self.clipped.shape)
        return voltages.take(self.clipped) * self.mask


class _MOSFETGroup:
    """All MOSFETs of a circuit, evaluated and stamped as numpy arrays.

    Reproduces :meth:`MOSFET.evaluate` / :meth:`MOSFET.stamp` exactly
    (same formulas, vectorised); the equivalence property tests compare
    the two to 1e-12.
    """

    def __init__(self, fets: List[MOSFET], size: int):
        self.fets = fets
        count = len(fets)
        self.size = size
        self.drain = np.array([f.drain for f in fets], dtype=np.intp)
        self.gate = np.array([f.gate for f in fets], dtype=np.intp)
        self.source = np.array([f.source for f in fets], dtype=np.intp)
        self.bulk = np.array([f.bulk for f in fets], dtype=np.intp)
        self.sign = np.array([f.model.sign for f in fets])
        self.vth0 = np.array([f.model.vth0 for f in fets])
        self.slope = np.array([f.model.slope_factor for f in fets])
        self.lam = np.array([f.model.lambda_clm for f in fets])
        self.two_vt = np.array([2.0 * f.model.thermal_volt for f in fets])
        self.i_spec = np.array(
            [f.model.specific_current(f.width, f.length) for f in fets]
        )

        # Precomputed scatter patterns.  Matrix contributions: for every
        # partial k ∈ (d, g, s, b), +g_k lands on (drain, node_k) and −g_k
        # on (source, node_k) — ground rows/columns dropped.
        terminals = (self.drain, self.gate, self.source, self.bulk)
        flat_parts: List[np.ndarray] = []
        sign_parts: List[np.ndarray] = []
        k_parts: List[np.ndarray] = []
        fet_parts: List[np.ndarray] = []
        for row_nodes, row_sign in ((self.drain, 1.0), (self.source, -1.0)):
            for k, col_nodes in enumerate(terminals):
                mask = (row_nodes >= 0) & (col_nodes >= 0)
                sel = np.nonzero(mask)[0]
                flat_parts.append(row_nodes[sel] * size + col_nodes[sel])
                sign_parts.append(np.full(sel.shape, row_sign))
                k_parts.append(np.full(sel.shape, k, dtype=np.intp))
                fet_parts.append(sel)
        self.flat_index = np.concatenate(flat_parts)
        self.scatter_sign = np.concatenate(sign_parts)
        self.scatter_k = np.concatenate(k_parts)
        self.scatter_fet = np.concatenate(fet_parts)
        self.drain_sel = np.nonzero(self.drain >= 0)[0]
        self.source_sel = np.nonzero(self.source >= 0)[0]
        self._count = count
        self._gather_d = _Gather(self.drain)
        self._gather_g = _Gather(self.gate)
        self._gather_s = _Gather(self.source)
        self._gather_b = _Gather(self.bulk)

    @staticmethod
    def _interp(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised EKV interpolation F(x) = ln²(1+eˣ) and 2·ln(1+eˣ)·σ(x)."""
        log_term = np.logaddexp(0.0, x)
        # σ(x) = eˣ/(1+eˣ) = exp(x − ln(1+eˣ)), stable for both signs.
        sigmoid = np.exp(x - log_term)
        return log_term * log_term, 2.0 * log_term * sigmoid

    def evaluate(self, voltages: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Drain currents and the (4, N) partial-derivative matrix.

        Returns ``(i_drain, partials, const)`` where ``partials`` rows
        follow the (d, g, s, b) terminal order and ``const`` is the Norton
        offset current of the linearisation.
        """
        vd = self._gather_d(voltages)
        vg = self._gather_g(voltages)
        vs = self._gather_s(voltages)
        vb = self._gather_b(voltages)

        sigma = self.sign
        vdp, vgp = sigma * vd, sigma * vg
        vsp, vbp = sigma * vs, sigma * vb
        vp_pinch = (vgp - vbp - self.vth0) / self.slope
        u_f = vp_pinch - (vsp - vbp)
        u_r = vp_pinch - (vdp - vbp)

        f_f, df_f = self._interp(u_f / self.two_vt)
        f_r, df_r = self._interp(u_r / self.two_vt)
        df_f = df_f / self.two_vt
        df_r = df_r / self.two_vt

        delta_i = f_f - f_r
        vds_p = vdp - vsp
        root = np.sqrt(vds_p * vds_p + _CLM_EPSILON * _CLM_EPSILON)
        h = root - _CLM_EPSILON
        m = 1.0 + self.lam * h
        dm_dvds = self.lam * vds_p / root

        i_drain = sigma * (self.i_spec * delta_i * m)
        partials = np.empty((4, self._count))
        gate_term = self.i_spec * m * (df_f - df_r)
        partials[0] = self.i_spec * (m * df_r + delta_i * dm_dvds)   # d
        partials[1] = gate_term / self.slope                         # g
        partials[2] = self.i_spec * (-m * df_f - delta_i * dm_dvds)  # s
        partials[3] = gate_term * (1.0 - 1.0 / self.slope)           # b
        const = i_drain - (partials[0] * vd + partials[1] * vg
                           + partials[2] * vs + partials[3] * vb)
        return i_drain, partials, const

    def stamp(self, matrix_flat: np.ndarray, rhs: np.ndarray,
              voltages: np.ndarray) -> None:
        """Scatter the linearised stamps of all transistors at once."""
        self.stamp_into(matrix_flat, self.flat_index, rhs, voltages)

    def stamp_into(self, target: np.ndarray, index: np.ndarray,
                   rhs: np.ndarray, voltages: np.ndarray) -> None:
        """Stamp with a caller-supplied slot mapping: ``target[index]``
        must alias the same matrix slots as ``matrix_flat[flat_index]``
        (the sparse engine passes CSC data positions)."""
        _i_drain, partials, const = self.evaluate(voltages)
        values = (self.scatter_sign
                  * partials[self.scatter_k, self.scatter_fet])
        np.add.at(target, index, values)
        np.add.at(rhs, self.drain[self.drain_sel], -const[self.drain_sel])
        np.add.at(rhs, self.source[self.source_sel], const[self.source_sel])


class _MTJGroup:
    """All MTJ elements of a circuit, evaluated and stamped as arrays.

    Replicates :meth:`MTJElement.stamp` element-wise (same conductance
    and roll-off expressions, vectorised).  State stays owned by the
    elements so :meth:`MNAWorkspace.update_state` keeps driving the
    scalar :class:`~repro.mtj.dynamics.SwitchingModel` exactly as
    before.  Because ``device.state`` only ever flips inside
    ``update_state`` — between accepted timepoints, never during Newton
    iterations — the per-junction P/AP mask is cached for the duration
    of a timepoint (:meth:`refresh_states` from ``begin_step``,
    invalidated by ``MNAWorkspace.update_state``) instead of being
    re-read from Python objects on every stamp call.
    """

    def __init__(self, mtjs: List[MTJElement], size: int):
        self.mtjs = mtjs
        self.free = np.array([m.free for m in mtjs], dtype=np.intp)
        self.ref = np.array([m.ref for m in mtjs], dtype=np.intp)
        self.r_p = np.array([m.device.params.resistance_p for m in mtjs])
        self.tmr0 = np.array([m.device.params.tmr_zero_bias for m in mtjs])
        self.v_h = np.array(
            [m.device.params.tmr_half_bias_voltage for m in mtjs])
        self._gather_free = _Gather(self.free)
        self._gather_ref = _Gather(self.ref)
        # Conductance scatter: +g on the diagonals, −g on the couplings,
        # ground rows/columns dropped (mirrors MNAStamper.add_conductance).
        flat_parts: List[np.ndarray] = []
        sign_parts: List[np.ndarray] = []
        sel_parts: List[np.ndarray] = []
        for row, col, sign in ((self.free, self.free, 1.0),
                               (self.ref, self.ref, 1.0),
                               (self.free, self.ref, -1.0),
                               (self.ref, self.free, -1.0)):
            sel = np.nonzero((row >= 0) & (col >= 0))[0]
            flat_parts.append(row[sel] * size + col[sel])
            sign_parts.append(np.full(sel.shape, sign))
            sel_parts.append(sel)
        self.flat_index = np.concatenate(flat_parts)
        self.scatter_sign = np.concatenate(sign_parts)
        self.scatter_mtj = np.concatenate(sel_parts)
        self.free_sel = np.nonzero(self.free >= 0)[0]
        self.ref_sel = np.nonzero(self.ref >= 0)[0]
        self._ap_cache: Optional[np.ndarray] = None

    def _read_states(self) -> np.ndarray:
        return np.fromiter(
            (m.device.state is not MTJState.PARALLEL for m in self.mtjs),
            dtype=bool, count=len(self.mtjs))

    def refresh_states(self) -> None:
        """Snapshot the P/AP mask for the coming timepoint."""
        self._ap_cache = self._read_states()

    def invalidate_states(self) -> None:
        """Drop the snapshot (a switching event may have flipped state)."""
        self._ap_cache = None

    def _is_ap(self) -> np.ndarray:
        if self._ap_cache is not None:
            return self._ap_cache
        return self._read_states()

    def electrical(self, voltages: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bias, conductance and conductance derivative per junction."""
        v = self._gather_free(voltages) - self._gather_ref(voltages)
        av = np.abs(v)
        is_ap = self._is_ap()
        ratio = av / self.v_h
        denom = 1.0 + ratio * ratio
        r_ap = self.r_p * (1.0 + self.tmr0 / denom)
        g = np.where(is_ap, 1.0 / r_ap, 1.0 / self.r_p)
        dr_dv = (self.r_p * self.tmr0 * (-1.0 / (denom * denom))
                 * (2.0 * av / (self.v_h * self.v_h)))
        dg = np.where(is_ap, -dr_dv / (r_ap * r_ap), 0.0)
        return v, g, dg

    def stamp(self, matrix_flat: np.ndarray, rhs: np.ndarray,
              voltages: np.ndarray) -> None:
        """Scatter the linearised stamps of all junctions at once."""
        self.stamp_into(matrix_flat, self.flat_index, rhs, voltages)

    def stamp_into(self, target: np.ndarray, index: np.ndarray,
                   rhs: np.ndarray, voltages: np.ndarray) -> None:
        """Stamp with a caller-supplied slot mapping (see
        :meth:`_MOSFETGroup.stamp_into`)."""
        v, g, dg = self.electrical(voltages)
        g_eff = np.maximum(g + np.abs(v) * dg, 0.1 * g)
        const = g * v - g_eff * v
        np.add.at(target, index, self.scatter_sign * g_eff[self.scatter_mtj])
        np.add.at(rhs, self.free[self.free_sel], -const[self.free_sel])
        np.add.at(rhs, self.ref[self.ref_sel], const[self.ref_sel])


class _CapacitorGroup:
    """All capacitors of a circuit: static companion conductances plus a
    vectorised per-step RHS and state update."""

    def __init__(self, caps: List[Capacitor], dt: Optional[float],
                 integrator: str):
        self.caps = caps
        self.transient = dt is not None
        self.integrator = integrator
        self.pos = np.array([c.positive for c in caps], dtype=np.intp)
        self.neg = np.array([c.negative for c in caps], dtype=np.intp)
        capacitance = np.array([c.capacitance for c in caps])
        if self.transient:
            scale = 2.0 if integrator == "trap" else 1.0
            self.g = scale * capacitance / dt
        else:
            self.g = np.zeros(len(caps))
        self.i_prev = np.array([c._prev_current for c in caps])
        self._ieq = np.zeros(len(caps))
        self.pos_sel = np.nonzero(self.pos >= 0)[0]
        self.neg_sel = np.nonzero(self.neg >= 0)[0]
        self._gather_pos = _Gather(self.pos)
        self._gather_neg = _Gather(self.neg)

    def stamp_static(self, stamper: MNAStamper) -> None:
        if not self.transient:
            return
        for cap, g in zip(self.caps, self.g):
            stamper.add_conductance(cap.positive, cap.negative, float(g))

    def step_rhs(self, rhs: np.ndarray, prev_voltages: np.ndarray) -> None:
        """Norton companion currents for the timepoint (iterate-free)."""
        if not self.transient:
            return
        v_prev = self._gather_pos(prev_voltages) - self._gather_neg(prev_voltages)
        ieq = self.g * v_prev
        if self.integrator == "trap":
            ieq = ieq + self.i_prev
        self._ieq = ieq
        np.add.at(rhs, self.pos[self.pos_sel], ieq[self.pos_sel])
        np.add.at(rhs, self.neg[self.neg_sel], -ieq[self.neg_sel])

    def update_state(self, voltages: np.ndarray) -> None:
        """Advance the stored capacitor currents after an accepted step."""
        if not self.transient:
            return
        v_now = self._gather_pos(voltages) - self._gather_neg(voltages)
        self.i_prev = self.g * v_now - self._ieq

    def flush_to_devices(self) -> None:
        """Write the group's companion-current history back onto the
        devices (so another workspace — a recovery-ladder alternate at a
        different dt or engine — can pick the state up)."""
        for cap, current in zip(self.caps, self.i_prev):
            cap._prev_current = float(current)

    def reload_from_devices(self) -> None:
        """Re-read companion-current history from the devices."""
        self.i_prev = np.array([c._prev_current for c in self.caps])


class _RHSView(MNAStamper):
    """Stamper view that only exposes the RHS — used for ``stamp_step`` so
    a linear device violating the matrix-free contract fails loudly."""

    def __init__(self, num_nodes: int, num_branches: int, rhs: np.ndarray):
        self.num_nodes = num_nodes
        self.num_branches = num_branches
        self.matrix = None  # any matrix write raises immediately
        self.rhs = rhs


class MNAWorkspace:
    """Preallocated MNA system with cached static stamps for one run.

    The workspace is bound to a finalised circuit and one (dt, integrator)
    pair.  Assembly proceeds in three tiers:

    1. **static** — built once: linear-device matrix stamps
       (``stamp_static``); invariant across the whole analysis;
    2. **step**   — rebuilt once per timepoint: RHS of sources and
       capacitor companions (``stamp_step``), which depend on time and the
       previous accepted solution but not on the Newton iterate;
    3. **iterate** — rebuilt every Newton iteration: nonlinear device
       stamps (MOSFETs vectorised, MTJs and any other ``nonlinear``
       device through their ordinary ``stamp``).
    """

    def __init__(self, circuit: Circuit, dt: Optional[float] = None,
                 integrator: str = "be"):
        circuit.finalize()
        self.circuit = circuit
        self.dt = dt
        self.integrator = integrator
        self.num_nodes = circuit.num_nodes
        self.num_branches = circuit.num_branches
        self.size = self.num_nodes + self.num_branches

        self.matrix = np.zeros((self.size, self.size))
        self.rhs = np.zeros(self.size)
        self._matrix_flat = self.matrix.ravel()
        self._step_rhs = np.zeros(self.size)
        self._static_matrix = np.zeros((self.size, self.size))

        mtj_count = sum(1 for d in circuit.devices
                        if isinstance(d, MTJElement))
        vectorize_mtjs = mtj_count >= VECTORIZE_MTJ_THRESHOLD
        fets: List[MOSFET] = []
        mtjs: List[MTJElement] = []
        caps: List[Capacitor] = []
        self._linear_devices: List[Device] = []
        self._iterate_devices: List[Device] = []
        for device in circuit.devices:
            if isinstance(device, MOSFET):
                fets.append(device)
            elif vectorize_mtjs and isinstance(device, MTJElement):
                mtjs.append(device)
            elif isinstance(device, Capacitor):
                caps.append(device)
            elif device.nonlinear:
                self._iterate_devices.append(device)
            else:
                self._linear_devices.append(device)

        self.cap_group = _CapacitorGroup(caps, dt, integrator)
        if len(fets) >= VECTORIZE_MOSFET_THRESHOLD:
            self.fet_group: Optional[_MOSFETGroup] = _MOSFETGroup(fets, self.size)
        else:
            self.fet_group = None
            self._iterate_devices = fets + self._iterate_devices
        self.mtj_group: Optional[_MTJGroup] = (
            _MTJGroup(mtjs, self.size) if mtjs else None)

        self._build_static()
        # Reusable EvalContext scaffolding.
        self._time = 0.0
        self._prev_voltages: Optional[np.ndarray] = None

    # -- assembly tiers --------------------------------------------------------

    def _static_ctx(self) -> EvalContext:
        return EvalContext(voltages=np.zeros(self.num_nodes),
                           prev_voltages=None, time=0.0, dt=self.dt,
                           integrator=self.integrator)

    def _build_static(self) -> None:
        self._static_matrix[:, :] = 0.0
        stamper = MNAStamper(self.num_nodes, self.num_branches,
                             matrix=self._static_matrix,
                             rhs=np.zeros(self.size))
        ctx = self._static_ctx()
        for device in self._linear_devices:
            device.stamp_static(stamper, ctx)
        self.cap_group.stamp_static(stamper)

    def begin_step(self, time: float,
                   prev_voltages: Optional[np.ndarray]) -> None:
        """Rebuild the iterate-free RHS for a new timepoint."""
        self._time = time
        self._prev_voltages = prev_voltages
        self._step_rhs[:] = 0.0
        view = _RHSView(self.num_nodes, self.num_branches, self._step_rhs)
        ctx = EvalContext(voltages=np.zeros(0), prev_voltages=prev_voltages,
                          time=time, dt=self.dt, integrator=self.integrator)
        for device in self._linear_devices:
            device.stamp_step(view, ctx)
        self.cap_group.step_rhs(self._step_rhs, prev_voltages)
        if self.mtj_group is not None:
            self.mtj_group.refresh_states()

    def assemble(self, x: np.ndarray, gmin: float = 0.0,
                 timing: Optional[Dict[str, float]] = None) -> EvalContext:
        """Assemble matrix+RHS at the iterate ``x`` into the workspace
        buffers; returns the evaluation context used for the nonlinear
        stamps (handy for state updates).

        ``timing`` — optional dict accumulating per-device-class stamp
        seconds (observability detail; the solver passes
        ``stats.stamp_seconds`` while a tracing session is active and
        ``None`` otherwise, so the untraced path takes no clock reads).
        """
        t0 = _time.perf_counter() if timing is not None else 0.0
        np.copyto(self.matrix, self._static_matrix)
        np.copyto(self.rhs, self._step_rhs)
        if gmin > 0.0 and self.num_nodes:
            self._matrix_flat[: self.num_nodes * self.size + self.num_nodes
                              : self.size + 1] += gmin
        voltages = x[: self.num_nodes]
        ctx = EvalContext(voltages=voltages, prev_voltages=self._prev_voltages,
                          time=self._time, dt=self.dt, gmin=gmin,
                          integrator=self.integrator)
        if timing is not None:
            t1 = _time.perf_counter()
            timing["static_copy"] = timing.get("static_copy", 0.0) + (t1 - t0)
            t0 = t1
        if self.fet_group is not None:
            self.fet_group.stamp(self._matrix_flat, self.rhs, voltages)
            if timing is not None:
                t1 = _time.perf_counter()
                timing["MOSFETGroup"] = (timing.get("MOSFETGroup", 0.0)
                                         + (t1 - t0))
                t0 = t1
        if self.mtj_group is not None:
            self.mtj_group.stamp(self._matrix_flat, self.rhs, voltages)
            if timing is not None:
                t1 = _time.perf_counter()
                timing["MTJGroup"] = (timing.get("MTJGroup", 0.0)
                                      + (t1 - t0))
                t0 = t1
        if self._iterate_devices:
            view = MNAStamper(self.num_nodes, self.num_branches,
                              matrix=self.matrix, rhs=self.rhs)
            if timing is None:
                for device in self._iterate_devices:
                    device.stamp(view, ctx)
            else:
                for device in self._iterate_devices:
                    device.stamp(view, ctx)
                    t1 = _time.perf_counter()
                    key = type(device).__name__
                    timing[key] = timing.get(key, 0.0) + (t1 - t0)
                    t0 = t1
        return ctx

    def update_state(self, x: np.ndarray) -> None:
        """Advance stateful devices after an accepted timepoint."""
        voltages = x[: self.num_nodes]
        self.cap_group.update_state(voltages)
        ctx = EvalContext(voltages=voltages, prev_voltages=self._prev_voltages,
                          time=self._time, dt=self.dt,
                          integrator=self.integrator)
        for device in self._iterate_devices:
            device.update_state(ctx)
        if self.fet_group is not None:
            for device in self.fet_group.fets:
                device.update_state(ctx)
        if self.mtj_group is not None:
            for device in self.mtj_group.mtjs:
                device.update_state(ctx)
            self.mtj_group.invalidate_states()
        for device in self._linear_devices:
            device.update_state(ctx)

    # -- recovery-ladder state exchange -----------------------------------

    def flush_state(self) -> None:
        """Push workspace-held device state (capacitor companion
        currents) back onto the devices, making this workspace's view of
        the circuit visible to other workspaces.  MTJ and iterate-device
        state already lives on the devices themselves."""
        self.cap_group.flush_to_devices()

    def reload_state(self) -> None:
        """Re-read device state after another workspace advanced it (the
        inverse of :meth:`flush_state`)."""
        self.cap_group.reload_from_devices()
        if self.mtj_group is not None:
            self.mtj_group.invalidate_states()


class FastNewtonSolver:
    """Damped modified Newton over an :class:`MNAWorkspace`.

    The Jacobian LU factorisation is reused across iterations: only the
    residual ``F(x) = A(x)·x − b(x)`` is refreshed, and the update solves
    ``A₀·δ = −F(x)`` against the frozen factorisation.  The factorisation
    is renewed automatically when the update stops shrinking (slow
    convergence) or after :data:`JACOBIAN_MAX_AGE` iterations.
    """

    def __init__(self, workspace: MNAWorkspace, jacobian_reuse: bool = True,
                 stats: Optional[SolverStats] = None):
        self.workspace = workspace
        self.jacobian_reuse = jacobian_reuse and _HAVE_SCIPY
        self._lu = None
        #: Work counters, shared with the caller when one is passed in
        #: (``run_transient`` aggregates them across every timestep).
        self.stats = stats if stats is not None else SolverStats()
        #: Optional :class:`~repro.recovery.health.ConditionProbe`
        #: (duck-typed — this module never imports the recovery package);
        #: probed on fresh factorisations, interval-gated by the probe.
        self.condition_probe = None

    def _factorize(self) -> None:
        # Raw LAPACK getrf: skips the scipy wrapper overhead (asarray +
        # finiteness checks) that showed up in per-iteration profiles.
        self.stats.factorizations += 1
        lu, piv, info = _getrf(self.workspace.matrix)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"LU factorisation failed (getrf info={info})")
        self._lu = (lu, piv)
        if self.condition_probe is not None:
            matrix = self.workspace.matrix
            self.condition_probe.after_factorization(
                lambda b: _getrs(lu, piv, b)[0],
                lambda b: _getrs(lu, piv, b, trans=1)[0],
                lambda: (float(np.abs(matrix).sum(axis=0).max())
                         if matrix.size else 0.0),
                self.workspace.size)

    def _delta(self, x: np.ndarray, fresh: bool) -> np.ndarray:
        """Newton update −A₀⁻¹·F(x) from the workspace's assembled system."""
        ws = self.workspace
        if not self.jacobian_reuse:
            self.stats.factorizations += 1  # full dense solve, no reuse
            return np.linalg.solve(ws.matrix, ws.rhs) - x
        if fresh or self._lu is None:
            self._factorize()
        else:
            self.stats.reuses += 1
        residual = ws.matrix @ x - ws.rhs
        lu, piv = self._lu
        delta, info = _getrs(lu, piv, residual)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"LU solve failed (getrs info={info})")
        return -delta

    def solve(self, x0: np.ndarray, time: float,
              prev_voltages: Optional[np.ndarray], gmin: float,
              max_iterations: int, vtol: float, damping: float) -> np.ndarray:
        """One converged Newton solve at a timepoint (same contract as the
        naive ``_newton``: raises :class:`ConvergenceError` on failure)."""
        ws = self.workspace
        ws.begin_step(time, prev_voltages)
        num_nodes = ws.num_nodes
        stats = self.stats
        timing = stats.stamp_seconds if _obs_active() else None
        x = x0.copy()
        last_factor = 0
        prev_max_dv = np.inf
        max_dv = np.inf
        for iteration in range(1, max_iterations + 1):
            stats.iterations += 1
            ws.assemble(x, gmin=gmin, timing=timing)
            stale = iteration - last_factor
            refresh = (stale >= JACOBIAN_MAX_AGE
                       or (stale >= 1 and max_dv > 0.5 * prev_max_dv))
            try:
                delta = self._delta(x, fresh=refresh or iteration == 1)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"singular MNA matrix at gmin={gmin:g} "
                    f"(iteration {iteration})",
                    iterations=iteration,
                ) from exc
            if refresh or iteration == 1:
                last_factor = iteration
            if not np.all(np.isfinite(delta)):
                if iteration - last_factor > 0:
                    # Stale factorisation went bad: refactor and retry once.
                    stats.singular_retries += 1
                    self._factorize()
                    last_factor = iteration
                    delta = self._delta(x, fresh=False)
                if not np.all(np.isfinite(delta)):
                    raise ConvergenceError(
                        f"singular MNA matrix at gmin={gmin:g} "
                        f"(iteration {iteration})",
                        iterations=iteration,
                    )

            prev_max_dv = max_dv
            dv = delta[:num_nodes]
            max_dv = float(np.max(np.abs(dv))) if num_nodes else 0.0
            if max_dv > damping:
                x = x + delta * (damping / max_dv)
            else:
                x = x + delta
                if max_dv < vtol:
                    stats.solves += 1
                    return x
        raise ConvergenceError(
            f"Newton failed to converge in {max_iterations} iterations "
            f"(gmin={gmin:g}, last max dV={max_dv:g})",
            iterations=max_iterations,
            residual=max_dv,
            state=x.copy(),
        )
