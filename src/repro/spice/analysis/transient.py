"""Fixed-step transient analysis.

The driver advances the circuit with a fixed timestep, solving a damped
Newton iteration at each timepoint (companion models supplied by the
capacitors) and then letting stateful devices advance
(:meth:`Device.update_state` — capacitor current history, MTJ switching
progress).

Integrator choice: ``"be"`` (backward Euler, default — numerically
damped, very robust for the strongly nonlinear latch circuits) or
``"trap"`` (trapezoidal — second order, used by the accuracy tests on RC
circuits).

The initial condition comes from a DC solve at ``t = 0`` unless explicit
node voltages are given (``initial_voltages``), which is how power-gated
starts (everything at 0 V) are modelled.

Engine selection: ``engine="fast"`` (the default) runs the cached-assembly
modified-Newton engine of :mod:`repro.spice.analysis.engine`;
``engine="naive"`` keeps the legacy re-stamp-everything path;
``engine="sparse"`` runs the CSC/SuperLU core of
:mod:`repro.spice.analysis.sparse` (symbolic-pattern reuse, optional
LTE-adaptive timestep via ``adaptive=True``).  All engines are
equivalent to ≤ 1 µV on every node waveform (enforced by
``tests/test_engine_equivalence.py`` and
``tests/test_engine_differential.py``); the fast path is typically 2–4×
faster than naive on the latch circuits, and sparse wins further with
node count.  ``set_default_engine`` switches the session-wide default
(used by benchmarks to time the paths through code that does not thread
the ``engine`` argument).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

import numpy as np

from repro.errors import AnalysisError, ConvergenceError, suggest_names
from repro.obs import is_active as _obs_active
from repro.obs import metrics as _obs_metrics
from repro.obs import span as _obs_span
from repro.spice.devices.sources import VoltageSource
from repro.spice.analysis.dc import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_VTOL,
    FLOOR_GMIN,
    solve_dc,
)
from repro.spice.netlist import Circuit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recovery.health import SolverHealth
    from repro.spice.analysis.engine import SolverStats

#: Engines accepted by :func:`run_transient`.
ENGINES = ("fast", "naive", "sparse")

#: Session-wide default engine (see :func:`set_default_engine`).
_default_engine = "fast"


def set_default_engine(name: str) -> str:
    """Set the engine used when ``run_transient(engine=None)``; returns the
    previous default so callers can restore it."""
    global _default_engine
    if name not in ENGINES:
        raise AnalysisError(f"unknown engine {name!r}; expected one of {ENGINES}")
    previous = _default_engine
    _default_engine = name
    return previous


def get_default_engine() -> str:
    """The engine currently used when ``run_transient(engine=None)``."""
    return _default_engine


@dataclass
class TransientResult:
    """Sampled waveforms of a transient run."""

    circuit: Circuit
    times: np.ndarray
    node_voltages: np.ndarray  # shape (steps, num_nodes)
    branch_currents: np.ndarray  # shape (steps, num_branches)
    #: Engine work counters for this run (Newton iterations, Jacobian
    #: factorisations vs reuses, ...) — the same totals the
    #: observability registry receives, so traced campaigns can check
    #: one against the other.
    stats: Optional["SolverStats"] = None
    #: Adaptive runs only: the sequence of accepted internal step sizes
    #: [s] (``None`` for fixed-step runs).  Pinned by the dt-trace golden
    #: file so step-selection changes are visible in review.
    dt_trace: Optional[np.ndarray] = None
    #: Resilience record for this run (recovery-ladder rungs climbed,
    #: condition-probe results, guard trips); ``health.clean`` is True
    #: for a run that never needed the ladder.  Round-tripped through
    #: the result cache.
    health: Optional["SolverHealth"] = None

    def voltage(self, node_name: str) -> np.ndarray:
        """Waveform of a node voltage [V].

        Ground aliases read as a zero waveform; any other name that is not
        a node of the simulated circuit raises :class:`AnalysisError`
        (misspelled probe names used to silently read as zeros).
        """
        if not self.circuit.has_node(node_name):
            raise AnalysisError(
                f"no node named {node_name!r} in circuit {self.circuit.name!r}"
                + suggest_names(node_name, self.circuit.node_names)
            )
        index = self.circuit.node(node_name)
        if index < 0:
            return np.zeros_like(self.times)
        return self.node_voltages[:, index]

    def source_current(self, source_name: str) -> np.ndarray:
        """Branch-current waveform of a voltage source [A]."""
        device = self.circuit.device(source_name)
        if not isinstance(device, VoltageSource):
            raise AnalysisError(f"{source_name!r} is not a voltage source")
        return self.branch_currents[:, device.branch_index]

    def sample(self, node_name: str, time: float) -> float:
        """Linearly interpolated node voltage at an arbitrary time."""
        return float(np.interp(time, self.times, self.voltage(node_name)))

    def final_voltage(self, node_name: str) -> float:
        """Node voltage at the last timepoint."""
        return float(self.voltage(node_name)[-1])

    def window(self, t0: float, t1: float) -> np.ndarray:
        """Boolean mask selecting samples with t0 ≤ t ≤ t1."""
        if t1 < t0:
            raise AnalysisError(f"empty window [{t0}, {t1}]")
        return (self.times >= t0) & (self.times <= t1)


def run_transient(
    circuit: Circuit,
    stop_time: float,
    dt: float,
    integrator: str = "be",
    initial_voltages: Optional[Dict[str, float]] = None,
    dc_seed: Optional[Dict[str, float]] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    vtol: float = DEFAULT_VTOL,
    damping: float = DEFAULT_DAMPING,
    on_step: Optional[Callable[[float, np.ndarray], None]] = None,
    engine: Optional[str] = None,
    lint: str = "error",
    timeout: Optional[float] = None,
    adaptive: bool = False,
    lte_tol: Optional[float] = None,
    max_dt_factor: Optional[int] = None,
    recovery=None,
) -> TransientResult:
    """Simulate from 0 to ``stop_time`` with step ``dt``.

    * ``initial_voltages`` — skip the DC solve and start every listed node
      at the given voltage (others at 0 V): models a cold power-up.
    * ``dc_seed`` — initial guess handed to the t=0 DC solve (selects the
      branch of bistable circuits).
    * ``on_step(time, node_voltages)`` — observer hook.
    * ``engine`` — ``"fast"``, ``"naive"`` or ``"sparse"``; ``None`` uses
      the session default (see :func:`set_default_engine`).
    * ``adaptive`` — LTE-controlled internal timestep (``engine="sparse"``
      with the ``be`` integrator only); ``dt`` becomes the base step of
      the dt ladder and the output stays sampled on the fixed ``k·dt``
      grid.  ``lte_tol``/``max_dt_factor`` tune the controller (defaults
      from :mod:`repro.spice.analysis.sparse`).
    * ``lint`` — ERC pre-flight mode (``"error"``/``"warn"``/``"off"``):
      structurally broken circuits (floating nodes, supply loops, ...)
      raise a :class:`~repro.errors.NetlistError` naming the root-cause
      diagnostic instead of failing later as a Newton non-convergence.
    * ``timeout`` — wall-clock budget [s] for the whole run; crossing it
      raises :class:`~repro.errors.ConvergenceError` carrying the last
      accepted solution vector as ``state`` and the simulated time
      reached, so fault-injected pathological circuits abort promptly
      instead of grinding through every remaining Newton iteration.
    * ``recovery`` — optional
      :class:`~repro.recovery.policy.RecoveryPolicy` configuring the
      solver-resilience ladder (gmin / damping / timestep-cut /
      integrator-switch / engine-fallback escalation on failed steps,
      condition probes, forensics).  The policy fingerprint is part of
      the cache key; recovered results are bit-identical across worker
      counts and cache replays.
    """
    if stop_time <= 0.0 or dt <= 0.0:
        raise AnalysisError("stop_time and dt must be positive")
    if timeout is not None and timeout <= 0.0:
        raise AnalysisError(f"timeout must be positive, got {timeout}")
    deadline = None if timeout is None else _time.monotonic() + timeout
    if dt > stop_time:
        raise AnalysisError(f"dt={dt} exceeds stop_time={stop_time}")
    if integrator not in ("be", "trap"):
        raise AnalysisError(f"unknown integrator {integrator!r}")
    if engine is None:
        engine = _default_engine
    if engine not in ENGINES:
        raise AnalysisError(f"unknown engine {engine!r}; expected one of {ENGINES}")

    from repro.spice.analysis.sparse import (
        DEFAULT_LTE_TOL,
        DEFAULT_MAX_DT_FACTOR,
    )

    if adaptive:
        if engine != "sparse":
            raise AnalysisError(
                f"adaptive timestep control requires engine='sparse' "
                f"(got engine={engine!r})")
        if integrator != "be":
            raise AnalysisError(
                "adaptive timestep control supports the 'be' integrator "
                f"only (got {integrator!r})")
    if lte_tol is None:
        lte_tol = DEFAULT_LTE_TOL
    if max_dt_factor is None:
        max_dt_factor = DEFAULT_MAX_DT_FACTOR

    from repro.lint import preflight

    preflight(circuit, lint)

    from repro.recovery.policy import DEFAULT_POLICY

    policy = DEFAULT_POLICY if recovery is None else recovery

    # Content-addressed result cache (repro.cache): when active, a
    # byte-identical prior run is returned directly — waveforms, stats
    # and MTJ end state — without entering the Newton loop.  An on_step
    # observer makes the run side-effecting, so it always computes.
    cache_handle = None
    if on_step is None:
        from repro.cache.analysis import transient_handle

        cache_handle = transient_handle(
            circuit, stop_time=stop_time, dt=dt, integrator=integrator,
            initial_voltages=initial_voltages, dc_seed=dc_seed,
            max_iterations=max_iterations, vtol=vtol, damping=damping,
            engine=engine,
            adaptive={"adaptive": adaptive, "lte_tol": lte_tol,
                      "max_dt_factor": max_dt_factor}
            if engine == "sparse" else None,
            recovery=policy)
        if cache_handle is not None:
            cached = cache_handle.lookup()
            if cached is not None:
                return cached

    from repro.spice.analysis.engine import SolverStats

    run_span = _obs_span(
        "analysis.transient", category="analysis",
        attrs={"circuit": circuit.name, "engine": engine, "dt": dt,
               "stop_time": stop_time})
    stats = SolverStats()

    with run_span:
        circuit.finalize()
        circuit.reset_state()
        num_nodes = circuit.num_nodes
        size = num_nodes + circuit.num_branches

        if initial_voltages is not None:
            x = np.zeros(size)
            for node_name, value in initial_voltages.items():
                index = circuit.node(node_name)
                if index >= 0:
                    x[index] = value
        else:
            remaining = None
            if deadline is not None:
                remaining = max(deadline - _time.monotonic(), 1e-3)
            dc = solve_dc(circuit, time=0.0, initial_guess=dc_seed,
                          max_iterations=max_iterations, vtol=vtol,
                          damping=damping, lint="off",  # already pre-flighted
                          timeout=remaining, recovery=policy)
            x = np.concatenate([dc.voltages, dc.branch_currents])

        if adaptive:
            from repro.spice.analysis.sparse import run_adaptive_transient

            times, voltages, currents, dt_trace, health = \
                run_adaptive_transient(
                    circuit, x, stop_time, dt, integrator, max_iterations,
                    vtol, damping, FLOOR_GMIN, stats, lte_tol=lte_tol,
                    max_dt_factor=max_dt_factor, deadline=deadline,
                    timeout=timeout, on_step=on_step, policy=policy)
            if _obs_active():
                stats.flush_to(_obs_metrics())
                health.flush_to(_obs_metrics())
                _obs_metrics().inc("analysis.transients", 1)
                run_span.annotate(**stats.as_attrs())
            result = TransientResult(circuit, times, voltages, currents,
                                     stats=stats, dt_trace=dt_trace,
                                     health=health)
            if cache_handle is not None:
                cache_handle.store(result)
            return result

        steps = int(round(stop_time / dt))
        times = np.empty(steps + 1)
        voltages = np.empty((steps + 1, num_nodes))
        currents = np.empty((steps + 1, circuit.num_branches))

        times[0] = 0.0
        voltages[0] = x[:num_nodes]
        currents[0] = x[num_nodes:]

        # Per-step advancement (solve + settle) including the recovery
        # ladder lives in the stepper; the loop below only records.  The
        # stepper's gmin rung replaces the strong-gmin retry that used to
        # be duplicated (hard-coded 1e-9) across the engine branches.
        from repro.recovery.ladder import TransientStepper

        with _obs_span("engine.workspace_build", category="engine",
                       attrs={"circuit": circuit.name,
                              "engine": engine}):
            stepper = TransientStepper(
                circuit, engine, dt, integrator, max_iterations, vtol,
                damping, stats, FLOOR_GMIN, policy=policy)

        loop_span = _obs_span("engine.timestep_loop", category="engine",
                              attrs={"engine": engine, "steps": steps})
        with loop_span:
            prev_nodes = x[:num_nodes].copy()
            for step in range(1, steps + 1):
                time = step * dt
                if deadline is not None and _time.monotonic() > deadline:
                    raise ConvergenceError(
                        f"transient of {circuit.name!r} exceeded its "
                        f"{timeout:g} s wall-clock timeout at t={time - dt:g} "
                        f"s (step {step - 1}/{steps})",
                        iterations=step - 1, state=x.copy(),
                    )
                x = stepper.advance(x, time, prev_nodes)
                stats.timesteps += 1

                times[step] = time
                voltages[step] = x[:num_nodes]
                currents[step] = x[num_nodes:]
                prev_nodes = x[:num_nodes].copy()
                if on_step is not None:
                    on_step(time, voltages[step])
            if _obs_active():
                loop_span.annotate(**stats.as_attrs())

        if _obs_active():
            stats.flush_to(_obs_metrics())
            stepper.health.flush_to(_obs_metrics())
            _obs_metrics().inc("analysis.transients", 1)
            run_span.annotate(**stats.as_attrs())

        result = TransientResult(circuit, times, voltages, currents,
                                 stats=stats, health=stepper.health)
        if cache_handle is not None:
            cache_handle.store(result)
        return result
