"""Batched transient analysis of Monte-Carlo ensembles.

A Monte-Carlo study runs the *same topology* N times with only the MTJ
parameter values varying between samples.  The per-sample cost of the
scalar engines is dominated by Python-level work (stamp loops, Newton
bookkeeping, one small LAPACK call per iteration) that is identical
across samples.  This module advances **all N samples together**:

* :class:`EnsembleWorkspace` stacks the N MNA systems into ``(N, s, s)``
  / ``(N, s)`` arrays.  The static tier is stamped once (samples share
  their linear sub-circuit when the device fingerprints agree, which
  Monte-Carlo populations do) and the per-iteration tier is evaluated
  with numpy over the sample axis: one vectorised EKV evaluation for all
  transistors of all samples, one vectorised TMR/STT evaluation for all
  junctions of all samples.
* :class:`EnsembleNewtonSolver` performs the damped Newton update as a
  single **block-diagonal batched solve** — ``numpy.linalg.solve`` over
  the ``(N, s, s)`` stack — with per-sample damping and convergence
  masks.  Samples that converge early are frozen at their accepted
  iterate; the block-diagonal structure makes each sample's update
  independent, so freezing cannot perturb the others.
* :func:`run_ensemble_transient` drives the fixed-step loop and returns
  one ordinary :class:`~repro.spice.analysis.transient.TransientResult`
  per sample.  Per-timestep non-convergence first retries the failing
  samples with a strong gmin (the scalar drivers' policy); if the batch
  still cannot converge — or a sample's matrix goes singular — the whole
  call falls back to per-sample scalar transients, so robustness equals
  the scalar path's.

Determinism: the result depends only on the list of circuits passed in —
there is no worker count, scheduling, or RNG anywhere in the batched
path — so chunked parallel evaluation over a fixed partition is
bit-identical for any pool size (``tests/test_parallel.py``).

Ensemble runs are not routed through the content-addressed result cache:
the unit of caching is one circuit, and slicing N-sample batches into
per-sample entries would make the batch result depend on which samples
hit.  Callers who want caching per sample use the scalar engines.

Waveform contract (``tests/test_sparse_engine.py``): each sample's
ensemble waveform matches its scalar ``engine="fast"`` waveform to
≤ 1 µV, and final MTJ states/switching events are written back to the
sample circuits exactly as the scalar path leaves them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError, CacheError, ConvergenceError
from repro.obs import is_active as _obs_active
from repro.obs import metrics as _obs_metrics
from repro.obs import span as _obs_span
from repro.mtj.device import MTJState
from repro.mtj.dynamics import SwitchingEvent
from repro.spice.devices.base import Device, EvalContext
from repro.spice.devices.mosfet import MOSFET
from repro.spice.devices.mtj_element import MTJElement
from repro.spice.devices.passive import Capacitor
from repro.spice.analysis.engine import SolverStats, _MOSFETGroup
from repro.spice.analysis.mna import MNAStamper
from repro.spice.analysis.sparse import structure_signature
from repro.spice.analysis.dc import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_VTOL,
    FLOOR_GMIN,
    solve_dc,
)
from repro.spice.netlist import Circuit

#: Default number of samples advanced per batched workspace.  Chunking is
#: a *fixed* partition of the sample list (never derived from the worker
#: count), which is what keeps chunked parallel runs bit-identical to
#: serial ones.
ENSEMBLE_CHUNK = 32


class EnsembleFallback(Exception):
    """Internal: the batched path cannot continue; callers rerun the
    affected samples through the scalar engine."""


def _recovery_gmin_ladder() -> tuple:
    """Gmin retry conductances shared with the scalar engines' recovery
    ladder (:data:`repro.recovery.policy.DEFAULT_POLICY`)."""
    from repro.recovery.policy import DEFAULT_POLICY

    return DEFAULT_POLICY.gmin_ladder


def _gather2(voltages: np.ndarray, clipped: np.ndarray,
             mask: np.ndarray) -> np.ndarray:
    """Per-sample node gather: ``voltages`` is (N, s); returns (N, M)
    with ground indices reading 0 V."""
    return voltages.take(clipped, axis=1) * mask


class _IndexPlan:
    """Precomputed flat scatter indices of a (row, col, sign) stamp set,
    replicated across the sample axis at stamp time via the per-sample
    flat offsets."""

    def __init__(self, rows: np.ndarray, cols: np.ndarray,
                 signs: np.ndarray, sel: np.ndarray, size: int):
        keep = (rows >= 0) & (cols >= 0)
        self.flat = (rows[keep] * size + cols[keep]).astype(np.intp)
        self.sign = signs[keep]
        self.sel = sel[keep]


class _EnsembleCapacitors:
    """All capacitors of all samples: vectorised companion stamps."""

    def __init__(self, per_sample: List[List[Capacitor]],
                 size: int, dt: float, integrator: str):
        caps0 = per_sample[0]
        count = len(caps0)
        self.integrator = integrator
        self.pos = np.array([c.positive for c in caps0], dtype=np.intp)
        self.neg = np.array([c.negative for c in caps0], dtype=np.intp)
        capacitance = np.array([[c.capacitance for c in caps]
                                for caps in per_sample])
        scale = 2.0 if integrator == "trap" else 1.0
        self.g = scale * capacitance / dt
        self.i_prev = np.array([[c._prev_current for c in caps]
                                for caps in per_sample])
        self._ieq = np.zeros_like(self.g)
        self._pos_clip = np.clip(self.pos, 0, None)
        self._pos_mask = (self.pos >= 0).astype(float)
        self._neg_clip = np.clip(self.neg, 0, None)
        self._neg_mask = (self.neg >= 0).astype(float)
        idx = np.arange(count, dtype=np.intp)
        ones = np.ones(count)
        self._mat = [
            _IndexPlan(self.pos, self.pos, ones, idx, size),
            _IndexPlan(self.neg, self.neg, ones, idx, size),
            _IndexPlan(self.pos, self.neg, -ones, idx, size),
            _IndexPlan(self.neg, self.pos, -ones, idx, size),
        ]
        self.pos_sel = np.nonzero(self.pos >= 0)[0]
        self.neg_sel = np.nonzero(self.neg >= 0)[0]

    def stamp_static(self, static: np.ndarray, offsets: np.ndarray) -> None:
        """Companion conductances into the stacked static matrices."""
        flat = static.reshape(-1)
        for plan in self._mat:
            if plan.flat.size == 0:
                continue
            np.add.at(flat, offsets[:, None] + plan.flat[None, :],
                      plan.sign[None, :] * self.g[:, plan.sel])

    def step_rhs(self, rhs: np.ndarray, prev: np.ndarray) -> None:
        v_prev = (_gather2(prev, self._pos_clip, self._pos_mask)
                  - _gather2(prev, self._neg_clip, self._neg_mask))
        ieq = self.g * v_prev
        if self.integrator == "trap":
            ieq = ieq + self.i_prev
        self._ieq = ieq
        flat = rhs.reshape(-1)
        offsets = np.arange(rhs.shape[0], dtype=np.intp) * rhs.shape[1]
        if self.pos_sel.size:
            np.add.at(flat,
                      offsets[:, None] + self.pos[self.pos_sel][None, :],
                      ieq[:, self.pos_sel])
        if self.neg_sel.size:
            np.add.at(flat,
                      offsets[:, None] + self.neg[self.neg_sel][None, :],
                      -ieq[:, self.neg_sel])

    def update_state(self, voltages: np.ndarray) -> None:
        v_now = (_gather2(voltages, self._pos_clip, self._pos_mask)
                 - _gather2(voltages, self._neg_clip, self._neg_mask))
        self.i_prev = self.g * v_now - self._ieq


class _EnsembleMOSFETs:
    """All transistors of all samples: one EKV evaluation over (N, F).

    Scatter geometry comes from a :class:`_MOSFETGroup` built on sample 0
    (the topology is shared); parameters are stacked per sample so the
    class stays correct even for populations that vary transistor
    parameters.
    """

    def __init__(self, per_sample: List[List[MOSFET]], size: int):
        self.group0 = _MOSFETGroup(per_sample[0], size)
        self.sign = np.array([[f.model.sign for f in fets]
                              for fets in per_sample])
        self.vth0 = np.array([[f.model.vth0 for f in fets]
                              for fets in per_sample])
        self.slope = np.array([[f.model.slope_factor for f in fets]
                               for fets in per_sample])
        self.lam = np.array([[f.model.lambda_clm for f in fets]
                             for fets in per_sample])
        self.two_vt = np.array([[2.0 * f.model.thermal_volt for f in fets]
                                for fets in per_sample])
        self.i_spec = np.array(
            [[f.model.specific_current(f.width, f.length) for f in fets]
             for fets in per_sample])
        g = self.group0
        self._clip = {k: (np.clip(v, 0, None), (v >= 0).astype(float))
                      for k, v in (("d", g.drain), ("g", g.gate),
                                   ("s", g.source), ("b", g.bulk))}

    def stamp(self, matrix_flat: np.ndarray, mat_offsets: np.ndarray,
              rhs_flat: np.ndarray, rhs_offsets: np.ndarray,
              voltages: np.ndarray) -> None:
        from repro.spice.analysis.engine import _CLM_EPSILON

        g0 = self.group0
        vd = _gather2(voltages, *self._clip["d"])
        vg = _gather2(voltages, *self._clip["g"])
        vs = _gather2(voltages, *self._clip["s"])
        vb = _gather2(voltages, *self._clip["b"])

        sigma = self.sign
        vdp, vgp = sigma * vd, sigma * vg
        vsp, vbp = sigma * vs, sigma * vb
        vp_pinch = (vgp - vbp - self.vth0) / self.slope
        u_f = vp_pinch - (vsp - vbp)
        u_r = vp_pinch - (vdp - vbp)

        f_f, df_f = g0._interp(u_f / self.two_vt)
        f_r, df_r = g0._interp(u_r / self.two_vt)
        df_f = df_f / self.two_vt
        df_r = df_r / self.two_vt

        delta_i = f_f - f_r
        vds_p = vdp - vsp
        root = np.sqrt(vds_p * vds_p + _CLM_EPSILON * _CLM_EPSILON)
        h = root - _CLM_EPSILON
        m = 1.0 + self.lam * h
        dm_dvds = self.lam * vds_p / root

        i_drain = sigma * (self.i_spec * delta_i * m)
        gate_term = self.i_spec * m * (df_f - df_r)
        partials = np.stack([
            self.i_spec * (m * df_r + delta_i * dm_dvds),   # d
            gate_term / self.slope,                         # g
            self.i_spec * (-m * df_f - delta_i * dm_dvds),  # s
            gate_term * (1.0 - 1.0 / self.slope),           # b
        ])
        const = i_drain - (partials[0] * vd + partials[1] * vg
                           + partials[2] * vs + partials[3] * vb)

        # (K, N) values per scatter slot, replicated over sample offsets.
        vals = partials[g0.scatter_k, :, g0.scatter_fet]
        vals = g0.scatter_sign[:, None] * vals
        np.add.at(matrix_flat,
                  mat_offsets[:, None] + g0.flat_index[None, :], vals.T)
        if g0.drain_sel.size:
            np.add.at(rhs_flat,
                      rhs_offsets[:, None]
                      + g0.drain[g0.drain_sel][None, :],
                      -const[:, g0.drain_sel])
        if g0.source_sel.size:
            np.add.at(rhs_flat,
                      rhs_offsets[:, None]
                      + g0.source[g0.source_sel][None, :],
                      const[:, g0.source_sel])


class _EnsembleMTJs:
    """All junctions of all samples: vectorised TMR electrical model and
    STT switching integration, matching :class:`MTJElement` /
    :class:`~repro.mtj.dynamics.SwitchingModel` value-for-value."""

    def __init__(self, per_sample: List[List[MTJElement]], size: int):
        mtjs0 = per_sample[0]
        count = len(mtjs0)
        self.elements = per_sample
        self.free = np.array([m.free for m in mtjs0], dtype=np.intp)
        self.ref = np.array([m.ref for m in mtjs0], dtype=np.intp)
        self.rp = np.array([[m.device.params.resistance_p for m in row]
                            for row in per_sample])
        self.tmr0 = np.array([[m.device.params.tmr_zero_bias for m in row]
                              for row in per_sample])
        self.vh = np.array(
            [[m.device.params.tmr_half_bias_voltage for m in row]
             for row in per_sample])
        self.ic = np.array([[m.device.params.critical_current for m in row]
                            for row in per_sample])
        self.delta = np.array(
            [[m.device.params.thermal_stability for m in row]
             for row in per_sample])
        self.attempt = np.array([[m.device.params.attempt_time for m in row]
                                 for row in per_sample])
        self.q_dyn = np.array(
            [[m.switching.dynamic_charge if m.switching is not None else 0.0
              for m in row] for row in per_sample])
        self.has_switching = np.array(
            [m.switching is not None for m in mtjs0])
        self.is_ap = np.array(
            [[m.device.state is MTJState.ANTIPARALLEL for m in row]
             for row in per_sample])
        self.progress = np.array(
            [[m.switching.progress if m.switching is not None else 0.0
              for m in row] for row in per_sample])
        self._events: List[Tuple[int, int, SwitchingEvent]] = []

        self._free_clip = np.clip(self.free, 0, None)
        self._free_mask = (self.free >= 0).astype(float)
        self._ref_clip = np.clip(self.ref, 0, None)
        self._ref_mask = (self.ref >= 0).astype(float)
        idx = np.arange(count, dtype=np.intp)
        ones = np.ones(count)
        self._mat = [
            _IndexPlan(self.free, self.free, ones, idx, size),
            _IndexPlan(self.ref, self.ref, ones, idx, size),
            _IndexPlan(self.free, self.ref, -ones, idx, size),
            _IndexPlan(self.ref, self.free, -ones, idx, size),
        ]
        self.free_sel = np.nonzero(self.free >= 0)[0]
        self.ref_sel = np.nonzero(self.ref >= 0)[0]

    def _electrical(self, voltages: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bias v, conductance G(|v|), and dG/d|v| per (sample, mtj)."""
        v = (_gather2(voltages, self._free_clip, self._free_mask)
             - _gather2(voltages, self._ref_clip, self._ref_mask))
        av = np.abs(v)
        ratio = av / self.vh
        denom = 1.0 + ratio * ratio
        r_ap = self.rp * (1.0 + self.tmr0 / denom)
        r = np.where(self.is_ap, r_ap, self.rp)
        g = 1.0 / r
        dr_dv = self.rp * self.tmr0 * (-1.0 / (denom * denom)) * (
            2.0 * av / (self.vh * self.vh))
        dg = np.where(self.is_ap, -dr_dv / (r_ap * r_ap), 0.0)
        return v, g, dg

    def stamp(self, matrix_flat: np.ndarray, mat_offsets: np.ndarray,
              rhs_flat: np.ndarray, rhs_offsets: np.ndarray,
              voltages: np.ndarray) -> None:
        v, g, dg = self._electrical(voltages)
        g_eff = np.maximum(g + np.abs(v) * dg, 0.1 * g)
        const = g * v - g_eff * v
        for plan in self._mat:
            if plan.flat.size == 0:
                continue
            np.add.at(matrix_flat,
                      mat_offsets[:, None] + plan.flat[None, :],
                      plan.sign[None, :] * g_eff[:, plan.sel])
        if self.free_sel.size:
            np.add.at(rhs_flat,
                      rhs_offsets[:, None] + self.free[self.free_sel][None, :],
                      -const[:, self.free_sel])
        if self.ref_sel.size:
            np.add.at(rhs_flat,
                      rhs_offsets[:, None] + self.ref[self.ref_sel][None, :],
                      const[:, self.ref_sel])

    def update_state(self, voltages: np.ndarray, dt: float,
                     now: float) -> None:
        """Vectorised :meth:`SwitchingModel.step` over every junction."""
        if not self.has_switching.any():
            return
        v, g, _dg = self._electrical(voltages)
        current = g * v
        target_ap = current > 0.0
        moving = ((current != 0.0) & (target_ap != self.is_ap)
                  & self.has_switching[None, :])
        mag = np.abs(current)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            overdrive = mag - self.ic
            t_prec = np.where(overdrive > 0.0, self.q_dyn
                              / np.where(overdrive > 0.0, overdrive, 1.0),
                              np.inf)
            exponent = np.minimum(
                self.delta * (1.0 - mag / self.ic), 700.0)
            t_therm = self.attempt * np.exp(exponent)
            t_sw = np.where(mag > self.ic, t_prec, t_therm)
            gained = np.where(moving, dt / t_sw, 0.0)
        relaxing = self.has_switching[None, :] & ~moving
        decay = np.exp(-dt / self.attempt)
        self.progress = np.where(relaxing, self.progress * decay,
                                 self.progress + gained)
        flipped = moving & (self.progress >= 1.0)
        if flipped.any():
            for n, m in np.argwhere(flipped):
                state = (MTJState.ANTIPARALLEL if target_ap[n, m]
                         else MTJState.PARALLEL)
                self._events.append((int(n), int(m), SwitchingEvent(
                    time=now, new_state=state,
                    current=float(current[n, m]))))
            self.is_ap[flipped] = target_ap[flipped]
            self.progress[flipped] = 0.0

    def finalize(self) -> None:
        """Write final magnetisation state, progress, and the recorded
        switching events back into the sample circuits' elements."""
        for n, row in enumerate(self.elements):
            for m, element in enumerate(row):
                element.device.state = (MTJState.ANTIPARALLEL
                                        if self.is_ap[n, m]
                                        else MTJState.PARALLEL)
                if element.switching is not None:
                    element.switching.progress = float(self.progress[n, m])
        for n, m, event in self._events:
            self.elements[n][m].switching.events.append(event)


def _linear_fingerprints(devices: Sequence[Device]) -> Optional[List[dict]]:
    """Device fingerprints, or ``None`` when a device is unfingerprintable
    (then per-sample stamping is used instead of the shared fast path)."""
    from repro.cache.keys import _device_fingerprint

    try:
        return [_device_fingerprint(d) for d in devices]
    except CacheError:
        return None


class EnsembleWorkspace:
    """Stacked MNA systems of N same-topology circuits.

    Raises :class:`~repro.errors.AnalysisError` when the circuits do not
    share a structural signature (the batched solve requires one
    topology).
    """

    def __init__(self, circuits: Sequence[Circuit], dt: float,
                 integrator: str = "be"):
        if not circuits:
            raise AnalysisError("ensemble needs at least one circuit")
        signature = structure_signature(circuits[0])
        for circuit in circuits[1:]:
            if structure_signature(circuit) != signature:
                raise AnalysisError(
                    "ensemble circuits must share one topology; "
                    f"{circuit.name!r} differs structurally from "
                    f"{circuits[0].name!r}")
        self.circuits = list(circuits)
        self.count = len(circuits)
        self.dt = dt
        self.integrator = integrator
        c0 = circuits[0]
        self.num_nodes = c0.num_nodes
        self.num_branches = c0.num_branches
        self.size = self.num_nodes + self.num_branches

        n, s = self.count, self.size
        self.matrix = np.zeros((n, s, s))
        self.rhs = np.zeros((n, s))
        self._matrix_flat = self.matrix.reshape(-1)
        self._rhs_flat = self.rhs.reshape(-1)
        self._static = np.zeros((n, s, s))
        self._step_rhs = np.zeros((n, s))
        self._mat_offsets = np.arange(n, dtype=np.intp) * s * s
        self._rhs_offsets = np.arange(n, dtype=np.intp) * s
        self._diag = np.arange(self.num_nodes, dtype=np.intp)

        fets: List[List[MOSFET]] = [[] for _ in range(n)]
        caps: List[List[Capacitor]] = [[] for _ in range(n)]
        mtjs: List[List[MTJElement]] = [[] for _ in range(n)]
        linear: List[List[Device]] = [[] for _ in range(n)]
        self._iterate: List[List[Device]] = [[] for _ in range(n)]
        for i, circuit in enumerate(self.circuits):
            for device in circuit.devices:
                if isinstance(device, MOSFET):
                    fets[i].append(device)
                elif isinstance(device, Capacitor):
                    caps[i].append(device)
                elif isinstance(device, MTJElement):
                    mtjs[i].append(device)
                elif device.nonlinear:
                    self._iterate[i].append(device)
                else:
                    linear[i].append(device)

        self.fet_group = (_EnsembleMOSFETs(fets, s) if fets[0] else None)
        self.cap_group = (_EnsembleCapacitors(caps, s, dt, integrator)
                          if caps[0] else None)
        self.mtj_group = (_EnsembleMTJs(mtjs, s) if mtjs[0] else None)
        self._linear = linear

        # Shared-linear fast path: when every sample's linear devices are
        # value-identical (the Monte-Carlo case — only MTJ parameters
        # vary), the static matrix and the per-step source RHS are
        # computed once and broadcast.
        fp0 = _linear_fingerprints(linear[0])
        self._shared_linear = fp0 is not None and all(
            _linear_fingerprints(linear[i]) == fp0 for i in range(1, n))
        self._build_static()
        self._time = 0.0
        self._prev: Optional[np.ndarray] = None

    def _static_ctx(self) -> EvalContext:
        return EvalContext(voltages=np.zeros(self.num_nodes),
                           prev_voltages=None, time=0.0, dt=self.dt,
                           integrator=self.integrator)

    def _build_static(self) -> None:
        ctx = self._static_ctx()
        if self._shared_linear:
            base = np.zeros((self.size, self.size))
            stamper = MNAStamper(self.num_nodes, self.num_branches,
                                 matrix=base, rhs=np.zeros(self.size))
            for device in self._linear[0]:
                device.stamp_static(stamper, ctx)
            self._static[:] = base[None, :, :]
        else:
            for i in range(self.count):
                stamper = MNAStamper(self.num_nodes, self.num_branches,
                                     matrix=self._static[i],
                                     rhs=np.zeros(self.size))
                for device in self._linear[i]:
                    device.stamp_static(stamper, ctx)
        if self.cap_group is not None:
            self.cap_group.stamp_static(self._static, self._mat_offsets)

    def begin_step(self, time: float, prev: Optional[np.ndarray]) -> None:
        """Rebuild the iterate-free RHS stack for a new timepoint."""
        from repro.spice.analysis.engine import _RHSView

        self._time = time
        self._prev = prev
        self._step_rhs[:] = 0.0
        if self._shared_linear:
            row = np.zeros(self.size)
            view = _RHSView(self.num_nodes, self.num_branches, row)
            ctx = EvalContext(voltages=np.zeros(0), prev_voltages=None,
                              time=time, dt=self.dt,
                              integrator=self.integrator)
            for device in self._linear[0]:
                device.stamp_step(view, ctx)
            self._step_rhs[:] = row[None, :]
        else:
            for i in range(self.count):
                view = _RHSView(self.num_nodes, self.num_branches,
                                self._step_rhs[i])
                ctx = EvalContext(
                    voltages=np.zeros(0),
                    prev_voltages=None if prev is None else prev[i],
                    time=time, dt=self.dt, integrator=self.integrator)
                for device in self._linear[i]:
                    device.stamp_step(view, ctx)
        if self.cap_group is not None and prev is not None:
            self.cap_group.step_rhs(self._step_rhs, prev)

    def assemble(self, x: np.ndarray, gmin: float = 0.0) -> None:
        """Assemble every sample's system at the iterate stack ``x``."""
        np.copyto(self.matrix, self._static)
        np.copyto(self.rhs, self._step_rhs)
        if gmin > 0.0 and self.num_nodes:
            self.matrix[:, self._diag, self._diag] += gmin
        voltages = x[:, : self.num_nodes]
        if self.fet_group is not None:
            self.fet_group.stamp(self._matrix_flat, self._mat_offsets,
                                 self._rhs_flat, self._rhs_offsets, voltages)
        if self.mtj_group is not None:
            self.mtj_group.stamp(self._matrix_flat, self._mat_offsets,
                                 self._rhs_flat, self._rhs_offsets, voltages)
        if any(self._iterate):
            for i in range(self.count):
                if not self._iterate[i]:
                    continue
                view = MNAStamper(self.num_nodes, self.num_branches,
                                  matrix=self.matrix[i], rhs=self.rhs[i])
                ctx = EvalContext(
                    voltages=voltages[i],
                    prev_voltages=None if self._prev is None
                    else self._prev[i],
                    time=self._time, dt=self.dt, gmin=gmin,
                    integrator=self.integrator)
                for device in self._iterate[i]:
                    device.stamp(view, ctx)

    def update_state(self, x: np.ndarray) -> None:
        """Advance every sample's stateful devices after an accepted step."""
        voltages = x[:, : self.num_nodes]
        if self.cap_group is not None:
            self.cap_group.update_state(voltages)
        if self.mtj_group is not None:
            self.mtj_group.update_state(voltages, self.dt, self._time)
        if any(self._iterate):
            for i in range(self.count):
                if not self._iterate[i]:
                    continue
                ctx = EvalContext(
                    voltages=voltages[i],
                    prev_voltages=None if self._prev is None
                    else self._prev[i],
                    time=self._time, dt=self.dt,
                    integrator=self.integrator)
                for device in self._iterate[i]:
                    device.update_state(ctx)

    def finalize_devices(self) -> None:
        """Write group-held device state back into the sample circuits."""
        if self.mtj_group is not None:
            self.mtj_group.finalize()


class EnsembleNewtonSolver:
    """Damped Newton over an :class:`EnsembleWorkspace` with per-sample
    convergence masks and one batched linear solve per iteration."""

    def __init__(self, workspace: EnsembleWorkspace):
        self.workspace = workspace
        #: Per-sample work counters (one row per sample).
        self.iterations = np.zeros(workspace.count, dtype=np.intp)
        self.solves = np.zeros(workspace.count, dtype=np.intp)
        self.factorizations = np.zeros(workspace.count, dtype=np.intp)

    def solve(self, x0: np.ndarray, time: float,
              prev: Optional[np.ndarray], gmin: float, max_iterations: int,
              vtol: float, damping: float
              ) -> Tuple[np.ndarray, np.ndarray]:
        """One timepoint for every sample; returns ``(x, failed_mask)``.

        ``failed_mask[i]`` is True when sample ``i`` did not converge
        within the iteration budget.  Raises :class:`EnsembleFallback`
        when the batched linear algebra itself breaks down (a singular
        sample poisons the stacked solve — the caller reruns scalar).
        """
        ws = self.workspace
        ws.begin_step(time, prev)
        num_nodes = ws.num_nodes
        x = x0.copy()
        converged = np.zeros(ws.count, dtype=bool)
        for _iteration in range(1, max_iterations + 1):
            active = ~converged
            self.iterations[active] += 1
            self.factorizations[active] += 1
            ws.assemble(x, gmin=gmin)
            try:
                direct = np.linalg.solve(ws.matrix, ws.rhs[..., None])[..., 0]
            except np.linalg.LinAlgError as exc:
                raise EnsembleFallback(
                    f"singular sample in batched solve at gmin={gmin:g}"
                ) from exc
            if not np.all(np.isfinite(direct[active])):
                raise EnsembleFallback(
                    f"non-finite batched solution at gmin={gmin:g}")
            delta = direct - x
            dv = np.max(np.abs(delta[:, :num_nodes]), axis=1) \
                if num_nodes else np.zeros(ws.count)
            scale = np.where(dv > damping, damping / np.maximum(dv, 1e-300),
                             1.0)
            stepped = x + delta * scale[:, None]
            x = np.where(converged[:, None], x, stepped)
            newly = active & (dv <= damping) & (dv < vtol)
            converged |= newly
            if converged.all():
                self.solves += 1
                return x, ~converged
        self.solves[converged] += 1
        return x, ~converged


def run_ensemble_transient(
    circuits: Sequence[Circuit],
    stop_time: float,
    dt: float,
    integrator: str = "be",
    initial_voltages: Optional[Dict[str, float]] = None,
    dc_seed: Optional[Dict[str, float]] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    vtol: float = DEFAULT_VTOL,
    damping: float = DEFAULT_DAMPING,
    lint: str = "error",
    fallback_engine: str = "fast",
):
    """Advance N same-topology circuits through one batched transient.

    Returns a list of :class:`~repro.spice.analysis.transient.TransientResult`,
    one per circuit, in input order.  Options mirror
    :func:`~repro.spice.analysis.transient.run_transient`; the ERC
    pre-flight runs on the first sample (the samples are structurally
    identical by construction).  Falls back to per-sample scalar runs via
    ``fallback_engine`` when the batched path cannot converge, so the
    call never fails where the scalar engines would succeed.
    """
    from repro.spice.analysis.transient import TransientResult, run_transient

    if stop_time <= 0.0 or dt <= 0.0:
        raise AnalysisError("stop_time and dt must be positive")
    if dt > stop_time:
        raise AnalysisError(f"dt={dt} exceeds stop_time={stop_time}")
    if integrator not in ("be", "trap"):
        raise AnalysisError(f"unknown integrator {integrator!r}")
    circuits = list(circuits)
    if not circuits:
        return []

    from repro.lint import preflight

    preflight(circuits[0], lint)

    def scalar_fallback():
        return [
            run_transient(c, stop_time, dt, integrator=integrator,
                          initial_voltages=initial_voltages, dc_seed=dc_seed,
                          max_iterations=max_iterations, vtol=vtol,
                          damping=damping, engine=fallback_engine, lint="off")
            for c in circuits
        ]

    if len(circuits) == 1:
        return scalar_fallback()

    span = _obs_span("analysis.ensemble_transient", category="analysis",
                     attrs={"circuit": circuits[0].name,
                            "samples": len(circuits), "dt": dt,
                            "stop_time": stop_time})
    with span:
        for circuit in circuits:
            circuit.finalize()
            circuit.reset_state()
        # Topology must be validated before the per-sample DC seeding —
        # a mismatched circuit would otherwise surface as a shape error
        # from the seed-stacking loop instead of the real diagnostic.
        signature = structure_signature(circuits[0])
        for circuit in circuits[1:]:
            if structure_signature(circuit) != signature:
                raise AnalysisError(
                    "ensemble circuits must share one topology; "
                    f"{circuit.name!r} differs structurally from "
                    f"{circuits[0].name!r}")
        n = len(circuits)
        num_nodes = circuits[0].num_nodes
        num_branches = circuits[0].num_branches
        size = num_nodes + num_branches

        x = np.zeros((n, size))
        if initial_voltages is not None:
            for node_name, value in initial_voltages.items():
                index = circuits[0].node(node_name)
                if index >= 0:
                    x[:, index] = value
        else:
            for i, circuit in enumerate(circuits):
                dc = solve_dc(circuit, time=0.0, initial_guess=dc_seed,
                              max_iterations=max_iterations, vtol=vtol,
                              damping=damping, lint="off")
                x[i] = np.concatenate([dc.voltages, dc.branch_currents])

        try:
            workspace = EnsembleWorkspace(circuits, dt,
                                          integrator=integrator)
            solver = EnsembleNewtonSolver(workspace)

            steps = int(round(stop_time / dt))
            times = np.arange(steps + 1) * dt
            voltages = np.empty((steps + 1, n, num_nodes))
            currents = np.empty((steps + 1, n, num_branches))
            voltages[0] = x[:, :num_nodes]
            currents[0] = x[:, num_nodes:]
            gmin_retries = np.zeros(n, dtype=np.intp)

            prev = x[:, :num_nodes].copy()
            for step in range(1, steps + 1):
                time = step * dt
                x_new, failed = solver.solve(
                    x, time, prev, FLOOR_GMIN, max_iterations, vtol,
                    damping)
                if failed.any():
                    # Scalar drivers' gmin rung, adopted only for the
                    # samples that actually failed.  The ladder values
                    # come from the shared recovery policy so batched
                    # and scalar runs retry at identical conductances.
                    still = failed
                    for retry_gmin in _recovery_gmin_ladder():
                        gmin_retries[still] += 1
                        x_retry, unconverged = solver.solve(
                            x, time, prev, retry_gmin, max_iterations,
                            vtol, damping)
                        x_new[still] = x_retry[still]
                        still = still & unconverged
                        if not still.any():
                            break
                    if still.any():
                        raise EnsembleFallback(
                            f"{int(still.sum())} samples "
                            f"unconverged at t={time:g}")
                x = x_new
                workspace.update_state(x)
                voltages[step] = x[:, :num_nodes]
                currents[step] = x[:, num_nodes:]
                prev = x[:, :num_nodes].copy()
        except (EnsembleFallback, ConvergenceError):
            if _obs_active():
                _obs_metrics().inc("analysis.ensemble_fallbacks", 1)
            return scalar_fallback()

        workspace.finalize_devices()

        results = []
        for i, circuit in enumerate(circuits):
            stats = SolverStats(
                solves=int(solver.solves[i]),
                iterations=int(solver.iterations[i]),
                factorizations=int(solver.factorizations[i]),
                gmin_retries=int(gmin_retries[i]),
                timesteps=steps,
            )
            results.append(TransientResult(
                circuit, times.copy(), voltages[:, i].copy(),
                currents[:, i].copy(), stats=stats))

        if _obs_active():
            registry = _obs_metrics()
            registry.inc("analysis.ensemble_transients", 1)
            registry.inc("analysis.ensemble_samples", n)
            registry.inc("engine.newton_iterations",
                         int(solver.iterations.sum()))
            registry.inc("engine.timesteps", steps * n)
            span.annotate(samples=n,
                          newton_iterations=int(solver.iterations.sum()),
                          gmin_retries=int(gmin_retries.sum()))
        return results
