"""Modified nodal analysis (MNA) matrix assembly.

The unknown vector is ``x = [node_voltages..., branch_currents...]``.
Devices stamp their linearised companion models through
:class:`MNAStamper`, which hides the ground bookkeeping: any stamp whose
row or column refers to ground (index ``-1``) is silently dropped, which
is exactly the textbook reduction of the grounded MNA system.

Sign conventions (standard):

* ``add_conductance(a, b, g)`` stamps a conductance ``g`` between nodes
  ``a`` and ``b`` (the usual +g on the diagonals, −g off-diagonal).
* ``add_current(node, value)`` adds ``value`` amps *into* ``node`` on the
  right-hand side (a companion-model Norton source).
* Branch rows carry voltage-source-like constraints; branch columns carry
  the current contribution of the branch into its nodes.
"""

from __future__ import annotations

import numpy as np


class MNAStamper:
    """Dense MNA system under construction for one Newton iteration.

    By default it owns freshly zeroed arrays; the fast engine passes
    preallocated ``matrix``/``rhs`` buffers to stamp into without
    reallocating (see :mod:`repro.spice.analysis.engine`).
    """

    def __init__(self, num_nodes: int, num_branches: int,
                 matrix: np.ndarray = None, rhs: np.ndarray = None):
        self.num_nodes = num_nodes
        self.num_branches = num_branches
        size = num_nodes + num_branches
        self.matrix = np.zeros((size, size)) if matrix is None else matrix
        self.rhs = np.zeros(size) if rhs is None else rhs

    # -- nodal stamps --------------------------------------------------------

    def add_conductance(self, node_a: int, node_b: int, g: float) -> None:
        """Conductance ``g`` between ``node_a`` and ``node_b``."""
        if node_a >= 0:
            self.matrix[node_a, node_a] += g
        if node_b >= 0:
            self.matrix[node_b, node_b] += g
        if node_a >= 0 and node_b >= 0:
            self.matrix[node_a, node_b] -= g
            self.matrix[node_b, node_a] -= g

    def add_transconductance(
        self, out_pos: int, out_neg: int, ctrl_pos: int, ctrl_neg: int, gm: float
    ) -> None:
        """Current gm·(V(ctrl_pos) − V(ctrl_neg)) flowing out_pos → out_neg."""
        for out_node, out_sign in ((out_pos, 1.0), (out_neg, -1.0)):
            if out_node < 0:
                continue
            if ctrl_pos >= 0:
                self.matrix[out_node, ctrl_pos] += out_sign * gm
            if ctrl_neg >= 0:
                self.matrix[out_node, ctrl_neg] -= out_sign * gm

    def add_current(self, node: int, value: float) -> None:
        """Independent/companion current of ``value`` amps into ``node``."""
        if node >= 0:
            self.rhs[node] += value

    # -- branch stamps -------------------------------------------------------

    def branch_row(self, branch_index: int) -> int:
        """Matrix row/column index of a branch unknown."""
        return self.num_nodes + branch_index

    def add_voltage_source(
        self, branch_index: int, positive: int, negative: int, voltage: float
    ) -> None:
        """Ideal voltage source constraint V(pos) − V(neg) = voltage, with the
        branch current flowing pos → (through source) → neg."""
        row = self.branch_row(branch_index)
        if positive >= 0:
            self.matrix[positive, row] += 1.0
            self.matrix[row, positive] += 1.0
        if negative >= 0:
            self.matrix[negative, row] -= 1.0
            self.matrix[row, negative] -= 1.0
        self.rhs[row] += voltage

    # -- solving ---------------------------------------------------------------

    def apply_gmin(self, gmin: float) -> None:
        """Add ``gmin`` from every node to ground (Newton homotopy aid)."""
        if gmin <= 0.0:
            return
        for node in range(self.num_nodes):
            self.matrix[node, node] += gmin

    def solve(self) -> np.ndarray:
        """Solve the assembled system; raises ``numpy.linalg.LinAlgError`` if
        singular (the DC driver catches this and escalates gmin)."""
        return np.linalg.solve(self.matrix, self.rhs)
