"""Analyses over a :class:`~repro.spice.netlist.Circuit`."""

from repro.spice.analysis.mna import MNAStamper
from repro.spice.analysis.engine import FastNewtonSolver, MNAWorkspace
from repro.spice.analysis.sparse import (
    SparseNewtonSolver,
    SparsePattern,
    run_adaptive_transient,
    sparse_linear_solve,
)
from repro.spice.analysis.ensemble import (
    EnsembleWorkspace,
    run_ensemble_transient,
)
from repro.spice.analysis.dc import solve_dc, DCResult
from repro.spice.analysis.transient import (
    run_transient,
    TransientResult,
    get_default_engine,
    set_default_engine,
)
from repro.spice.analysis.sweep import dc_sweep, inverter_vtc, static_noise_margin
from repro.spice.analysis.opreport import (
    operating_point_report,
    power_balance,
    render_operating_point,
)
from repro.spice.analysis.measure import (
    crossing_time,
    delay_between,
    integrate_supply_energy,
    average_power,
    settle_value,
)

__all__ = [
    "MNAStamper",
    "MNAWorkspace",
    "FastNewtonSolver",
    "SparseNewtonSolver",
    "SparsePattern",
    "sparse_linear_solve",
    "run_adaptive_transient",
    "EnsembleWorkspace",
    "run_ensemble_transient",
    "solve_dc",
    "DCResult",
    "run_transient",
    "TransientResult",
    "get_default_engine",
    "set_default_engine",
    "crossing_time",
    "delay_between",
    "integrate_supply_energy",
    "average_power",
    "settle_value",
    "dc_sweep",
    "inverter_vtc",
    "static_noise_margin",
    "operating_point_report",
    "power_balance",
    "render_operating_point",
]
