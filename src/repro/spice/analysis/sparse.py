"""Third-generation solver core: sparse CSC factorisation + adaptive dt.

The fast engine (:mod:`repro.spice.analysis.engine`) removed the
per-iteration re-stamping cost but still factorises a *dense* MNA matrix:
node count cubes the cost, which is what makes mini-arrays and k-bit
macros expensive.  This module adds the sparse tier on top of the same
(well-tested) three-tier assembly workspace:

* :class:`SparsePattern` — the CSC sparsity structure of a circuit's MNA
  system, discovered **structurally** (static-matrix nonzeros, the
  vectorised MOSFET group's scatter indices, and a position-recording
  stamp pass over every other nonlinear device) so no numerically-zero
  entry can be missed by value probing.  Patterns are cached in a
  module-level registry keyed on the *structural* part of the circuit
  fingerprint (device classes, terminal indices, branch layout) — the
  symbolic analysis is paid once per topology, so a 200-sample
  Monte-Carlo ensemble of one latch reuses a single pattern.
* :class:`SparseNewtonSolver` — damped modified Newton identical in
  strategy to :class:`~repro.spice.analysis.engine.FastNewtonSolver`
  (frozen-Jacobian reuse, staleness/slow-convergence refresh) but with
  ``scipy.sparse.linalg.splu`` over the pattern-gathered CSC matrix in
  place of dense LAPACK getrf: factorisation cost follows the fill-in of
  the sparse structure instead of n³.
* :func:`run_adaptive_transient` — local-truncation-error timestep
  control for ``engine="sparse"`` transients.  The controller estimates
  the backward-Euler LTE from the curvature of the accepted solution
  history (the standard SPICE divided-difference estimator, i.e. the
  first-order member of the trap/BE pair the integrators already
  implement), steps on a power-of-two ladder ``dt_base·2^k`` so the
  cached static tier is rebuilt at most once per ladder level, and
  **clamps dt back to the base step whenever any MTJ is inside a
  switching window** (junction current beyond a fraction of I_c or
  accumulated switching progress pending) so the Table II write/restore
  physics is integrated exactly as the fixed-step engines integrate it.
  Accepted points are resampled onto the caller's fixed output grid, so
  downstream measurement code is oblivious to the internal step ladder.

Equivalence contract (enforced by ``tests/test_engine_differential.py``
and ``tests/test_sparse_engine.py``): non-adaptive sparse waveforms match
the naive and fast engines to ≤ 1 µV on every node; adaptive runs keep
the golden Table II metrics inside the 0.1 % band
(``tests/test_golden_table2_sparse.py``).
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

try:  # sparse LU via SuperLU; the sparse engine needs scipy.
    from scipy.sparse import csc_matrix
    from scipy.sparse.linalg import splu

    _HAVE_SPLU = True
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _HAVE_SPLU = False

from repro.errors import AnalysisError, ConvergenceError
from repro.obs import is_active as _obs_active
from repro.obs import metrics as _obs_metrics
from repro.spice.devices.base import EvalContext
from repro.spice.devices.mtj_element import MTJElement
from repro.spice.analysis.engine import (
    JACOBIAN_MAX_AGE,
    MNAWorkspace,
    SolverStats,
)
from repro.spice.analysis.mna import MNAStamper
from repro.spice.netlist import Circuit

#: Default LTE acceptance tolerance [V] of the adaptive controller: the
#: estimated per-step backward-Euler truncation error a step may carry.
#: Chosen an order of magnitude under the cross-engine 1 µV-class
#: agreement bound scaled by typical step counts, and verified against
#: the 0.1 % golden Table II band.
DEFAULT_LTE_TOL = 2e-5
#: Default cap on dt growth: dt never exceeds ``max_dt_factor · dt_base``.
DEFAULT_MAX_DT_FACTOR = 8
#: Refinement floor: dt never shrinks below ``dt_base / MIN_DT_DIVISOR``.
MIN_DT_DIVISOR = 4
#: Grow the step only when the LTE estimate is under this fraction of the
#: tolerance (hysteresis so the ladder does not oscillate).
GROW_THRESHOLD = 0.3
#: An MTJ is "inside a switching window" when |I| exceeds this fraction
#: of its critical current (or it carries pending switching progress);
#: the adaptive controller then clamps dt to the base step.
MTJ_WINDOW_FRACTION = 0.5
#: Pending-progress threshold that also pins dt to the base step.
MTJ_PROGRESS_EPSILON = 1e-9
#: SuperLU column-permutation heuristic.  MNA matrices are (nearly)
#: structurally symmetric, so minimum-degree on Aᵀ+A beats the COLAMD
#: default by ~3× in factor time and fill on array-scale circuits.
PERMC_SPEC = "MMD_AT_PLUS_A"
#: Maximum pattern registry entries (topologies) kept alive.
_PATTERN_CACHE_LIMIT = 64


def sparse_config_fingerprint() -> Dict[str, object]:
    """Sparse/adaptive engine configuration a cache key must capture."""
    return {
        "scipy_splu": _HAVE_SPLU,
        "permc_spec": PERMC_SPEC,
        "lte_tol_default": DEFAULT_LTE_TOL,
        "max_dt_factor_default": DEFAULT_MAX_DT_FACTOR,
        "min_dt_divisor": MIN_DT_DIVISOR,
        "grow_threshold": GROW_THRESHOLD,
        "mtj_window_fraction": MTJ_WINDOW_FRACTION,
        "mtj_progress_epsilon": MTJ_PROGRESS_EPSILON,
        # Algorithm revision marker: steps land on source-waveform
        # corners instead of striding over them.
        "source_breakpoints": True,
    }


# ---------------------------------------------------------------------------
# Structural pattern discovery
# ---------------------------------------------------------------------------


class _RecordingMatrix:
    """Matrix stand-in that records ``(row, col)`` write positions.

    Devices stamp through :class:`MNAStamper` methods or directly via
    ``stamper.matrix[r, c] += g`` (the MOSFET does); both routes resolve
    to ``__getitem__`` + ``__setitem__`` here, so the recorded slot set
    is exactly the set of matrix positions a stamp can ever touch —
    independent of the numerical values at the probe iterate.
    """

    def __init__(self) -> None:
        self.slots: set = set()

    def __getitem__(self, key) -> float:
        return 0.0

    def __setitem__(self, key, value) -> None:
        row, col = key
        if row >= 0 and col >= 0:
            self.slots.add((int(row), int(col)))


def _record_stamp_positions(devices, num_nodes: int, num_branches: int,
                            dt: Optional[float], integrator: str) -> set:
    """Matrix positions the given devices' ``stamp`` can write."""
    recorder = _RecordingMatrix()
    stamper = MNAStamper(num_nodes, num_branches,
                         matrix=recorder,  # type: ignore[arg-type]
                         rhs=np.zeros(num_nodes + num_branches))
    probe = EvalContext(voltages=np.zeros(num_nodes),
                        prev_voltages=np.zeros(num_nodes), time=0.0,
                        dt=dt, integrator=integrator)
    for device in devices:
        device.stamp(stamper, probe)
    return recorder.slots


def structure_signature(circuit: Circuit) -> Tuple:
    """Hashable structural fingerprint of a finalised circuit: the part
    of the full cache fingerprint that determines the MNA sparsity
    pattern (device classes and terminal/branch indices — *not* the
    parameter values, so every Monte-Carlo sample of one topology shares
    one signature and therefore one cached pattern)."""
    circuit.finalize()
    return (
        circuit.num_nodes,
        circuit.num_branches,
        tuple(
            (type(d).__name__, tuple(int(n) for n in d.node_indices()),
             int(getattr(d, "branch_index", -1)))
            for d in circuit.devices
        ),
    )


class SparsePattern:
    """CSC structure + gather map of one circuit topology's MNA system.

    ``take_flat`` lists, in CSC order, the flat (row-major) dense-buffer
    index of every structural nonzero; per-iteration CSC assembly is a
    single ``ndarray.take`` from the workspace's dense stamp buffer into
    the CSC ``data`` array — O(nnz), no COO sort, no dedup.
    """

    def __init__(self, workspace: MNAWorkspace):
        size = workspace.size
        slots = set()
        # Tier 1: static-matrix nonzeros (resistors, cap companions,
        # source incidence).  No cancellation risk: conductance stamps
        # accumulate with consistent signs and incidence entries are ±1.
        rows, cols = np.nonzero(workspace._static_matrix)
        slots.update(zip(rows.tolist(), cols.tolist()))
        # Tier 3a: the vectorised MOSFET / MTJ groups' precomputed scatter.
        if workspace.fet_group is not None:
            for flat in workspace.fet_group.flat_index.tolist():
                slots.add((flat // size, flat % size))
        if workspace.mtj_group is not None:
            for flat in workspace.mtj_group.flat_index.tolist():
                slots.add((flat // size, flat % size))
        # Tier 3b: every other nonlinear device, structurally recorded.
        slots.update(_record_stamp_positions(
            workspace._iterate_devices, workspace.num_nodes,
            workspace.num_branches, workspace.dt, workspace.integrator))
        # gmin homotopy writes the node diagonal.
        for node in range(workspace.num_nodes):
            slots.add((node, node))
        # Branch diagonals as explicit structural zeros: keeps every row
        # and column present so SuperLU's permutation never sees an
        # empty column on degenerate sub-circuits.
        for branch in range(workspace.num_nodes, size):
            slots.add((branch, branch))

        flat = np.fromiter((r * size + c for r, c in slots), dtype=np.intp,
                           count=len(slots))
        rows_a = flat // size
        cols_a = flat % size
        order = np.argsort(cols_a * size + rows_a, kind="stable")
        self.size = size
        self.nnz = int(flat.size)
        self.take_flat = flat[order]
        self._sorter: Optional[np.ndarray] = None
        self.indices = rows_a[order].astype(np.int32)
        sorted_cols = cols_a[order]
        self.indptr = np.searchsorted(
            sorted_cols, np.arange(size + 1)).astype(np.int32)

    def gather(self, dense_matrix: np.ndarray, out: np.ndarray) -> None:
        """Fill a CSC ``data`` array from the dense stamp buffer."""
        dense_matrix.ravel().take(self.take_flat, out=out)

    def csc_positions(self, flat: np.ndarray) -> np.ndarray:
        """CSC ``data`` positions of dense row-major flat indices.

        Every requested slot must be structural (present in
        ``take_flat``) — group scatter indices and node diagonals are by
        construction.  Used by the pure-CSC assembly path to scatter
        nonlinear stamps straight into the CSC data array, skipping the
        dense buffer entirely.
        """
        if self._sorter is None:
            self._sorter = np.argsort(self.take_flat, kind="stable")
        pos = self._sorter[np.searchsorted(self.take_flat, flat,
                                           sorter=self._sorter)]
        if not np.array_equal(self.take_flat[pos], flat):
            raise AnalysisError(
                "requested dense slot is not structural in this pattern")
        return pos


_pattern_cache: Dict[Tuple, SparsePattern] = {}


def get_pattern(circuit: Circuit, workspace: MNAWorkspace,
                stats: Optional[SolverStats] = None) -> SparsePattern:
    """Pattern for a topology, from the registry when already analysed.

    The registry key is :func:`structure_signature`; a bounded number of
    topologies is retained (oldest evicted first).
    """
    key = structure_signature(circuit)
    pattern = _pattern_cache.get(key)
    if pattern is not None:
        if stats is not None:
            stats.pattern_reuses += 1
        return pattern
    pattern = SparsePattern(workspace)
    if len(_pattern_cache) >= _PATTERN_CACHE_LIMIT:
        _pattern_cache.pop(next(iter(_pattern_cache)))
    _pattern_cache[key] = pattern
    if stats is not None:
        stats.pattern_builds += 1
    return pattern


def clear_pattern_cache() -> None:
    """Drop every cached sparsity pattern (test isolation helper)."""
    _pattern_cache.clear()


# ---------------------------------------------------------------------------
# Sparse modified-Newton solver
# ---------------------------------------------------------------------------


def _csc_norm1(csc) -> float:
    """‖A‖₁ (max absolute column sum) of a CSC matrix — columns are
    contiguous runs of ``data``, delimited by ``indptr``."""
    if csc.data.size == 0:
        return 0.0
    columns = np.repeat(np.arange(csc.shape[1], dtype=np.intp),
                        np.diff(csc.indptr))
    return float(np.bincount(columns, weights=np.abs(csc.data),
                             minlength=csc.shape[1]).max())


class SparseNewtonSolver:
    """Damped modified Newton with SuperLU factorisations.

    Mirrors :class:`~repro.spice.analysis.engine.FastNewtonSolver`
    exactly in Newton strategy — damping, convergence test, Jacobian
    staleness policy — so the two engines agree to solver tolerance; only
    the linear-algebra backend differs (pattern-gathered CSC + ``splu``
    instead of dense getrf/getrs).
    """

    def __init__(self, workspace: MNAWorkspace,
                 stats: Optional[SolverStats] = None,
                 pattern: Optional[SparsePattern] = None):
        if not _HAVE_SPLU:  # pragma: no cover - scipy is a declared dep
            raise AnalysisError(
                "engine='sparse' needs scipy.sparse.linalg.splu")
        self.workspace = workspace
        self.stats = stats if stats is not None else SolverStats()
        self.pattern = pattern if pattern is not None else get_pattern(
            workspace.circuit, workspace, self.stats)
        self._csc = csc_matrix(
            (np.zeros(self.pattern.nnz), self.pattern.indices,
             self.pattern.indptr),
            shape=(workspace.size, workspace.size))
        self._lu = None
        #: Optional :class:`~repro.recovery.health.ConditionProbe`
        #: (duck-typed, as on :class:`FastNewtonSolver`).
        self.condition_probe = None
        # Pure-CSC assembly: when every nonlinear device is covered by a
        # vectorised group, each Newton iteration scatters straight into
        # the CSC data array — the O(n²) dense static-matrix copy and
        # dense gather disappear from the iteration entirely.  Circuits
        # with ungrouped nonlinear devices keep the dense-assemble +
        # gather route (those devices need an MNAStamper to write to).
        self._pure = not workspace._iterate_devices
        if self._pure:
            self._static_data = np.empty(self.pattern.nnz)
            self.pattern.gather(workspace._static_matrix, self._static_data)
            size = workspace.size
            self._gmin_pos = (self.pattern.csc_positions(
                np.arange(workspace.num_nodes, dtype=np.intp) * (size + 1))
                if workspace.num_nodes else None)
            self._fet_pos = (self.pattern.csc_positions(
                workspace.fet_group.flat_index)
                if workspace.fet_group is not None else None)
            self._mtj_pos = (self.pattern.csc_positions(
                workspace.mtj_group.flat_index)
                if workspace.mtj_group is not None else None)

    def _refresh_csc(self) -> None:
        self.pattern.gather(self.workspace.matrix, self._csc.data)

    def _assemble_csc(self, x: np.ndarray, gmin: float) -> None:
        """Assemble the iterate directly in CSC form (pure mode only)."""
        ws = self.workspace
        data = self._csc.data
        np.copyto(data, self._static_data)
        np.copyto(ws.rhs, ws._step_rhs)
        if gmin > 0.0 and self._gmin_pos is not None:
            data[self._gmin_pos] += gmin
        voltages = x[: ws.num_nodes]
        if ws.fet_group is not None:
            ws.fet_group.stamp_into(data, self._fet_pos, ws.rhs, voltages)
        if ws.mtj_group is not None:
            ws.mtj_group.stamp_into(data, self._mtj_pos, ws.rhs, voltages)

    def _factorize(self) -> None:
        self.stats.factorizations += 1
        try:
            self._lu = splu(self._csc, permc_spec=PERMC_SPEC)
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise np.linalg.LinAlgError(str(exc)) from exc
        if self.condition_probe is not None:
            lu = self._lu
            csc = self._csc
            self.condition_probe.after_factorization(
                lambda b: lu.solve(b),
                lambda b: lu.solve(b, trans="T"),
                lambda: _csc_norm1(csc),
                self.workspace.size)

    def _delta(self, x: np.ndarray, fresh: bool) -> np.ndarray:
        if fresh or self._lu is None:
            self._factorize()
        else:
            self.stats.reuses += 1
        residual = self._csc @ x - self.workspace.rhs
        return -self._lu.solve(residual)

    def solve(self, x0: np.ndarray, time: float,
              prev_voltages: Optional[np.ndarray], gmin: float,
              max_iterations: int, vtol: float, damping: float) -> np.ndarray:
        """One converged Newton solve at a timepoint (same contract as
        ``FastNewtonSolver.solve``)."""
        ws = self.workspace
        ws.begin_step(time, prev_voltages)
        num_nodes = ws.num_nodes
        stats = self.stats
        timing = stats.stamp_seconds if _obs_active() else None
        x = x0.copy()
        last_factor = 0
        prev_max_dv = np.inf
        max_dv = np.inf
        for iteration in range(1, max_iterations + 1):
            stats.iterations += 1
            if self._pure:
                t0 = _time.perf_counter() if timing is not None else 0.0
                self._assemble_csc(x, gmin)
                if timing is not None:
                    timing["csc_assemble"] = (
                        timing.get("csc_assemble", 0.0)
                        + (_time.perf_counter() - t0))
            else:
                ws.assemble(x, gmin=gmin, timing=timing)
                self._refresh_csc()
            stale = iteration - last_factor
            refresh = (stale >= JACOBIAN_MAX_AGE
                       or (stale >= 1 and max_dv > 0.5 * prev_max_dv))
            try:
                delta = self._delta(x, fresh=refresh or iteration == 1)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"singular MNA matrix at gmin={gmin:g} "
                    f"(iteration {iteration})",
                    iterations=iteration,
                ) from exc
            if refresh or iteration == 1:
                last_factor = iteration
            if not np.all(np.isfinite(delta)):
                if iteration - last_factor > 0:
                    stats.singular_retries += 1
                    self._factorize()
                    last_factor = iteration
                    delta = self._delta(x, fresh=False)
                if not np.all(np.isfinite(delta)):
                    raise ConvergenceError(
                        f"singular MNA matrix at gmin={gmin:g} "
                        f"(iteration {iteration})",
                        iterations=iteration,
                    )

            prev_max_dv = max_dv
            dv = delta[:num_nodes]
            max_dv = float(np.max(np.abs(dv))) if num_nodes else 0.0
            if max_dv > damping:
                x = x + delta * (damping / max_dv)
            else:
                x = x + delta
                if max_dv < vtol:
                    stats.solves += 1
                    return x
        raise ConvergenceError(
            f"Newton failed to converge in {max_iterations} iterations "
            f"(gmin={gmin:g}, last max dV={max_dv:g})",
            iterations=max_iterations,
            residual=max_dv,
            state=x.copy(),
        )


def sparse_linear_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve one dense-assembled MNA system through the sparse backend.

    Used by the DC driver's ``engine="sparse"`` path: the dense matrix is
    scanned into CSC once per iteration (O(n²) — negligible against the
    O(n³) dense factorisation it replaces) and factorised with SuperLU.
    Raises :class:`numpy.linalg.LinAlgError` on singularity, matching
    ``numpy.linalg.solve`` so the gmin ladder is engine-agnostic.
    """
    if not _HAVE_SPLU:  # pragma: no cover - scipy is a declared dep
        return np.linalg.solve(matrix, rhs)
    try:
        solution = splu(csc_matrix(matrix),
                        permc_spec=PERMC_SPEC).solve(rhs)
    except RuntimeError as exc:
        raise np.linalg.LinAlgError(str(exc)) from exc
    if not np.all(np.isfinite(solution)):
        raise np.linalg.LinAlgError("singular matrix (non-finite solution)")
    return solution


# ---------------------------------------------------------------------------
# Adaptive-timestep transient driver (LTE control)
# ---------------------------------------------------------------------------


def _mtj_in_switching_window(mtjs: List[MTJElement], voltages: np.ndarray,
                             num_nodes: int) -> bool:
    """Whether any switching-capable MTJ is near/inside a write event."""
    for element in mtjs:
        ctx = EvalContext(voltages=voltages[:num_nodes], prev_voltages=None,
                          time=0.0, dt=None)
        current = element.current(ctx)
        critical = element.device.params.critical_current
        if abs(current) >= MTJ_WINDOW_FRACTION * critical:
            return True
        if element.switching.progress > MTJ_PROGRESS_EPSILON:
            return True
    return False


def _interp_to_grid(times: np.ndarray, samples: np.ndarray,
                    grid: np.ndarray) -> np.ndarray:
    """Piecewise-linear resampling of row-stacked samples onto a grid.

    ``times`` strictly increasing, covering ``[grid[0], grid[-1]]``;
    ``samples`` has one row per accepted timepoint.
    """
    idx = np.clip(np.searchsorted(times, grid, side="right") - 1,
                  0, len(times) - 2)
    t0 = times[idx]
    t1 = times[idx + 1]
    span = t1 - t0
    frac = np.where(span > 0.0, (grid - t0) / np.where(span > 0, span, 1.0),
                    0.0)
    frac = np.clip(frac, 0.0, 1.0)
    return samples[idx] + frac[:, None] * (samples[idx + 1] - samples[idx])


def run_adaptive_transient(
    circuit: Circuit,
    x0: np.ndarray,
    stop_time: float,
    dt_base: float,
    integrator: str,
    max_iterations: int,
    vtol: float,
    damping: float,
    floor_gmin: float,
    stats: SolverStats,
    lte_tol: float = DEFAULT_LTE_TOL,
    max_dt_factor: int = DEFAULT_MAX_DT_FACTOR,
    deadline: Optional[float] = None,
    timeout: Optional[float] = None,
    on_step: Optional[Callable[[float, np.ndarray], None]] = None,
    policy=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, "object"]:
    """LTE-controlled sparse transient from an initial solution ``x0``.

    Returns ``(times, node_voltages, branch_currents, dt_trace, health)``
    with the waveforms resampled onto the fixed grid ``k · dt_base`` the
    fixed-step engines produce, ``dt_trace`` the sequence of accepted
    internal step sizes (the review-visible record of step selection —
    pinned by ``tests/golden/dt_trace_sparse.json``), and ``health`` the
    run's :class:`~repro.recovery.health.SolverHealth` record.

    ``policy`` — optional
    :class:`~repro.recovery.policy.RecoveryPolicy`.  The adaptive driver
    already owns step-size control, so only the ladder's gmin rung (and
    the finiteness guard / condition probes) applies here; LTE rejection
    covers the timestep-cut role.

    The dt ladder is ``dt_base · 2^k`` with
    ``k ∈ [-log2(MIN_DT_DIVISOR), log2(max_dt_factor)]``; each rung owns
    one lazily-built workspace/solver pair (the static tier depends on
    dt), so rung changes cost a static rebuild at most once per rung.
    ``on_step`` fires at every *accepted internal* point.
    """
    if integrator != "be":
        raise AnalysisError(
            "adaptive timestep control supports the 'be' integrator "
            f"(got {integrator!r}); run trap circuits fixed-step")
    if lte_tol <= 0.0:
        raise AnalysisError(f"lte_tol must be positive, got {lte_tol}")
    if max_dt_factor < 1:
        raise AnalysisError(
            f"max_dt_factor must be >= 1, got {max_dt_factor}")

    num_nodes = circuit.num_nodes
    steps = int(round(stop_time / dt_base))
    t_end = steps * dt_base  # the fixed drivers integrate to step·dt too
    max_level = max(0, int(np.log2(max_dt_factor)))
    min_level = -int(np.log2(MIN_DT_DIVISOR))
    mtjs = [d for d in circuit.devices
            if isinstance(d, MTJElement) and d.switching is not None]
    # Source-waveform corners (pulse/PWL slope discontinuities): a grown
    # step must land on a corner, never stride over it — the LTE
    # estimate only sees a missed edge one step too late, after the
    # smeared edge is already in the accepted history.
    from repro.spice.devices.sources import CurrentSource, VoltageSource

    corner_set = set()
    for device in circuit.devices:
        if isinstance(device, (VoltageSource, CurrentSource)):
            corner_set.update(device.waveform.breakpoints(t_end))
    corners = np.asarray(sorted(b for b in corner_set if 0.0 < b < t_end))

    from repro.recovery.health import ConditionProbe, SolverHealth, \
        guard_finite
    from repro.recovery.ladder import gmin_ladder_retry
    from repro.recovery.policy import DEFAULT_POLICY

    policy = DEFAULT_POLICY if policy is None else policy
    health = SolverHealth()
    probe = ConditionProbe(health, policy)

    rungs: Dict[float, Tuple[MNAWorkspace, SparseNewtonSolver]] = {}

    def rung(dt: float) -> Tuple[MNAWorkspace, SparseNewtonSolver]:
        pair = rungs.get(dt)
        if pair is None:
            workspace = MNAWorkspace(circuit, dt=dt, integrator=integrator)
            solver = SparseNewtonSolver(workspace, stats=stats)
            solver.condition_probe = probe
            pair = (workspace, solver)
            rungs[dt] = pair
        return pair

    def advance(solver: SparseNewtonSolver, x: np.ndarray, time: float,
                prev_nodes: np.ndarray) -> np.ndarray:
        def attempt(gmin: float) -> np.ndarray:
            return guard_finite(
                solver.solve(x, time, prev_nodes, gmin, max_iterations,
                             vtol, damping),
                f"adaptive t={time:g} s", health)

        try:
            return attempt(floor_gmin)
        except ConvergenceError as exc:
            failure = exc
        if not policy.enabled:
            raise failure
        return gmin_ladder_retry(attempt, policy, stats, health=health,
                                 failure=failure)

    acc_times: List[float] = [0.0]
    acc_states: List[np.ndarray] = [x0.copy()]
    dt_trace: List[float] = []
    x = x0.copy()
    prev_nodes = x[:num_nodes].copy()
    prev_dt: Optional[float] = None
    level = 0
    t = 0.0
    registry = _obs_metrics() if _obs_active() else None

    while t < t_end - 1e-6 * dt_base:
        if deadline is not None and _time.monotonic() > deadline:
            raise ConvergenceError(
                f"adaptive transient of {circuit.name!r} exceeded its "
                f"{timeout:g} s wall-clock timeout at t={t:g} s",
                iterations=len(dt_trace), state=x.copy(),
            )
        dt_try = dt_base * (2.0 ** level)
        final_step = t + dt_try >= t_end - 1e-6 * dt_base
        if final_step:
            dt_try = t_end - t
        if corners.size:
            nxt = np.searchsorted(corners, t + 1e-6 * dt_base)
            if nxt < corners.size and t + dt_try > corners[nxt] \
                    - 1e-6 * dt_base:
                dt_try = float(corners[nxt]) - t
                final_step = False
        workspace, solver = rung(dt_try)
        x_new = advance(solver, x, t + dt_try, prev_nodes)

        # BE local-truncation-error estimate ≈ (dt²/2)·|v''| from the
        # divided-difference curvature of the accepted history.
        if prev_dt is not None and level > min_level and not final_step:
            v_new = x_new[:num_nodes]
            v_cur = acc_states[-1][:num_nodes]
            v_old = acc_states[-2][:num_nodes]
            d1 = (v_new - v_cur) / dt_try
            d0 = (v_cur - v_old) / prev_dt
            curvature = (d1 - d0) / (0.5 * (dt_try + prev_dt))
            err = 0.5 * dt_try * dt_try * float(np.max(np.abs(curvature)))
        else:
            err = 0.0
        if err > lte_tol and level > min_level and not final_step:
            stats.lte_rejects += 1
            level -= 1
            continue  # reject: no device state was advanced

        workspace.update_state(x_new)
        t += dt_try
        acc_times.append(t)
        acc_states.append(x_new.copy())
        dt_trace.append(dt_try)
        stats.timesteps += 1
        if registry is not None:
            registry.observe("engine.sparse.dt_over_base", dt_try / dt_base)
        prev_nodes = x_new[:num_nodes].copy()
        prev_dt = dt_try
        x = x_new
        if on_step is not None:
            on_step(t, x_new[:num_nodes])

        if mtjs and _mtj_in_switching_window(mtjs, x_new, num_nodes):
            level = min(level, 0)
        elif err <= GROW_THRESHOLD * lte_tol and level < max_level:
            level += 1

    times_acc = np.asarray(acc_times)
    states_acc = np.vstack(acc_states)
    grid = np.arange(steps + 1) * dt_base
    resampled = _interp_to_grid(times_acc, states_acc, grid)
    return (grid, resampled[:, :num_nodes], resampled[:, num_nodes:],
            np.asarray(dt_trace), health)
