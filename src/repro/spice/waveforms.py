"""Stimulus waveforms for independent sources.

All waveforms map a time [s] to a value (volts or amps).  ``PWL`` and
``Pulse`` mirror their SPICE namesakes; :func:`step_sequence` builds the
multi-phase control PWLs used by the latch control generators.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import AnalysisError


class Waveform:
    """Base class: a time-dependent scalar."""

    def value(self, time: float) -> float:
        raise NotImplementedError

    def __call__(self, time: float) -> float:
        return self.value(time)

    def breakpoints(self, stop_time: float) -> Tuple[float, ...]:
        """Times in ``[0, stop_time]`` where the waveform has a corner
        (slope discontinuity).  Adaptive integrators clamp their step so
        a corner is landed on, never strided over; a smooth/constant
        waveform reports none."""
        return ()


@dataclass(frozen=True)
class DC(Waveform):
    """Constant value."""

    level: float = 0.0

    def value(self, time: float) -> float:
        return self.level


@dataclass(frozen=True)
class Pulse(Waveform):
    """SPICE-style periodic pulse.

    Starts at ``initial``, transitions to ``pulsed`` after ``delay`` with
    ``rise`` seconds of linear ramp, holds for ``width``, returns with
    ``fall`` ramp; repeats every ``period`` if ``period`` > 0.
    """

    initial: float = 0.0
    pulsed: float = 1.0
    delay: float = 0.0
    rise: float = 10e-12
    fall: float = 10e-12
    width: float = 1e-9
    period: float = 0.0

    def value(self, time: float) -> float:
        t = time - self.delay
        if t < 0.0:
            return self.initial
        if self.period > 0.0:
            t = t % self.period
        if t < self.rise:
            return self.initial + (self.pulsed - self.initial) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.pulsed
        t -= self.width
        if t < self.fall:
            return self.pulsed + (self.initial - self.pulsed) * t / self.fall
        return self.initial

    def breakpoints(self, stop_time: float) -> Tuple[float, ...]:
        corners = (0.0, self.rise, self.rise + self.width,
                   self.rise + self.width + self.fall)
        times: List[float] = []
        cycle = 0
        while True:
            base = self.delay + cycle * self.period
            if base > stop_time:
                break
            times.extend(base + c for c in corners
                         if base + c <= stop_time)
            if self.period <= 0.0:
                break
            cycle += 1
        return tuple(times)


@dataclass(frozen=True)
class PWL(Waveform):
    """Piecewise-linear waveform through (time, value) breakpoints.

    Before the first point the first value holds; after the last point the
    last value holds.  Times must be strictly increasing.
    """

    points: Tuple[Tuple[float, float], ...] = ()
    _times: Tuple[float, ...] = field(init=False, repr=False, default=())

    def __post_init__(self) -> None:
        if not self.points:
            raise AnalysisError("PWL needs at least one (time, value) point")
        times = tuple(t for t, _ in self.points)
        if any(t1 <= t0 for t0, t1 in zip(times, times[1:])):
            raise AnalysisError("PWL times must be strictly increasing")
        object.__setattr__(self, "_times", times)

    def value(self, time: float) -> float:
        times = self._times
        if time <= times[0]:
            return self.points[0][1]
        if time >= times[-1]:
            return self.points[-1][1]
        idx = bisect.bisect_right(times, time)
        t0, v0 = self.points[idx - 1]
        t1, v1 = self.points[idx]
        frac = (time - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    def breakpoints(self, stop_time: float) -> Tuple[float, ...]:
        return tuple(t for t in self._times if t <= stop_time)


def step_sequence(
    transitions: Sequence[Tuple[float, float]],
    initial: float,
    slew: float = 20e-12,
) -> PWL:
    """Build a PWL that steps to each target value at each transition time.

    ``transitions`` is a sequence of ``(time, target_level)`` pairs with
    strictly increasing times; each step ramps linearly over ``slew``
    seconds starting at its transition time.  This is the primitive the
    control-sequence generators (paper Figs 6/7) are written in.
    """
    if slew <= 0.0:
        raise AnalysisError(f"slew must be positive, got {slew}")
    points: List[Tuple[float, float]] = [(0.0, initial)]
    level = initial
    for time, target in transitions:
        if time <= points[-1][0]:
            raise AnalysisError(
                f"transition at t={time} overlaps the previous edge "
                f"(ending at t={points[-1][0]}); space steps at least {slew} apart"
            )
        points.append((time, level))
        points.append((time + slew, target))
        level = target
    return PWL(points=tuple(points))
