"""Combined CMOS + MTJ simulation corners (paper Table II columns).

The paper sweeps ±3σ of the MTJ's RA, TMR and switching current; the
leakage spread in its Table II (≈ 3–4× between adjacent columns) further
implies a CMOS threshold-voltage corner.  We simulate three *process*
corners:

* ``fast``    — CMOS fast/leaky (V_T −3σ, mobility +10 %) with MTJ −3σ
  (low RA → high read current, low TMR → small margin, high I_c);
* ``typical`` — nominal everything;
* ``slow``    — CMOS slow/tight (V_T +3σ, mobility −10 %) with MTJ +3σ.

V_T sigma is 15 mV (3σ = 45 mV), chosen so the leakage spread of an off
transistor at the 40LP subthreshold slope matches the paper's
≈ 3.2× / 3.7× column ratios: exp(45 mV / (n·V_t)) ≈ 3.6.

Note on Table II column semantics: the paper's *worst* column shows the
worst value of **every** metric simultaneously (max energy, max delay,
max leakage), which no single physical corner produces — a fast/leaky
process maximises energy and leakage but *minimises* delay.  The table
generator therefore evaluates all three process corners and reports, per
metric, the worst/typical/best values across them (see
:mod:`repro.analysis.tables`), matching the per-metric-extreme convention
the paper's numbers imply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, TypeVar

from repro.mtj.parameters import MTJParameters
from repro.mtj.variation import MTJCorner, MTJVariation
from repro.spice.devices.mosfet import MOSFETModel, NMOS_40LP, PMOS_40LP

_R = TypeVar("_R")

#: 1σ of the threshold voltage [V].
VTH_SIGMA = 0.015
#: 3σ relative mobility deviation.
MOBILITY_3SIGMA = 0.10


@dataclass(frozen=True)
class CMOSCorner:
    """CMOS process corner as threshold shift + mobility scale."""

    name: str
    vth_shift: float = 0.0
    mobility_scale: float = 1.0

    def nmos(self, base: MOSFETModel = NMOS_40LP) -> MOSFETModel:
        return base.with_corner(self.vth_shift, self.mobility_scale)

    def pmos(self, base: MOSFETModel = PMOS_40LP) -> MOSFETModel:
        return base.with_corner(self.vth_shift, self.mobility_scale)


@dataclass(frozen=True)
class SimulationCorner:
    """One simulated process point: a CMOS corner paired with an MTJ corner."""

    name: str
    cmos: CMOSCorner
    mtj: MTJCorner
    mtj_variation: MTJVariation = MTJVariation()

    def nmos_model(self) -> MOSFETModel:
        return self.cmos.nmos()

    def pmos_model(self) -> MOSFETModel:
        return self.cmos.pmos()

    def mtj_params(self, base: MTJParameters) -> MTJParameters:
        return self.mtj.apply(base, self.mtj_variation)


CORNERS: Dict[str, SimulationCorner] = {
    "fast": SimulationCorner(
        name="fast",
        cmos=CMOSCorner("fast-leaky", vth_shift=-3.0 * VTH_SIGMA,
                        mobility_scale=1.0 + MOBILITY_3SIGMA),
        mtj=MTJCorner.WORST,
    ),
    "typical": SimulationCorner(
        name="typical",
        cmos=CMOSCorner("nominal"),
        mtj=MTJCorner.TYPICAL,
    ),
    "slow": SimulationCorner(
        name="slow",
        cmos=CMOSCorner("slow-tight", vth_shift=3.0 * VTH_SIGMA,
                        mobility_scale=1.0 - MOBILITY_3SIGMA),
        mtj=MTJCorner.BEST,
    ),
}

#: Canonical simulation order.
CORNER_ORDER = ("fast", "typical", "slow")

#: Table II column order (per-metric extremes derived from the corners).
TABLE_COLUMNS = ("worst", "typical", "best")


def _sweep_corners(
    fn: Callable[[SimulationCorner], _R],
    corners: Sequence[str] = CORNER_ORDER,
    workers: Optional[int] = None,
) -> Dict[str, _R]:
    """Evaluate ``fn`` at every named corner, corners in parallel.

    Returns ``{corner_name: fn(CORNERS[name])}`` preserving the order of
    ``corners``.  ``fn`` must be picklable (module-level function or
    ``functools.partial``) for the process-pool path; the result is
    identical for any ``workers`` setting (see :mod:`repro.parallel`).
    A corner named more than once is evaluated once and its result
    shared (:func:`repro.cache.scheduler.dedup_map` — sound because
    ``fn`` sees only the corner value, never an index or RNG).
    """
    from repro.cache.scheduler import dedup_map

    names = list(corners)
    results = dedup_map(fn, [CORNERS[name] for name in names],
                        workers=workers)
    return dict(zip(names, results))


def sweep_corners_resilient(
    fn: Callable,
    corners: Sequence[str] = CORNER_ORDER,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    checkpoint: Optional[str] = None,
):
    """:func:`_sweep_corners` through the resilient campaign runner.

    ``fn(corner, rng)`` must be picklable and return a JSON-serialisable
    value; a corner whose evaluation times out, crashes its worker, or
    exhausts its retries comes back as ``None`` instead of sinking the
    sweep.  Returns ``({corner_name: result_or_None},
    CampaignReport)`` — check ``report.failures()`` before trusting a
    partially-populated dict.
    """
    from repro.faults.campaign import run_campaign

    names = list(corners)
    report = run_campaign(fn, [CORNERS[name] for name in names],
                          name="corner-sweep", workers=workers,
                          timeout=timeout, retries=retries,
                          checkpoint=checkpoint)
    return dict(zip(names, report.results())), report
