"""Metrics registry: counters, gauges and histograms.

The registry is the *aggregate* half of the observability subsystem: the
tracer answers "where did the time go", the registry answers "how many /
how much" — Newton iterations, Jacobian refactorisations vs reuses, gmin
retries, campaign attempts, per-device-class stamp seconds.

Properties the rest of the stack relies on:

* **Always importable, cheap when idle.**  The global registry exists
  unconditionally; hot loops keep *local* plain-int counters and flush
  once per solve/run, guarded by :func:`repro.obs.is_active`, so the
  disabled path never touches a dict.
* **Mergeable.**  :meth:`MetricsRegistry.snapshot` produces a plain-JSON
  dict and :meth:`MetricsRegistry.merge` folds such a snapshot back in
  (sums for counters and histogram moments, last-write for gauges).
  This is how worker-process metrics return to the parent through
  :func:`repro.parallel.parallel_map` — merge order does not change any
  aggregate, so pooled runs stay deterministic.
* **Deterministic serialisation.**  Snapshots sort keys, so two runs of
  the same workload produce byte-identical ``profile.json`` metric
  sections.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Histogram", "MetricsRegistry", "metrics"]


@dataclass
class Histogram:
    """Streaming summary of an observed distribution (count/sum/min/max).

    Deliberately moment-based rather than bucketed: moments merge exactly
    across worker processes, which is what the parallel collection needs;
    percentile detail belongs in the trace, not the registry.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def to_json(self) -> Dict[str, Any]:
        return {"count": self.count, "total": self.total,
                "min": self.minimum if self.count else None,
                "max": self.maximum if self.count else None}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Histogram":
        h = cls(count=int(data["count"]), total=float(data["total"]))
        if h.count:
            h.minimum = float(data["min"])
            h.maximum = float(data["max"])
        return h


class MetricsRegistry:
    """Named counters, gauges and histograms.

    Thread-safe: recording and aggregation hold an internal lock, so
    concurrent callers (service worker threads, HTTP handler threads,
    threaded ``dedup_map`` users) never lose an increment to the
    read-modify-write race.  The lock is re-entrant because
    :meth:`merge` folds through :meth:`inc`/:meth:`set_gauge`.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._lock = threading.RLock()

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the most recent value of gauge ``name``."""
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Feed one observation into histogram ``name``."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self.counters.get(name, 0)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Clear everything (worker per-task delta collection)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON dict of the current state, keys sorted."""
        with self._lock:
            return {
                "counters": {k: self.counters[k]
                             for k in sorted(self.counters)},
                "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
                "histograms": {k: self.histograms[k].to_json()
                               for k in sorted(self.histograms)},
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) back in:
        counters add, histograms merge moments, gauges take the incoming
        value (last write wins)."""
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.inc(name, value)
            for name, value in snapshot.get("gauges", {}).items():
                self.set_gauge(name, value)
            for name, data in snapshot.get("histograms", {}).items():
                incoming = Histogram.from_json(data)
                hist = self.histograms.get(name)
                if hist is None:
                    self.histograms[name] = incoming
                else:
                    hist.merge(incoming)


#: The process-global registry.  Hot paths gate their flushes on
#: :func:`repro.obs.is_active`; everything else may record freely.
_registry = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _registry
