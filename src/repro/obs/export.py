"""Trace post-processing: schema validation and breakdown aggregation.

Two consumers need to read traces back:

* the ``obs-smoke`` CI job and the tests validate that an emitted
  ``trace.json`` is genuinely Chrome-loadable
  (:func:`validate_chrome_trace`);
* ``repro profile`` turns the span list into a self-time breakdown table
  (:func:`aggregate_spans`, :func:`render_breakdown`) — the flame graph
  flattened to "which phase actually burns the wall-clock".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.obs.tracer import SpanRecord

__all__ = [
    "validate_chrome_trace",
    "SpanAggregate",
    "aggregate_spans",
    "render_breakdown",
]

#: Fields every complete event must carry, with their accepted types.
_EVENT_FIELDS = {
    "name": str,
    "cat": str,
    "ph": str,
    "ts": (int, float),
    "dur": (int, float),
    "pid": int,
    "tid": int,
}


def validate_chrome_trace(trace: Any) -> int:
    """Validate a Chrome ``trace_event`` JSON object; returns the event
    count.  Raises :class:`ValueError` naming the first problem — used by
    the CI schema gate, so messages are specific enough to act on."""
    if not isinstance(trace, dict):
        raise ValueError(f"trace must be a JSON object, got {type(trace).__name__}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace lacks a 'traceEvents' list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for fieldname, types in _EVENT_FIELDS.items():
            if fieldname not in event:
                raise ValueError(f"traceEvents[{i}] lacks {fieldname!r}")
            if not isinstance(event[fieldname], types):
                raise ValueError(
                    f"traceEvents[{i}].{fieldname} has type "
                    f"{type(event[fieldname]).__name__}, expected {types}")
        if event["ph"] != "X":
            raise ValueError(
                f"traceEvents[{i}].ph is {event['ph']!r}; the repro tracer "
                f"only emits complete events ('X')")
        if event["ts"] < 0 or event["dur"] < 0:
            raise ValueError(f"traceEvents[{i}] has negative ts/dur")
    return len(events)


@dataclass
class SpanAggregate:
    """All spans sharing one (category, name), flattened."""

    category: str
    name: str
    count: int = 0
    total_us: float = 0.0
    self_us: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        return {"category": self.category, "name": self.name,
                "count": self.count,
                "total_s": self.total_us / 1e6,
                "self_s": self.self_us / 1e6}


def _self_times(records: Sequence[SpanRecord]) -> List[float]:
    """Self time (dur minus directly-nested children) per record.

    Containment is resolved per (pid, tid) track with a depth-indexed
    stack over the time-sorted spans: a span's parent is the innermost
    enclosing span one depth level up on the same track.
    """
    self_us = [r.dur_us for r in records]
    by_track: Dict[Tuple[int, int], List[int]] = {}
    for i, r in enumerate(records):
        by_track.setdefault((r.pid, r.tid), []).append(i)
    for indices in by_track.values():
        indices.sort(key=lambda i: (records[i].ts_us, -records[i].dur_us))
        open_by_depth: Dict[int, int] = {}
        for i in indices:
            r = records[i]
            parent = open_by_depth.get(r.depth - 1)
            if parent is not None:
                p = records[parent]
                if p.ts_us <= r.ts_us and r.ts_us + r.dur_us <= p.ts_us + p.dur_us + 1e-3:
                    self_us[parent] -= r.dur_us
            open_by_depth[r.depth] = i
            # Deeper levels from an earlier sibling are stale now.
            for depth in [d for d in open_by_depth if d > r.depth]:
                del open_by_depth[depth]
    return self_us


def aggregate_spans(records: Sequence[SpanRecord]) -> List[SpanAggregate]:
    """Collapse spans to per-(category, name) totals with self time,
    sorted by descending self time."""
    self_us = _self_times(records)
    table: Dict[Tuple[str, str], SpanAggregate] = {}
    for r, own in zip(records, self_us):
        key = (r.category, r.name)
        agg = table.get(key)
        if agg is None:
            agg = table[key] = SpanAggregate(r.category, r.name)
        agg.count += 1
        agg.total_us += r.dur_us
        agg.self_us += own
    return sorted(table.values(),
                  key=lambda a: (-a.self_us, a.category, a.name))


def render_breakdown(aggregates: Iterable[SpanAggregate],
                     title: str = "profile breakdown") -> str:
    """Fixed-width self-time table (the ``repro profile`` terminal view)."""
    from repro.analysis.tables import render_text_table

    aggregates = list(aggregates)
    wall = sum(a.self_us for a in aggregates)
    rows = []
    for a in aggregates:
        share = 100.0 * a.self_us / wall if wall > 0 else 0.0
        rows.append((
            a.category or "-", a.name, str(a.count),
            f"{a.total_us / 1e6:.3f}", f"{a.self_us / 1e6:.3f}",
            f"{share:.1f}%",
        ))
    return render_text_table(
        ("category", "span", "count", "total [s]", "self [s]", "share"),
        rows, title=title)
