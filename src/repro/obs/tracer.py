"""Span-based tracer with a near-zero-cost disabled path.

The tracer answers "where does wall-clock go?" for every layer of the
reproduction: analyses, the fast engine, cell characterisation, system
evaluation and fault campaigns all open :func:`span` blocks around their
phases.  Design constraints, in order of importance:

1. **Disabled means free.**  Tracing is off by default; :func:`span`
   then returns one shared :data:`NULL_SPAN` singleton — no object
   allocation, no clock read, no contextvar write.  The instrumented
   code paths pay one module-global load and one ``is None`` test.
   (``benchmarks/bench_obs_overhead.py`` measures this and
   ``BENCH_obs_overhead.json`` records it.)
2. **Nesting is ambient.**  The active span stack lives in a
   :class:`contextvars.ContextVar`, so nested calls — a characterisation
   phase that runs a transient that runs Newton solves — compose without
   threading a context object through every signature, and concurrent
   threads/``asyncio`` tasks each see their own stack.
3. **Exportable.**  Finished spans serialise to plain JSON and to the
   Chrome ``trace_event`` format (``"ph": "X"`` complete events), so a
   ``trace.json`` from ``repro profile`` loads directly in
   ``about://tracing`` or https://ui.perfetto.dev.

Timestamps are microseconds of :func:`time.perf_counter` relative to the
tracer's epoch; each process has its own epoch (the wall-clock epoch is
recorded in the export metadata), so cross-process alignment in a merged
trace is per-``pid``, not global — good enough to read a per-worker
timeline, which is what the parallel runners produce.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SpanRecord",
    "Tracer",
    "NULL_SPAN",
    "span",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
    "is_active",
    "current_span_stack",
]


@dataclass
class SpanRecord:
    """One finished span (immutable once recorded)."""

    name: str
    category: str
    #: Start, microseconds since the owning tracer's epoch.
    ts_us: float
    #: Duration, microseconds.
    dur_us: float
    pid: int
    tid: int
    #: Nesting depth at entry (0 = top level) — lets exporters rebuild
    #: the flame shape without re-deriving containment.
    depth: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name, "category": self.category,
            "ts_us": self.ts_us, "dur_us": self.dur_us,
            "pid": self.pid, "tid": self.tid, "depth": self.depth,
            "attrs": self.attrs,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(data["name"]), category=str(data["category"]),
            ts_us=float(data["ts_us"]), dur_us=float(data["dur_us"]),
            pid=int(data["pid"]), tid=int(data["tid"]),
            depth=int(data["depth"]), attrs=dict(data.get("attrs") or {}),
        )


#: Ambient span-name stack (per thread / async task).  Tuples, not lists:
#: contextvar values must be treated as immutable so resets are exact.
_stack: ContextVar[Tuple[str, ...]] = ContextVar("repro_obs_stack",
                                                 default=())


class Tracer:
    """Collects finished :class:`SpanRecord`\\ s for one session."""

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self.epoch = time.perf_counter()
        #: Wall-clock instant of the epoch, for humans reading exports.
        self.wall_epoch = time.time()
        self.pid = os.getpid()
        self._lock = threading.Lock()

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self.records.append(record)

    def add_records(self, records: List[SpanRecord]) -> None:
        """Merge spans collected elsewhere (worker processes).  The caller
        controls ordering — merging in task order keeps traces
        deterministic regardless of pool scheduling."""
        with self._lock:
            self.records.extend(records)

    def drain(self) -> List[SpanRecord]:
        """Remove and return every record collected so far (the worker
        -side per-task collection primitive)."""
        with self._lock:
            drained = self.records
            self.records = []
        return drained

    # -- export ------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """Plain-JSON form: metadata + the span list in record order."""
        return {
            "kind": "repro-trace",
            "wall_epoch": self.wall_epoch,
            "pid": self.pid,
            "spans": [r.to_json() for r in self.records],
        }

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON object format (complete events).

        Loadable in ``about://tracing`` and Perfetto.  Every event is a
        ``"ph": "X"`` complete event with microsecond ``ts``/``dur``;
        worker-process spans keep their own ``pid`` so each worker gets
        its own track.
        """
        events = [
            {
                "name": r.name,
                "cat": r.category or "repro",
                "ph": "X",
                "ts": r.ts_us,
                "dur": r.dur_us,
                "pid": r.pid,
                "tid": r.tid,
                "args": r.attrs,
            }
            for r in self.records
        ]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "repro.obs",
                "wall_epoch": self.wall_epoch,
                "note": "timestamps are per-pid perf_counter offsets",
            },
        }

    def dump_chrome(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
            handle.write("\n")


class _Span:
    """Active span context manager (only exists while tracing is on)."""

    __slots__ = ("_tracer", "name", "category", "attrs",
                 "_start", "_token", "_depth")

    def __init__(self, tracer: Tracer, name: str, category: str,
                 attrs: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = dict(attrs) if attrs else {}

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the span after entry (e.g. counters known
        only at the end of the traced block)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        stack = _stack.get()
        self._depth = len(stack)
        self._token = _stack.set(stack + (self.name,))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        _stack.reset(self._token)
        tracer = self._tracer
        tracer.record(SpanRecord(
            name=self.name,
            category=self.category,
            ts_us=(self._start - tracer.epoch) * 1e6,
            dur_us=(end - self._start) * 1e6,
            pid=os.getpid(),
            tid=threading.get_ident(),
            depth=self._depth,
            attrs=self.attrs,
        ))
        return False


class _NullSpan:
    """The disabled-path span: a shared, reentrant no-op.

    One module-level instance serves every ``span()`` call while tracing
    is off, so the disabled fast path allocates nothing (asserted by
    ``tests/test_obs_tracer.py``).
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()

#: The active tracer, or None when tracing is disabled (the default).
_tracer: Optional[Tracer] = None


def span(name: str, category: str = "",
         attrs: Optional[Dict[str, Any]] = None):
    """A context manager timing the enclosed block as one span.

    With tracing disabled this returns the shared :data:`NULL_SPAN` — the
    call costs one global load and one comparison.  ``attrs`` (a dict,
    deliberately not ``**kwargs`` so the disabled path allocates nothing)
    is copied into the span at entry; more can be attached with
    :meth:`annotate`.
    """
    tracer = _tracer
    if tracer is None:
        return NULL_SPAN
    return _Span(tracer, name, category, attrs)


def enable_tracing(fresh: bool = True) -> Tracer:
    """Turn tracing on and return the active tracer.

    ``fresh=True`` (default) installs a new empty tracer and clears the
    ambient span stack — important in forked worker processes, which
    inherit the parent's tracer state and must not re-export its spans.
    ``fresh=False`` keeps an already-active tracer (idempotent enable).
    """
    global _tracer
    if _tracer is None or fresh:
        _tracer = Tracer()
        _stack.set(())
    return _tracer


def disable_tracing() -> Optional[Tracer]:
    """Turn tracing off; returns the tracer (with its records) so callers
    can export what was collected."""
    global _tracer
    tracer = _tracer
    _tracer = None
    return tracer


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or None when tracing is disabled."""
    return _tracer


def is_active() -> bool:
    """True while tracing is enabled."""
    return _tracer is not None


def current_span_stack() -> Tuple[str, ...]:
    """Names of the spans currently open in this context, outermost
    first.  Empty when tracing is disabled or no span is open — the
    error-context hook in :mod:`repro.errors` relies on this being safe
    to call unconditionally."""
    if _tracer is None:
        return ()
    return _stack.get()
