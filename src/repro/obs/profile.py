"""Self-profiled named flows: ``repro profile <flow>``.

:func:`run_profile` enables a fresh tracing session, runs one of the
named flows under it, and packages the outcome three ways:

* a **breakdown table** (per-span self/total time, printed by the CLI),
* ``profile.json`` — counters, histograms, aggregated spans, and a
  solver self-check (engine counters re-derived from a reference
  transient and compared against the registry),
* ``trace.json`` — the Chrome ``trace_event`` export, loadable in
  ``about://tracing`` / Perfetto.

Flows:

* ``table2`` — latch characterisation (paper Table II) followed by a
  system-accounting preview, so the trace covers the engine, analysis,
  characterize and evaluate layers end to end;
* ``table3`` — the benchmark system-flow sweep (paper Table III);
* ``campaign`` — a small zero-fault restore campaign through the
  resilient runner (covers the campaign layer).

``fast=True`` shrinks each flow to a seconds-scale smoke (typical
corner only, coarser timestep, fewer benchmarks/samples) — the mode CI
runs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import AnalysisError
from repro.obs.export import SpanAggregate, aggregate_spans, render_breakdown
from repro.obs.metrics import metrics
from repro.obs.tracer import Tracer, disable_tracing, enable_tracing, span

#: Flow names accepted by :func:`run_profile`.
FLOWS = ("table2", "table3", "campaign")

#: Coarse timestep for the fast profile modes [s].
FAST_DT = 4e-12


@dataclass
class ProfileResult:
    """Everything :func:`run_profile` measured."""

    flow: str
    fast: bool
    wall_s: float
    counters: Dict[str, float]
    histograms: Dict[str, dict]
    aggregates: List[SpanAggregate]
    #: Span categories present in the trace (sorted).
    categories: List[str]
    self_check: Dict[str, object]
    trace_path: str
    profile_path: str
    breakdown: str = field(repr=False, default="")

    def to_json(self) -> dict:
        return {
            "flow": self.flow,
            "fast": self.fast,
            "wall_s": self.wall_s,
            "counters": self.counters,
            "histograms": self.histograms,
            "categories": self.categories,
            "self_check": self.self_check,
            "spans": [agg.to_json() for agg in self.aggregates],
            "trace": os.path.basename(self.trace_path),
        }


# ---------------------------------------------------------------------------
# Flow bodies (run under an active tracing session)
# ---------------------------------------------------------------------------


def _flow_table2(fast: bool, workers: Optional[int]) -> None:
    from repro.analysis.tables import _build_table2, render_table2
    from repro.core.evaluate import costs_from_layout, evaluate_system

    corners = ["typical"] if fast else None
    kwargs = {"workers": workers}
    if corners is not None:
        kwargs["corners"] = corners
    data = _build_table2(dt=FAST_DT if fast else 1e-12,
                         include_write=not fast, **kwargs)
    render_table2(data)
    # System-accounting preview from the measured cell energies, so the
    # trace also exercises the evaluate layer.
    costs = costs_from_layout(
        energy_1bit=data.standard["typical"].read_energy,
        energy_2bit=data.proposed["typical"].read_energy)
    evaluate_system("profile-preview", total_flip_flops=100, merged=30,
                    costs=costs)


def _flow_table3(fast: bool, workers: Optional[int]) -> None:
    from repro.analysis.tables import _build_table3, render_table3
    from repro.physd.benchmarks import BENCHMARKS

    names = list(BENCHMARKS)[:2] if fast else None
    render_table3(_build_table3(names, workers=workers))


def _flow_campaign(fast: bool, workers: Optional[int]) -> None:
    from repro.faults.analyses import _restore_failure_rate

    _restore_failure_rate(
        "standard", [], samples=4 if fast else 20, dt=FAST_DT,
        workers=1 if workers is None else workers)


_FLOW_BODIES: Dict[str, Callable[[bool, Optional[int]], None]] = {
    "table2": _flow_table2,
    "table3": _flow_table3,
    "campaign": _flow_campaign,
}


# ---------------------------------------------------------------------------
# Solver self-check
# ---------------------------------------------------------------------------


def _solver_self_check() -> Dict[str, object]:
    """Run a reference transient and compare the registry's counter deltas
    against the engine's own :class:`SolverStats` totals.

    The acceptance contract of the observability subsystem: what the
    metrics registry reports is exactly what the solver did, not an
    approximation layered on top.
    """
    from repro.cache.store import bypassed
    from repro.spice.analysis.transient import run_transient
    from repro.spice.netlist import Circuit

    circuit = Circuit("obs-self-check")
    circuit.add_vsource("vs", "in", "0", 1.0)
    circuit.add_resistor("r1", "in", "out", 1e3)
    circuit.add_capacitor("c1", "out", "0", 1e-12)

    before = metrics().snapshot()["counters"]
    # The check compares registry deltas against a *fresh* solve's stats,
    # so the result cache (if active) must not intercept this transient.
    with span("profile.self_check", category="profile"), bypassed():
        result = run_transient(circuit, stop_time=50e-12, dt=1e-12,
                               initial_voltages={"in": 1.0})
    after = metrics().snapshot()["counters"]

    def delta(name: str) -> float:
        return after.get(name, 0.0) - before.get(name, 0.0)

    stats = result.stats
    checks = {
        "newton_iterations": (delta("engine.newton_iterations"),
                              stats.iterations),
        "jacobian_factorizations": (delta("engine.jacobian_factorizations"),
                                    stats.factorizations),
        "jacobian_reuses": (delta("engine.jacobian_reuses"), stats.reuses),
        "timesteps": (delta("engine.timesteps"), stats.timesteps),
    }
    return {
        "ok": all(registry == engine for registry, engine in checks.values()),
        "counters": {name: {"registry": registry, "engine": engine}
                     for name, (registry, engine) in checks.items()},
    }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_profile(
    flow: str,
    fast: bool = False,
    out_dir: str = ".",
    workers: Optional[int] = None,
) -> ProfileResult:
    """Run the named flow under a fresh tracing session and write
    ``profile.json`` + ``trace.json`` into ``out_dir``."""
    if flow not in FLOWS:
        raise AnalysisError(
            f"unknown profile flow {flow!r}; expected one of {FLOWS}")
    body = _FLOW_BODIES[flow]

    os.makedirs(out_dir, exist_ok=True)
    tracer: Tracer = enable_tracing(fresh=True)
    try:
        start = time.perf_counter()
        with span(f"profile.{flow}", category="profile",
                  attrs={"fast": fast}):
            body(fast, workers)
        self_check = _solver_self_check()
        wall_s = time.perf_counter() - start
        snapshot = metrics().snapshot()
        records = list(tracer.records)
        chrome = tracer.to_chrome()
    finally:
        disable_tracing()

    aggregates = aggregate_spans(records)
    categories = sorted({r.category or "repro" for r in records})
    trace_path = os.path.join(out_dir, "trace.json")
    profile_path = os.path.join(out_dir, "profile.json")
    with open(trace_path, "w", encoding="utf-8") as handle:
        json.dump(chrome, handle, indent=1)
        handle.write("\n")

    result = ProfileResult(
        flow=flow, fast=fast, wall_s=round(wall_s, 3),
        counters=snapshot["counters"], histograms=snapshot["histograms"],
        aggregates=aggregates, categories=categories,
        self_check=self_check, trace_path=trace_path,
        profile_path=profile_path,
        breakdown=render_breakdown(aggregates, title=f"profile: {flow} "
                                   f"({'fast' if fast else 'full'}, "
                                   f"{wall_s:.2f} s wall)"),
    )
    with open(profile_path, "w", encoding="utf-8") as handle:
        json.dump(result.to_json(), handle, indent=2)
        handle.write("\n")
    return result
