"""Worker-side observability collection for process pools.

When tracing is active in the parent, :func:`repro.parallel.parallel_map`
wraps the task function in :class:`ObsTask` and installs
:func:`worker_init` as the pool initializer.  Each worker then runs its
own tracer/registry session; every task ships its span and metric deltas
back piggy-backed on the result, and the parent folds them in **in item
order** — so the merged trace and metrics are deterministic regardless of
pool scheduling, worker count or chunking (the same invariant
``parallel_map`` already guarantees for results).

The machinery is invisible to task functions: they call
:func:`repro.obs.span` / :func:`repro.obs.metrics` exactly as in-process
code does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.obs.metrics import metrics as _registry
from repro.obs import tracer as _tracer_mod

__all__ = ["ObsTask", "WorkerPayload", "worker_init", "merge_payload"]


@dataclass
class WorkerPayload:
    """One task's result plus the observability deltas it produced."""

    result: Any
    spans: List[Dict[str, Any]]
    metrics: Dict[str, Any]


def worker_init() -> None:
    """Pool initializer: start a fresh tracer session in the worker.

    ``fresh=True`` matters under the ``fork`` start method — the child
    inherits the parent's tracer *including its records*, which must not
    be exported a second time.
    """
    _tracer_mod.enable_tracing(fresh=True)
    _registry().reset()


class ObsTask:
    """Picklable wrapper running ``fn`` with per-task delta collection."""

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, item: Any) -> WorkerPayload:
        tracer = _tracer_mod.get_tracer()
        if tracer is None:  # initializer skipped (unusual pool impl)
            tracer = _tracer_mod.enable_tracing(fresh=True)
        registry = _registry()
        registry.reset()
        tracer.drain()  # stray spans from a previous task's teardown
        result = self.fn(item)
        spans = [r.to_json() for r in tracer.drain()]
        return WorkerPayload(result=result, spans=spans,
                             metrics=registry.snapshot())


def merge_payload(payload: WorkerPayload) -> Any:
    """Fold one worker payload into the parent session; returns the bare
    task result.  Called in item order by ``parallel_map``."""
    tracer = _tracer_mod.get_tracer()
    if tracer is not None and payload.spans:
        tracer.add_records([_tracer_mod.SpanRecord.from_json(s)
                            for s in payload.spans])
    _registry().merge(payload.metrics)
    return payload.result
