"""Observability: solver tracing, metrics, and profiling flows.

The subsystem has four pieces:

* :mod:`repro.obs.tracer` — span-based wall-clock tracing with a
  contextvar-nested stack, a free disabled path, and Chrome
  ``trace_event`` export (``about://tracing`` / Perfetto);
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms with exact cross-process merging;
* :mod:`repro.obs.worker` — per-task delta collection that rides worker
  results back through :func:`repro.parallel.parallel_map`;
* :mod:`repro.obs.profile` — the ``repro profile`` flows: run a named
  workload self-traced, print a self-time breakdown, emit
  ``profile.json`` + ``trace.json``.

Instrumented layers: the fast MNA engine (Newton iterations, Jacobian
factorisations vs reuses, per-device-class stamp time), the DC/transient
analyses, cell characterisation phases, system benchmark evaluation and
the fault-campaign runner.  Instrumentation is **off by default**:
:func:`span` returns a shared no-op and hot loops keep local counters
that are only flushed into the registry while a session is active, so
the untraced simulator pays a few branch tests per Newton solve
(measured in ``BENCH_obs_overhead.json``).

Quick start::

    from repro import obs

    tracer = obs.enable_tracing()
    with obs.span("my-experiment", category="user"):
        run_workload()
    obs.disable_tracing()
    tracer.dump_chrome("trace.json")          # -> about://tracing
    print(obs.metrics().snapshot()["counters"])

Errors raised inside spans carry the stack: every
:class:`repro.errors.ReproError` captures :func:`current_span_stack` and
a metrics snapshot at construction time (``exc.span_stack``,
``exc.metrics_snapshot``), so a failed Newton solve reports *where in
the flow* it died.
"""

from __future__ import annotations

from repro.obs.export import (
    SpanAggregate,
    aggregate_spans,
    render_breakdown,
    validate_chrome_trace,
)
from repro.obs.metrics import Histogram, MetricsRegistry, metrics
from repro.obs.tracer import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    current_span_stack,
    disable_tracing,
    enable_tracing,
    get_tracer,
    is_active,
    span,
)

__all__ = [
    "NULL_SPAN",
    "SpanRecord",
    "Tracer",
    "span",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
    "is_active",
    "current_span_stack",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "SpanAggregate",
    "aggregate_spans",
    "render_breakdown",
    "validate_chrome_trace",
    "error_context",
]


def error_context():
    """``(span_stack, metrics_snapshot)`` for error construction.

    Returns ``((), None)`` while observability is inactive so the error
    classes can call this unconditionally at near-zero cost.
    """
    if not is_active():
        return (), None
    return current_span_stack(), metrics().snapshot()
