"""Declarative solver-resilience policy.

A :class:`RecoveryPolicy` is the single configuration object for the
recovery ladder (:mod:`repro.recovery.ladder`), the numerical health
guards (:mod:`repro.recovery.health`) and the failure forensics
(:mod:`repro.recovery.forensics`).  It is a *frozen* dataclass on
purpose: every rung of the ladder is a pure function of (policy,
failing step), so a recovered solve is exactly as deterministic as a
clean one — same bits for any worker count, warm or cold cache.

The policy's :meth:`~RecoveryPolicy.fingerprint` enters the cache-key
request record of every transient and DC solve (see
:func:`repro.cache.keys.transient_request`): two runs that differ only
in how they would *recover* never share a cache entry, even when
neither actually climbed a rung.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Tuple

from repro.errors import AnalysisError

#: Rung identifiers, referenced by :attr:`RecoveryPolicy.rungs`.
RUNG_GMIN = "gmin"
RUNG_DAMPING = "damping"
RUNG_TIMESTEP_CUT = "timestep-cut"
RUNG_INTEGRATOR_SWITCH = "integrator-switch"
RUNG_ENGINE_FALLBACK = "engine-fallback"

#: All rung names the ladder implements (validation set).
KNOWN_RUNGS = (RUNG_GMIN, RUNG_DAMPING, RUNG_TIMESTEP_CUT,
               RUNG_INTEGRATOR_SWITCH, RUNG_ENGINE_FALLBACK)

#: Default escalation order.  ``gmin`` stays first so that circuits the
#: legacy single hard-coded retry (transient.py's old ``1e-9``) used to
#: rescue keep producing bit-identical waveforms under the default
#: policy.
DEFAULT_RUNGS = (RUNG_GMIN, RUNG_DAMPING, RUNG_TIMESTEP_CUT,
                 RUNG_INTEGRATOR_SWITCH, RUNG_ENGINE_FALLBACK)

#: gmin values tried by the ``gmin`` rung (strong to weak); the first
#: entry reproduces the historical hard-coded strong-gmin retry.
DEFAULT_GMIN_LADDER = (1e-9,)

#: ``damping`` rung: multiply the per-iteration dV clamp by this factor.
DEFAULT_DAMPING_SCALE = 0.25

#: ``damping`` rung: multiply the iteration budget by this factor
#: (tighter damping needs more, smaller steps).
DEFAULT_ITERATION_SCALE = 2

#: ``timestep-cut`` rung: maximum halvings of the failing step (the
#: interval is re-covered with 2^k substeps, i.e. the step re-doubles
#: back to the grid by construction).
DEFAULT_MAX_TIMESTEP_CUTS = 3

#: ``engine-fallback`` rung: escalation order; the ladder falls from
#: the current engine toward the end of this tuple, never backwards.
DEFAULT_ENGINE_ORDER = ("sparse", "fast", "naive")

#: Estimate the 1-norm condition number on every Nth new LU
#: factorisation (0 disables).  Interval-gated so the Hager probe stays
#: inside the <5% healthy-circuit benchmark budget.
DEFAULT_CONDITION_INTERVAL = 4

#: Condition-number threshold above which a WARN counter is recorded in
#: the obs metrics registry (double precision holds ~16 digits; 1e13
#: leaves ~3 trustworthy digits in the solution).
DEFAULT_CONDITION_WARN = 1e13

#: DC gmin homotopy: starting conductance to ground [S] and the
#: per-stage reduction factor (1e-2 → /10 per stage reproduces the
#: historical ``solve_dc`` ladder exactly).
DEFAULT_DC_GMIN_START = 1e-2
DEFAULT_DC_GMIN_REDUCTION = 10.0

#: DC source-stepping homotopy (tried when gmin homotopy fails): the
#: sequence of source scale factors, warm-started in order; must end
#: at 1.0.
DEFAULT_DC_SOURCE_STEPS = (0.25, 0.5, 0.75, 1.0)

#: Forensics: maximum failing-oracle evaluations the greedy netlist
#: shrinker may spend when a ladder exhausts.
DEFAULT_SHRINK_BUDGET = 32


@dataclass(frozen=True)
class RecoveryPolicy:
    """Frozen configuration of the whole resilience subsystem.

    Every field is part of the cache-key fingerprint; change one and
    previously cached results stop matching (by design — a different
    ladder can produce different recovered bits).
    """

    #: Master switch: ``False`` turns every rung off (a failing step
    #: raises immediately, with forensics still attached).
    enabled: bool = True
    rungs: Tuple[str, ...] = DEFAULT_RUNGS
    gmin_ladder: Tuple[float, ...] = DEFAULT_GMIN_LADDER
    damping_scale: float = DEFAULT_DAMPING_SCALE
    iteration_scale: int = DEFAULT_ITERATION_SCALE
    max_timestep_cuts: int = DEFAULT_MAX_TIMESTEP_CUTS
    engine_order: Tuple[str, ...] = DEFAULT_ENGINE_ORDER
    condition_interval: int = DEFAULT_CONDITION_INTERVAL
    condition_warn: float = DEFAULT_CONDITION_WARN
    dc_gmin_start: float = DEFAULT_DC_GMIN_START
    dc_gmin_reduction: float = DEFAULT_DC_GMIN_REDUCTION
    dc_source_steps: Tuple[float, ...] = DEFAULT_DC_SOURCE_STEPS
    #: Run the greedy netlist shrinker when a ladder exhausts, so the
    #: forensics bundle carries a minimal reproducing circuit.
    shrink_on_failure: bool = True
    shrink_budget: int = DEFAULT_SHRINK_BUDGET

    def __post_init__(self) -> None:
        for rung in self.rungs:
            if rung not in KNOWN_RUNGS:
                raise AnalysisError(
                    f"unknown recovery rung {rung!r}; expected one of "
                    f"{KNOWN_RUNGS}")
        if any(g <= 0.0 for g in self.gmin_ladder):
            raise AnalysisError("gmin_ladder values must be positive")
        if not 0.0 < self.damping_scale < 1.0:
            raise AnalysisError(
                f"damping_scale must be in (0, 1), got {self.damping_scale}")
        if self.iteration_scale < 1:
            raise AnalysisError("iteration_scale must be >= 1")
        if self.max_timestep_cuts < 0:
            raise AnalysisError("max_timestep_cuts must be >= 0")
        if self.dc_gmin_reduction <= 1.0:
            raise AnalysisError("dc_gmin_reduction must be > 1")
        if self.dc_source_steps and self.dc_source_steps[-1] != 1.0:
            raise AnalysisError("dc_source_steps must end at 1.0")

    def fingerprint(self) -> Dict[str, Any]:
        """Canonical-JSON form for the cache-key request record."""
        record: Dict[str, Any] = {}
        for f in sorted(fields(self), key=lambda f: f.name):
            value = getattr(self, f.name)
            record[f.name] = list(value) if isinstance(value, tuple) else value
        return record

    @classmethod
    def from_fingerprint(cls, record: Dict[str, Any]) -> "RecoveryPolicy":
        """Rebuild the exact policy a request record describes (used by
        cache verification to replay entries)."""
        names = {f.name for f in fields(cls)}
        kwargs: Dict[str, Any] = {}
        for name, value in record.items():
            if name not in names:
                raise AnalysisError(
                    f"unknown recovery-policy field {name!r} in request "
                    f"record")
            kwargs[name] = tuple(value) if isinstance(value, list) else value
        return cls(**kwargs)

    def fallback_engines(self, engine: str) -> Tuple[str, ...]:
        """Engines the ``engine-fallback`` rung may try after ``engine``
        (strictly later in :attr:`engine_order`; never falls upward)."""
        order = list(self.engine_order)
        if engine in order:
            return tuple(order[order.index(engine) + 1:])
        return tuple(order)


#: Shared default: the policy every analysis uses unless the caller
#: passes its own.
DEFAULT_POLICY = RecoveryPolicy()


def recovery_config_fingerprint() -> Dict[str, Any]:
    """The recovery configuration a cache key must capture.  The
    per-call policy fingerprint travels in the request record itself;
    this function exists so the module's defaults are auditable by the
    devlint ``dev.config-constant-unfingerprinted`` rule — every
    constant above feeds :data:`DEFAULT_POLICY` and hence the keys."""
    return {
        "known_rungs": list(KNOWN_RUNGS),
        "rung_names": [RUNG_GMIN, RUNG_DAMPING, RUNG_TIMESTEP_CUT,
                       RUNG_INTEGRATOR_SWITCH, RUNG_ENGINE_FALLBACK],
        "defaults": DEFAULT_POLICY.fingerprint(),
        "default_fields": {
            "rungs": list(DEFAULT_RUNGS),
            "gmin_ladder": list(DEFAULT_GMIN_LADDER),
            "damping_scale": DEFAULT_DAMPING_SCALE,
            "iteration_scale": DEFAULT_ITERATION_SCALE,
            "max_timestep_cuts": DEFAULT_MAX_TIMESTEP_CUTS,
            "engine_order": list(DEFAULT_ENGINE_ORDER),
            "condition_interval": DEFAULT_CONDITION_INTERVAL,
            "condition_warn": DEFAULT_CONDITION_WARN,
            "dc_gmin_start": DEFAULT_DC_GMIN_START,
            "dc_gmin_reduction": DEFAULT_DC_GMIN_REDUCTION,
            "dc_source_steps": list(DEFAULT_DC_SOURCE_STEPS),
            "shrink_budget": DEFAULT_SHRINK_BUDGET,
        },
    }
