"""Numerical health guards: NaN/Inf detection, condition estimates,
and the per-analysis :class:`SolverHealth` record.

The condition estimate is Hager's 1-norm estimator (the algorithm
behind LAPACK's ``xLACON``): a handful of extra triangular solves
against an existing LU factorisation yields a lower bound on
``‖A⁻¹‖₁`` that is almost always within a small factor of the truth,
so ``κ₁ ≈ ‖A‖₁ · est(‖A⁻¹‖₁)`` costs O(n²) per probe instead of the
O(n³) of an explicit inverse.  Probes are interval-gated by the
:class:`~repro.recovery.policy.RecoveryPolicy` so healthy circuits pay
for at most one in every ``condition_interval`` factorisations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.recovery.policy import DEFAULT_POLICY, RecoveryPolicy

#: Ceiling applied to stored condition estimates so the health record
#: stays canonical-JSON serialisable (no IEEE infinities in payloads).
CONDITION_CAP = 1e300


@dataclass
class SolverHealth:
    """What the resilience subsystem observed during one analysis.

    Attached to :class:`~repro.spice.analysis.transient.TransientResult`
    (and round-tripped through the result cache) so a recovered run is
    distinguishable from a clean one without re-running it.
    """

    #: Successful rung firings by rung name.
    rung_counts: Dict[str, int] = field(default_factory=dict)
    #: Total rung *attempts* during recoveries (failed rungs included).
    rungs_climbed: int = 0
    #: Timesteps that needed any rung to complete.
    recovered_steps: int = 0
    #: NaN/Inf solutions caught by the finiteness guard.
    nonfinite_trips: int = 0
    #: Condition probes run / probes that crossed the WARN threshold.
    condition_checks: int = 0
    condition_warnings: int = 0
    #: Largest κ₁ estimate seen (0.0 when never probed).
    worst_condition: float = 0.0
    #: DC recovery: gmin homotopy stages and source-stepping stages run.
    dc_gmin_stages: int = 0
    dc_source_steps: int = 0

    # -- recording ---------------------------------------------------------

    def note_rung_attempt(self, rung: str) -> None:
        self.rungs_climbed += 1

    def note_rung_success(self, rung: str) -> None:
        self.rung_counts[rung] = self.rung_counts.get(rung, 0) + 1

    def note_recovered_step(self) -> None:
        self.recovered_steps += 1

    def note_nonfinite(self) -> None:
        self.nonfinite_trips += 1

    def note_condition(self, estimate: float, warn_threshold: float) -> bool:
        """Record one κ₁ estimate; returns True when it crossed the
        WARN threshold."""
        estimate = min(float(estimate), CONDITION_CAP)
        self.condition_checks += 1
        if estimate > self.worst_condition:
            self.worst_condition = estimate
        if estimate > warn_threshold:
            self.condition_warnings += 1
            return True
        return False

    @property
    def clean(self) -> bool:
        """True when no rung fired and no guard tripped."""
        return (not self.rung_counts and self.recovered_steps == 0
                and self.nonfinite_trips == 0
                and self.condition_warnings == 0
                and self.dc_source_steps == 0)

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "SolverHealth") -> None:
        for rung in sorted(other.rung_counts):
            self.rung_counts[rung] = (self.rung_counts.get(rung, 0)
                                      + other.rung_counts[rung])
        self.rungs_climbed += other.rungs_climbed
        self.recovered_steps += other.recovered_steps
        self.nonfinite_trips += other.nonfinite_trips
        self.condition_checks += other.condition_checks
        self.condition_warnings += other.condition_warnings
        self.worst_condition = max(self.worst_condition,
                                   other.worst_condition)
        self.dc_gmin_stages += other.dc_gmin_stages
        self.dc_source_steps += other.dc_source_steps

    def flush_to(self, registry) -> None:
        """Add the ladder counters to an obs
        :class:`~repro.obs.metrics.MetricsRegistry` (the ``recovery.*``
        namespace the CI smoke job asserts on)."""
        for rung in sorted(self.rung_counts):
            registry.inc(f"recovery.rung.{rung}", self.rung_counts[rung])
        if self.rungs_climbed:
            registry.inc("recovery.rungs_climbed", self.rungs_climbed)
        if self.recovered_steps:
            registry.inc("recovery.recovered_steps", self.recovered_steps)
        if self.nonfinite_trips:
            registry.inc("recovery.nonfinite_trips", self.nonfinite_trips)
        if self.condition_checks:
            registry.inc("recovery.condition_checks", self.condition_checks)
        if self.condition_warnings:
            registry.inc("recovery.condition_warnings",
                         self.condition_warnings)
        if self.worst_condition > 0.0:
            registry.set_gauge("recovery.worst_condition",
                               self.worst_condition)
        if self.dc_gmin_stages:
            registry.inc("recovery.dc_gmin_stages", self.dc_gmin_stages)
        if self.dc_source_steps:
            registry.inc("recovery.dc_source_steps", self.dc_source_steps)

    # -- serialisation (cache payloads, forensics bundles) ----------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "rung_counts": {k: self.rung_counts[k]
                            for k in sorted(self.rung_counts)},
            "rungs_climbed": self.rungs_climbed,
            "recovered_steps": self.recovered_steps,
            "nonfinite_trips": self.nonfinite_trips,
            "condition_checks": self.condition_checks,
            "condition_warnings": self.condition_warnings,
            "worst_condition": self.worst_condition,
            "dc_gmin_stages": self.dc_gmin_stages,
            "dc_source_steps": self.dc_source_steps,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SolverHealth":
        return cls(
            rung_counts={str(k): int(v)
                         for k, v in dict(data.get("rung_counts",
                                                   {})).items()},
            rungs_climbed=int(data.get("rungs_climbed", 0)),
            recovered_steps=int(data.get("recovered_steps", 0)),
            nonfinite_trips=int(data.get("nonfinite_trips", 0)),
            condition_checks=int(data.get("condition_checks", 0)),
            condition_warnings=int(data.get("condition_warnings", 0)),
            worst_condition=float(data.get("worst_condition", 0.0)),
            dc_gmin_stages=int(data.get("dc_gmin_stages", 0)),
            dc_source_steps=int(data.get("dc_source_steps", 0)),
        )


def guard_finite(x: np.ndarray, where: str,
                 health: Optional[SolverHealth] = None) -> np.ndarray:
    """Raise :class:`ConvergenceError` when the solution carries a NaN
    or Inf — converted to a ladder-recoverable failure instead of
    silently poisoning every later timestep."""
    if np.all(np.isfinite(x)):
        return x
    if health is not None:
        health.note_nonfinite()
    raise ConvergenceError(
        f"non-finite solution ({where}): "
        f"{int(np.size(x) - np.count_nonzero(np.isfinite(x)))} of "
        f"{int(np.size(x))} entries are NaN/Inf",
        state=x.copy(),
    )


def hager_inverse_norm1(solve: Callable[[np.ndarray], np.ndarray],
                        solve_t: Callable[[np.ndarray], np.ndarray],
                        n: int, max_iterations: int = 5) -> float:
    """Hager's estimate of ``‖A⁻¹‖₁`` from solve callbacks.

    ``solve(b)`` must return ``A⁻¹·b`` and ``solve_t(b)`` must return
    ``A⁻ᵀ·b`` (both available for free from an LU factorisation).  The
    iteration is deterministic: the start vector and all tie-breaks are
    fixed, so two runs probe identically.
    """
    if n == 0:
        return 0.0
    x = np.full(n, 1.0 / n)
    estimate = 0.0
    for _ in range(max_iterations):
        y = solve(x)
        if not np.all(np.isfinite(y)):
            return CONDITION_CAP
        estimate = float(np.abs(y).sum())
        xi = np.sign(y)
        xi[xi == 0.0] = 1.0
        z = solve_t(xi)
        if not np.all(np.isfinite(z)):
            return CONDITION_CAP
        j = int(np.argmax(np.abs(z)))
        if float(np.abs(z[j])) <= float(z @ x):
            break
        x = np.zeros(n)
        x[j] = 1.0
    return estimate


class ConditionProbe:
    """Interval-gated κ₁ estimator attached to a Newton solver.

    The solvers (:class:`~repro.spice.analysis.engine.FastNewtonSolver`
    and the sparse mirror) call :meth:`after_factorization` from inside
    ``_factorize`` with closures over the fresh LU; the probe decides —
    purely from its own deterministic counter — whether this
    factorisation gets estimated.  ``estimate_dense`` is the naive-path
    variant for solvers that do not keep a factorisation around.
    """

    def __init__(self, health: SolverHealth,
                 policy: RecoveryPolicy = DEFAULT_POLICY):
        self.health = health
        self.interval = policy.condition_interval
        self.warn_threshold = policy.condition_warn
        self._seen = 0

    def _due(self) -> bool:
        if self.interval <= 0:
            return False
        self._seen += 1
        return (self._seen - 1) % self.interval == 0

    def after_factorization(self,
                            solve: Callable[[np.ndarray], np.ndarray],
                            solve_t: Callable[[np.ndarray], np.ndarray],
                            norm1: Callable[[], float], n: int) -> None:
        """Probe a fresh LU factorisation (``norm1`` lazily computes
        ``‖A‖₁`` so skipped probes cost nothing)."""
        if not self._due():
            return
        kappa = norm1() * hager_inverse_norm1(solve, solve_t, n)
        self._record(kappa)

    def estimate_dense(self, matrix: np.ndarray) -> None:
        """Probe a dense system directly (naive engine: no retained LU,
        so the O(n³) explicit estimate is fine — it replaces one of the
        dense solves the naive path performs anyway)."""
        if not self._due():
            return
        n = matrix.shape[0]
        if n == 0:
            return
        try:
            kappa = float(np.linalg.cond(matrix, 1))
        except np.linalg.LinAlgError:
            kappa = CONDITION_CAP
        if not np.isfinite(kappa):
            kappa = CONDITION_CAP
        self._record(kappa)

    def _record(self, kappa: float) -> None:
        warned = self.health.note_condition(kappa, self.warn_threshold)
        if warned:
            from repro.obs import is_active as _obs_active
            from repro.obs import metrics as _obs_metrics

            if _obs_active():
                _obs_metrics().inc("recovery.condition_warnings.live", 1)
