"""The ``repro recovery smoke`` flow: corpus under the ladder, on CI.

Runs every pathological corpus entry on all three engines, twice each
(recovery off → must hard-fail, recovery on → must complete or, for
the exhaustion entry, fail *with* a forensics bundle), checks that the
expected rungs fired and that recovered waveforms agree across engines
within :data:`WAVEFORM_TOL`, then writes:

* ``<out>/recovery_metrics.json`` — the observability counter dump,
  including the ``recovery.*`` ladder counters;
* ``<out>/forensics.json`` — the forensics bundle from the
  ladder-exhaustion entry (rung history, stamped-matrix digest,
  minimal reproducing netlist);
* ``<out>/smoke_report.json`` — the structured per-entry outcomes.

The flow itself never raises for corpus-level trouble: every deviation
from the tuned expectations becomes a ``problems`` line in the report
and a non-zero exit from the CLI.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConvergenceError
from repro.recovery.corpus import CorpusEntry, corpus_entries
from repro.recovery.policy import RecoveryPolicy

#: Cross-engine agreement bound for recovered waveforms [V].
WAVEFORM_TOL = 1e-6

ENGINES = ("naive", "fast", "sparse")


def _run_entry(entry: CorpusEntry, engine: str,
               recovery: Optional[RecoveryPolicy]) -> Dict[str, Any]:
    """One (entry, engine, policy) run, reduced to a JSON-safe outcome."""
    try:
        result = entry.run(engine=engine, recovery=recovery)
    except ConvergenceError as exc:
        bundle = exc.forensics
        return {"status": "failed", "error": str(exc),
                "forensics": None if bundle is None else bundle.to_json()}
    health = result.health
    return {
        "status": "ok",
        "rung_counts": dict(health.rung_counts) if health else {},
        "recovered_steps": health.recovered_steps if health else 0,
        "condition_warnings": health.condition_warnings if health else 0,
        "worst_condition": health.worst_condition if health else 0.0,
        "voltages": result.node_voltages,
    }


def _check_entry(entry: CorpusEntry, outcomes: Dict[str, Dict[str, Any]],
                 disabled: Dict[str, Dict[str, Any]],
                 problems: List[str]) -> None:
    """Append a problem line for every violated corpus expectation."""
    pathological = bool(entry.expect_rungs) or entry.expect_failure
    for engine in outcomes:
        on, off = outcomes[engine], disabled[engine]
        where = f"{entry.name}/{engine}"
        if pathological and off["status"] != "failed":
            problems.append(f"{where}: completed with recovery disabled "
                            f"(entry is supposed to be pathological)")
        if entry.expect_failure:
            if on["status"] != "failed":
                problems.append(f"{where}: expected ladder exhaustion but "
                                f"the run completed")
            elif on["forensics"] is None:
                problems.append(f"{where}: exhaustion raised without a "
                                f"forensics bundle")
            continue
        if on["status"] != "ok":
            problems.append(f"{where}: hard failure under recovery: "
                            f"{on['error']}")
            continue
        for rung in entry.expect_rungs:
            if on["rung_counts"].get(rung, 0) <= 0:
                problems.append(f"{where}: expected rung {rung!r} never "
                                f"fired (counts: {on['rung_counts']})")
        if entry.expect_condition_warnings and on["condition_warnings"] <= 0:
            problems.append(f"{where}: expected condition warnings, got 0")

    waves = {e: o["voltages"] for e, o in outcomes.items()
             if o["status"] == "ok"}
    if len(waves) >= 2:
        engines = sorted(waves)
        worst = max(
            float(np.max(np.abs(waves[a] - waves[b])))
            for i, a in enumerate(engines) for b in engines[i + 1:])
        if worst > WAVEFORM_TOL:
            problems.append(f"{entry.name}: recovered waveforms disagree "
                            f"across engines by {worst:g} V "
                            f"(> {WAVEFORM_TOL:g} V)")


def run_smoke(out_dir: str,
              engines: Sequence[str] = ENGINES) -> Dict[str, Any]:
    """Run the corpus smoke; returns the report dict (also written to
    ``<out_dir>/smoke_report.json``)."""
    from repro import obs

    os.makedirs(out_dir, exist_ok=True)
    disabled_policy = RecoveryPolicy(enabled=False)

    obs.enable_tracing()
    try:
        problems: List[str] = []
        entries_report: List[Dict[str, Any]] = []
        forensics_bundle: Optional[Dict[str, Any]] = None

        for entry in corpus_entries():
            outcomes: Dict[str, Dict[str, Any]] = {}
            disabled: Dict[str, Dict[str, Any]] = {}
            for engine in engines:
                pathological = bool(entry.expect_rungs) or entry.expect_failure
                disabled[engine] = (
                    _run_entry(entry, engine, disabled_policy)
                    if pathological else {"status": "skipped"})
                outcomes[engine] = _run_entry(entry, engine, None)
            _check_entry(entry, outcomes, disabled, problems)
            if entry.expect_failure and forensics_bundle is None:
                for engine in engines:
                    bundle = outcomes[engine].get("forensics")
                    if bundle is not None:
                        forensics_bundle = bundle
                        break
            entries_report.append({
                "name": entry.name,
                "description": entry.description,
                "engines": {
                    e: {k: v for k, v in o.items() if k != "voltages"}
                    for e, o in outcomes.items()
                },
            })

        counters = obs.metrics().snapshot()["counters"]
    finally:
        obs.disable_tracing()

    metrics_path = os.path.join(out_dir, "recovery_metrics.json")
    with open(metrics_path, "w", encoding="utf-8") as handle:
        json.dump({k: counters[k] for k in sorted(counters)}, handle,
                  indent=2)
        handle.write("\n")

    forensics_path = None
    if forensics_bundle is not None:
        forensics_path = os.path.join(out_dir, "forensics.json")
        with open(forensics_path, "w", encoding="utf-8") as handle:
            json.dump(forensics_bundle, handle, indent=2, sort_keys=True)
            handle.write("\n")

    ladder_counters = {k: v for k, v in counters.items()
                       if k.startswith("recovery.")}
    report = {
        "entries": entries_report,
        "problems": problems,
        "ladder_counters": ladder_counters,
        "metrics_path": metrics_path,
        "forensics_path": forensics_path,
        "ok": not problems,
    }
    report_path = os.path.join(out_dir, "smoke_report.json")
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    report["report_path"] = report_path
    return report


def render_smoke_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a :func:`run_smoke` report."""
    lines = ["recovery smoke: pathological corpus across engines"]
    for entry in report["entries"]:
        lines.append(f"  {entry['name']}: {entry['description']}")
        for engine, outcome in entry["engines"].items():
            if outcome["status"] == "ok":
                lines.append(
                    f"    {engine:<6} ok    rungs={outcome['rung_counts']} "
                    f"condition_warnings={outcome['condition_warnings']}")
            else:
                has_forensics = outcome.get("forensics") is not None
                lines.append(
                    f"    {engine:<6} failed (forensics="
                    f"{'yes' if has_forensics else 'no'})")
    if report["ladder_counters"]:
        lines.append("  ladder counters:")
        for key in sorted(report["ladder_counters"]):
            lines.append(f"    {key} = {report['ladder_counters'][key]}")
    for problem in report["problems"]:
        lines.append(f"  PROBLEM: {problem}")
    lines.append(f"  wrote {report['metrics_path']}")
    if report["forensics_path"]:
        lines.append(f"  wrote {report['forensics_path']}")
    lines.append("  result: " + ("ok" if report["ok"] else "FAILED"))
    return "\n".join(lines)
