"""Failure forensics: everything needed to diagnose an exhausted
recovery ladder without re-running the campaign that hit it.

A :class:`ForensicsBundle` travels on the
:class:`~repro.errors.ConvergenceError` (``exc.forensics``), survives
the worker→parent process boundary as plain JSON, and is dumped to disk
by the campaign runner (``run_campaign(forensics_dir=...)``).  It
carries:

* the rung history — every rung the ladder climbed, with outcomes;
* the last Newton state (full MNA solution vector);
* a SHA-256 digest of the offending timestep's stamped matrix, so two
  failures can be compared for "same system?" without shipping O(n²)
  of floats;
* the failing circuit's constructive fingerprint, plus — when the
  policy allows — a *minimal reproducing netlist* found by the greedy
  shrinker (:mod:`repro.recovery.shrink`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.serialize import stable_digest


def stamped_matrix_digest(matrix: np.ndarray) -> str:
    """SHA-256 of a stamped MNA matrix's exact bytes (shape-tagged, so
    a 4×4 and a 2×8 system never collide)."""
    h = hashlib.sha256()
    h.update(repr(matrix.shape).encode("ascii"))
    h.update(np.ascontiguousarray(matrix).tobytes())
    return h.hexdigest()


@dataclass
class ForensicsBundle:
    """Structured post-mortem of one ladder exhaustion."""

    #: ``"transient"`` or ``"dc"``.
    analysis: str
    circuit_name: str
    engine: str
    #: Simulated time of the offending step [s] (0.0 for DC).
    time: float
    message: str
    #: ``[{"rung": ..., "detail": ..., "outcome": ...}, ...]`` in the
    #: order the ladder climbed.
    rung_history: List[Dict[str, Any]] = field(default_factory=list)
    #: Last Newton iterate (full MNA solution vector), or None.
    last_state: Optional[List[float]] = None
    #: SHA-256 of the stamped matrix at the last iterate, or None when
    #: the system could not be assembled.
    matrix_digest: Optional[str] = None
    #: Constructive circuit fingerprint (``cache.keys`` schema), or
    #: None for circuits the cache cannot describe.
    circuit: Optional[Dict[str, Any]] = None
    #: Minimal reproducing netlist from the greedy shrinker (same
    #: fingerprint schema), or None when shrinking was disabled,
    #: budget-exhausted, or not applicable.
    minimal_circuit: Optional[Dict[str, Any]] = None
    #: Device counts before/after shrinking (equal when no shrink ran).
    devices_before: int = 0
    devices_after: int = 0
    #: Health record at the moment of exhaustion.
    health: Optional[Dict[str, Any]] = None

    def note_rung(self, rung: str, detail: str, outcome: str) -> None:
        self.rung_history.append(
            {"rung": rung, "detail": detail, "outcome": outcome})

    def digest(self) -> str:
        """Content digest of the bundle (stable across workers)."""
        return stable_digest(self.to_json())

    def summary(self) -> str:
        """One-paragraph human rendering (CLI and campaign notes)."""
        lines = [f"{self.analysis} ladder exhausted on "
                 f"{self.circuit_name!r} (engine={self.engine}, "
                 f"t={self.time:g} s): {self.message}"]
        for entry in self.rung_history:
            lines.append(f"  rung {entry['rung']:<18} {entry['detail']:<28} "
                         f"-> {entry['outcome']}")
        if self.matrix_digest:
            lines.append(f"  stamped matrix sha256: {self.matrix_digest}")
        if self.minimal_circuit is not None:
            lines.append(
                f"  minimal reproducer: {self.devices_after} of "
                f"{self.devices_before} devices "
                f"({len(self.minimal_circuit.get('nodes', []))} nodes)")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "analysis": self.analysis,
            "circuit_name": self.circuit_name,
            "engine": self.engine,
            "time": self.time,
            "message": self.message,
            "rung_history": list(self.rung_history),
            "last_state": self.last_state,
            "matrix_digest": self.matrix_digest,
            "circuit": self.circuit,
            "minimal_circuit": self.minimal_circuit,
            "devices_before": self.devices_before,
            "devices_after": self.devices_after,
            "health": self.health,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ForensicsBundle":
        return cls(
            analysis=str(data["analysis"]),
            circuit_name=str(data["circuit_name"]),
            engine=str(data["engine"]),
            time=float(data["time"]),
            message=str(data["message"]),
            rung_history=[dict(e) for e in data.get("rung_history", [])],
            last_state=(None if data.get("last_state") is None
                        else [float(v) for v in data["last_state"]]),
            matrix_digest=data.get("matrix_digest"),
            circuit=data.get("circuit"),
            minimal_circuit=data.get("minimal_circuit"),
            devices_before=int(data.get("devices_before", 0)),
            devices_after=int(data.get("devices_after", 0)),
            health=data.get("health"),
        )
