"""Pathological-circuit corpus for the recovery ladder.

Each entry is a small circuit *plus* the run configuration under which
it is pathological, tuned so that:

* with recovery disabled the run hard-fails
  (:class:`~repro.errors.ConvergenceError`) on every engine, and
* with the entry's policy the ladder rescues it deterministically —
  the same rungs fire the same number of times on naive, fast and
  sparse, and the recovered waveforms agree across engines;

except for the entries marked otherwise (``near-singular-divider``
completes healthily but trips condition warnings;
``ladder-exhaustion`` fails *through* the whole ladder, producing a
forensics bundle).

The corpus is the shared substrate for the recovery test-suite, the
``repro recovery smoke`` CI job and the documentation walkthroughs —
tune an entry here and all three see the change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.recovery.policy import DEFAULT_POLICY, RecoveryPolicy
from repro.spice.netlist import Circuit


def _razor_sense() -> Circuit:
    """Razor-edge sense amplifier: a near-floating sense node (10 GΩ
    leak) hit by a charge-injection current step.  At the floor gmin
    the per-step voltage target is tens of volts — far beyond what the
    damped Newton can traverse in the entry's iteration budget — while
    a modest extra gmin pins the node and converges in a few
    iterations, so the gmin rung is the natural rescue."""
    from repro.spice.waveforms import Pulse

    c = Circuit("razor-sense")
    c.add_vsource("vdd", "vdd", "0", 1.1)
    c.add_isource("iinj", "0", "sense",
                  Pulse(0.0, 2e-8, delay=0.2e-6, rise=0.05e-6, width=1.0e-6))
    c.add_resistor("rleak", "sense", "0", 1e10)
    c.add_nmos("m1", "out", "sense", "0", width=400e-9)
    c.add_resistor("rl", "vdd", "out", 20e3)
    c.add_capacitor("cl", "out", "0", 1e-15)
    return c


def _sharp_edge() -> Circuit:
    """Stiff RC + MOSFET behind a fast input edge: the edge rises in a
    fraction of the timestep, so the step straddling it asks Newton to
    traverse the full swing in one go.  Substepping (the timestep-cut
    rung) splits the swing into tractable pieces; gmin and damping
    cannot."""
    from repro.spice.waveforms import Pulse

    c = Circuit("sharp-edge")
    c.add_vsource("vdd", "vdd", "0", 1.1)
    c.add_vsource("vin", "in", "0",
                  Pulse(0.0, 1.1, delay=20e-12, rise=6e-12, width=5e-9))
    c.add_nmos("m1", "vdd", "in", "out", width=400e-9)
    c.add_resistor("rl", "out", "0", 10e3)
    c.add_capacitor("cl", "out", "0", 1e-15)
    return c


def _near_singular_divider() -> Circuit:
    """MTJ divider with a nano-ohm strap against a tera-ohm tail: nine
    decades of conductance spread push the stamped matrix's 1-norm
    condition estimate past the warn threshold while the run itself
    stays convergent — the health guards must *observe*, not
    intervene."""
    from repro.mtj.device import MTJState
    from repro.spice.waveforms import Pulse

    c = Circuit("near-singular-divider")
    c.add_vsource("vs", "in", "0",
                  Pulse(0.0, 0.8, delay=10e-12, rise=10e-12, width=5e-9))
    c.add_resistor("rtiny", "in", "mid", 1e-9)
    c.add_mtj("x1", "mid", "tail", state=MTJState.PARALLEL)
    c.add_resistor("rbig", "tail", "0", 1e12)
    return c


def _instant_edge() -> Circuit:
    """Like :func:`_sharp_edge` but with an effectively instantaneous
    ESD-scale edge (11 V in 0.1 ps against a 10 ps step): substepping
    cannot reduce the per-step swing, and the swing itself is beyond
    every rung's damped-iteration budget, so the ladder exhausts — the
    corpus's forensics producer."""
    from repro.spice.waveforms import Pulse

    c = Circuit("instant-edge")
    c.add_vsource("vdd", "vdd", "0", 1.1)
    c.add_vsource("vin", "in", "0",
                  Pulse(0.0, 11.0, delay=20e-12, rise=0.1e-12, width=5e-9))
    c.add_nmos("m1", "vdd", "in", "out", width=400e-9)
    c.add_resistor("rl", "out", "0", 10e3)
    c.add_capacitor("cl", "out", "0", 1e-15)
    return c


@dataclass(frozen=True)
class CorpusEntry:
    """One pathological circuit and the configuration that makes it so.

    ``policy`` is the recovery policy the entry is tuned for (an entry
    may need a non-default ladder — e.g. a deeper gmin sequence).
    ``expect_rungs`` names the rungs whose counters must be non-zero
    after a recovered run; ``expect_failure`` marks the entries whose
    *recovered* run still raises (ladder exhaustion).
    """

    name: str
    description: str
    builder: Callable[[], Circuit]
    stop_time: float
    dt: float
    max_iterations: int
    integrator: str = "be"
    policy: RecoveryPolicy = field(default=DEFAULT_POLICY)
    expect_rungs: Tuple[str, ...] = ()
    expect_condition_warnings: bool = False
    expect_failure: bool = False

    def build(self) -> Circuit:
        return self.builder()

    def run_options(self, recovery: Optional[RecoveryPolicy] = None
                    ) -> Dict[str, Any]:
        """Keyword arguments for
        :func:`~repro.spice.analysis.transient.run_transient` (minus
        the circuit and the engine)."""
        return {
            "stop_time": self.stop_time,
            "dt": self.dt,
            "integrator": self.integrator,
            "max_iterations": self.max_iterations,
            "lint": "off",
            "recovery": self.policy if recovery is None else recovery,
        }

    def run(self, engine: str = "naive",
            recovery: Optional[RecoveryPolicy] = None):
        """Run the entry under ``engine``; returns the
        :class:`~repro.spice.analysis.transient.TransientResult`."""
        from repro.spice.analysis.transient import run_transient

        return run_transient(self.build(), engine=engine,
                             **self.run_options(recovery))


#: Policy for the razor-sense entry: a deeper gmin sequence, so the
#: rescue happens on the gmin rung instead of escalating to substeps.
RAZOR_POLICY = RecoveryPolicy(gmin_ladder=(1e-9, 1e-8, 1e-7))

#: Policy that climbs and exhausts every rung (used by the
#: ladder-exhaustion entry; shrinking stays on so the forensics bundle
#: carries a minimal reproducer).
EXHAUSTION_POLICY = DEFAULT_POLICY


def corpus_entries() -> Tuple[CorpusEntry, ...]:
    """The tuned pathological corpus, in documentation order."""
    return (
        CorpusEntry(
            name="razor-sense",
            description="near-floating sense node under charge "
                        "injection; rescued by the gmin rung",
            builder=_razor_sense,
            stop_time=2e-6, dt=0.1e-6, max_iterations=4,
            policy=RAZOR_POLICY,
            expect_rungs=("gmin",),
        ),
        CorpusEntry(
            name="sharp-edge",
            description="stiff RC + MOSFET behind a sub-dt input edge; "
                        "rescued by the timestep-cut rung",
            builder=_sharp_edge,
            stop_time=0.2e-9, dt=10e-12, max_iterations=4,
            expect_rungs=("timestep-cut",),
        ),
        CorpusEntry(
            name="near-singular-divider",
            description="nine-decade conductance spread around an MTJ; "
                        "completes but trips condition warnings",
            builder=_near_singular_divider,
            stop_time=0.1e-9, dt=5e-12, max_iterations=50,
            expect_condition_warnings=True,
        ),
        CorpusEntry(
            name="ladder-exhaustion",
            description="instantaneous edge no rung can rescue; fails "
                        "through the whole ladder with forensics",
            builder=_instant_edge,
            stop_time=0.2e-9, dt=10e-12, max_iterations=4,
            policy=EXHAUSTION_POLICY,
            expect_failure=True,
        ),
    )


def corpus_entry(name: str) -> CorpusEntry:
    """Look up one corpus entry by name (:class:`KeyError` when absent)."""
    for entry in corpus_entries():
        if entry.name == name:
            return entry
    raise KeyError(f"no corpus entry named {name!r}")
