"""Greedy netlist shrinking: reduce a failing circuit to a locally
minimal reproducer.

Promoted out of ``tests/test_engine_differential.py`` so both the
differential harness (spec-level shrinking) and the failure forensics
(circuit-level shrinking on ladder exhaustion) share one engine.

Shrinking is sound only when candidates are *well-formed by
construction*: the differential harness gets that from spec-as-data
(drop a section, rebuild), while circuit-level shrinking gets it from
the constructive cache fingerprint
(:func:`repro.cache.keys.circuit_fingerprint` /
:func:`~repro.cache.keys.rebuild_circuit`) plus an ERC lint gate —
candidates whose removal leaves a structurally broken circuit
(floating nodes, dangling branches) are skipped, so the failing oracle
can never over-shrink to a degenerate netlist that fails for an
unrelated reason.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.spice.netlist import Circuit


def greedy_shrink(items: Sequence[Any],
                  still_fails: Callable[[List[Any]], bool],
                  min_items: int = 1,
                  budget: Optional[int] = None) -> List[Any]:
    """Greedy one-at-a-time removal to a locally minimal failing list.

    ``still_fails(candidate)`` is the oracle: True when the failure
    still reproduces with ``candidate`` (a sublist of ``items``).  Each
    successful removal restarts the scan, so the result is 1-minimal
    with respect to the oracle (removing any single remaining item no
    longer fails).  ``budget`` caps the number of oracle evaluations —
    when it runs out, the best reduction found so far is returned.
    """
    current = list(items)
    evaluations = 0
    improved = True
    while improved and len(current) > min_items:
        improved = False
        for i in range(len(current)):
            if budget is not None and evaluations >= budget:
                return current
            candidate = current[:i] + current[i + 1:]
            if len(candidate) < min_items:
                continue
            evaluations += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current


def _structurally_sound(circuit: Circuit) -> bool:
    """ERC gate for shrink candidates: a candidate that no longer lints
    clean would fail for a *structural* reason, not the one under
    investigation."""
    from repro.errors import ReproError
    from repro.lint import preflight

    try:
        preflight(circuit, "error")
    except ReproError:
        return False
    return True


def shrink_failing_circuit(
    circuit: Circuit,
    still_fails: Callable[[Circuit], bool],
    budget: Optional[int] = None,
) -> Tuple[Dict[str, Any], Circuit]:
    """Reduce ``circuit`` to a locally minimal one that still fails.

    ``still_fails(candidate)`` re-runs the failing analysis on a
    rebuilt candidate circuit and reports whether the failure
    reproduces; exceptions it does not catch count as "does not
    reproduce" is the *caller's* contract — this function only skips
    candidates the ERC lint rejects.

    Returns ``(fingerprint, circuit)`` of the minimal reproducer (the
    fingerprint uses the cache's constructive schema, so it can be
    stored in a forensics bundle and rebuilt anywhere).  Raises
    :class:`~repro.errors.CacheError` when the input circuit contains a
    device the constructive fingerprint cannot describe.
    """
    from repro.cache.keys import circuit_fingerprint, rebuild_circuit

    fingerprint = circuit_fingerprint(circuit)

    def rebuild(device_records: List[Dict[str, Any]]
                ) -> Tuple[Dict[str, Any], Circuit]:
        candidate_fp = {
            "name": fingerprint["name"],
            "nodes": list(fingerprint["nodes"]),
            "devices": list(device_records),
        }
        return candidate_fp, rebuild_circuit(candidate_fp)

    def oracle(device_records: List[Dict[str, Any]]) -> bool:
        _fp, candidate = rebuild(device_records)
        if not _structurally_sound(candidate):
            return False
        return bool(still_fails(candidate))

    minimal_records = greedy_shrink(fingerprint["devices"], oracle,
                                    budget=budget)
    return rebuild(minimal_records)
