"""Solver resilience subsystem: recovery ladder, health guards,
failure forensics.

Import surface is deliberately thin — policy, health and forensics
types only.  The ladder itself (:mod:`repro.recovery.ladder`) imports
the analysis engines lazily and is pulled in by the analysis modules,
not the other way round, keeping the package import-cycle free.
"""

from repro.recovery.forensics import ForensicsBundle, stamped_matrix_digest
from repro.recovery.health import (
    CONDITION_CAP,
    ConditionProbe,
    SolverHealth,
    guard_finite,
    hager_inverse_norm1,
)
from repro.recovery.policy import (
    DEFAULT_POLICY,
    KNOWN_RUNGS,
    RUNG_DAMPING,
    RUNG_ENGINE_FALLBACK,
    RUNG_GMIN,
    RUNG_INTEGRATOR_SWITCH,
    RUNG_TIMESTEP_CUT,
    RecoveryPolicy,
)
from repro.recovery.shrink import greedy_shrink, shrink_failing_circuit

__all__ = [
    "CONDITION_CAP",
    "ConditionProbe",
    "DEFAULT_POLICY",
    "ForensicsBundle",
    "KNOWN_RUNGS",
    "RUNG_DAMPING",
    "RUNG_ENGINE_FALLBACK",
    "RUNG_GMIN",
    "RUNG_INTEGRATOR_SWITCH",
    "RUNG_TIMESTEP_CUT",
    "RecoveryPolicy",
    "SolverHealth",
    "greedy_shrink",
    "guard_finite",
    "hager_inverse_norm1",
    "shrink_failing_circuit",
    "stamped_matrix_digest",
]
