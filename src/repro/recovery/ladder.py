"""The recovery ladder: deterministic escalation for failed solves.

One :class:`TransientStepper` owns per-step advancement for a fixed-step
transient run.  The happy path is exactly the pre-ladder hot loop — one
solver call, one state settle — and every escalation is a pure function
of (policy, failing step), so recovered waveforms are bit-identical for
any worker count and cache replay:

* ``gmin``              — retry the step at each policy gmin (the
  historical strong-gmin retry is the default single entry);
* ``damping``           — tighter dV clamp with a larger iteration
  budget;
* ``timestep-cut``      — re-cover the failing interval with 2^k
  substeps (the step re-doubles back onto the output grid by
  construction);
* ``integrator-switch`` — trap→BE for the offending step only;
* ``engine-fallback``   — sparse→fast→naive, never upward.

Cross-workspace rungs (cut / switch / fallback) move capacitor state
through the devices themselves (``MNAWorkspace.flush_state`` /
``reload_state``) and snapshot all mutable device state first, so a
failed rung leaves no trace and a successful one leaves the primary
workspace exactly as if it had taken the step itself.

On exhaustion the step raises :class:`~repro.errors.ConvergenceError`
carrying a :class:`~repro.recovery.forensics.ForensicsBundle`.

:func:`dc_recover` is the DC analogue: staged gmin homotopy with a
residual trajectory, then source-stepping homotopy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError, ConvergenceError
from repro.recovery.forensics import ForensicsBundle, stamped_matrix_digest
from repro.recovery.health import ConditionProbe, SolverHealth, guard_finite
from repro.recovery.policy import (
    DEFAULT_POLICY,
    RUNG_DAMPING,
    RUNG_ENGINE_FALLBACK,
    RUNG_GMIN,
    RUNG_INTEGRATOR_SWITCH,
    RUNG_TIMESTEP_CUT,
    RecoveryPolicy,
)
from repro.spice.devices.base import EvalContext
from repro.spice.netlist import Circuit

#: Wall-clock budget [s] per shrink-candidate simulation while building
#: a forensics bundle.  Deliberately not part of any cache key: bundles
#: are diagnostics, not results.
SHRINK_CANDIDATE_TIMEOUT = 10.0


def _short(exc: BaseException) -> str:
    """First line of an exception message (rung-history friendly)."""
    return str(exc).splitlines()[0] if str(exc) else type(exc).__name__


def _probe_policy(policy: RecoveryPolicy) -> RecoveryPolicy:
    """The policy shrink-oracle runs use: no rungs, no nested shrink."""
    from dataclasses import replace

    return replace(policy, enabled=False, shrink_on_failure=False)


# ---------------------------------------------------------------------------
# Device-state snapshot (capacitor history, MTJ magnetisation)
# ---------------------------------------------------------------------------


def snapshot_device_state(circuit: Circuit) -> List[Tuple[Any, str, Any]]:
    """Capture every mutable per-device state so a failed rung attempt
    can be rolled back exactly.

    The only stateful devices in the zoo are capacitors
    (``_prev_current``) and MTJ elements (magnetisation, switching
    progress, event log) — the same set the result cache's MTJ-state
    capture handles.  A new stateful device class must be added here
    (and there) before the ladder may recover circuits containing it.
    """
    from repro.spice.devices.mtj_element import MTJElement
    from repro.spice.devices.passive import Capacitor

    snapshot: List[Tuple[Any, str, Any]] = []
    for device in circuit.devices:
        if isinstance(device, Capacitor):
            snapshot.append((device, "cap", device._prev_current))
        elif isinstance(device, MTJElement):
            switching = device.switching
            snapshot.append((device, "mtj", (
                device.device.state,
                None if switching is None
                else (switching.progress, len(switching.events)))))
    return snapshot


def restore_device_state(snapshot: List[Tuple[Any, str, Any]]) -> None:
    for device, kind, state in snapshot:
        if kind == "cap":
            device._prev_current = state
        else:
            mtj_state, switching_state = state
            device.device.state = mtj_state
            if switching_state is not None:
                device.switching.progress = switching_state[0]
                del device.switching.events[switching_state[1]:]


# ---------------------------------------------------------------------------
# Engine attempts: one uniform solve/settle interface per (engine, dt,
# integrator) triple
# ---------------------------------------------------------------------------


class _WorkspaceAttempt:
    """Fast/sparse attempt: a dedicated workspace + Newton solver."""

    def __init__(self, circuit: Circuit, engine: str, dt: float,
                 integrator: str, stats, probe: Optional[ConditionProbe]):
        from repro.spice.analysis.engine import (
            FastNewtonSolver,
            MNAWorkspace,
        )

        self.workspace = MNAWorkspace(circuit, dt=dt, integrator=integrator)
        if engine == "sparse":
            from repro.spice.analysis.sparse import SparseNewtonSolver

            self.solver: Any = SparseNewtonSolver(self.workspace, stats=stats)
        else:
            self.solver = FastNewtonSolver(self.workspace, stats=stats)
        self.solver.condition_probe = probe

    def solve(self, x: np.ndarray, time: float, prev_nodes: np.ndarray,
              gmin: float, max_iterations: int, vtol: float,
              damping: float) -> np.ndarray:
        return self.solver.solve(x, time, prev_nodes, gmin, max_iterations,
                                 vtol, damping)

    def settle(self, x: np.ndarray, time: float,
               prev_nodes: np.ndarray) -> None:
        self.workspace.update_state(x)

    def flush(self) -> None:
        self.workspace.flush_state()

    def reload(self) -> None:
        self.workspace.reload_state()


class _NaiveAttempt:
    """Re-stamp-everything attempt; device state lives on the devices
    themselves, so flush/reload are no-ops."""

    def __init__(self, circuit: Circuit, dt: float, integrator: str,
                 stats, probe: Optional[ConditionProbe]):
        circuit.finalize()
        self.circuit = circuit
        self.dt = dt
        self.integrator = integrator
        self.stats = stats
        self.probe = probe
        self.num_nodes = circuit.num_nodes

    def solve(self, x: np.ndarray, time: float, prev_nodes: np.ndarray,
              gmin: float, max_iterations: int, vtol: float,
              damping: float) -> np.ndarray:
        from repro.spice.analysis.dc import newton_step

        return newton_step(
            self.circuit, x, time, prev_nodes, self.dt,
            integrator=self.integrator, max_iterations=max_iterations,
            vtol=vtol, damping=damping, gmin=gmin, stats=self.stats,
            probe=self.probe,
        )

    def settle(self, x: np.ndarray, time: float,
               prev_nodes: np.ndarray) -> None:
        ctx = EvalContext(
            voltages=x[:self.num_nodes], prev_voltages=prev_nodes,
            time=time, dt=self.dt, integrator=self.integrator,
        )
        for device in self.circuit.devices:
            device.update_state(ctx)

    def flush(self) -> None:
        pass

    def reload(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Transient stepper
# ---------------------------------------------------------------------------


class TransientStepper:
    """Per-run step driver: primary solve plus ladder escalation.

    ``advance`` both solves and settles the step — the caller's loop
    never needs to know whether the step went through the primary
    solver or a recovery rung.
    """

    def __init__(self, circuit: Circuit, engine: str, dt: float,
                 integrator: str, max_iterations: int, vtol: float,
                 damping: float, stats, floor_gmin: float,
                 policy: Optional[RecoveryPolicy] = None):
        if engine not in ("fast", "naive", "sparse"):
            raise AnalysisError(f"unknown engine {engine!r}")
        self.circuit = circuit
        self.engine = engine
        self.dt = dt
        self.integrator = integrator
        self.max_iterations = max_iterations
        self.vtol = vtol
        self.damping = damping
        self.stats = stats
        self.floor_gmin = floor_gmin
        self.policy = DEFAULT_POLICY if policy is None else policy
        self.health = SolverHealth()
        self.probe = ConditionProbe(self.health, self.policy)
        self.num_nodes = 0  # set by the primary attempt below
        self._primary = self._build_attempt(engine, dt, integrator)
        self.num_nodes = circuit.num_nodes
        self._alternates: Dict[Tuple[str, int, str], Any] = {}

    def _build_attempt(self, engine: str, dt: float, integrator: str):
        if engine in ("fast", "sparse"):
            return _WorkspaceAttempt(self.circuit, engine, dt, integrator,
                                     self.stats, self.probe)
        return _NaiveAttempt(self.circuit, dt, integrator, self.stats,
                             self.probe)

    def _alternate(self, engine: str, pieces: int, integrator: str):
        key = (engine, pieces, integrator)
        attempt = self._alternates.get(key)
        if attempt is None:
            attempt = self._build_attempt(engine, self.dt / pieces,
                                          integrator)
            self._alternates[key] = attempt
        return attempt

    # -- public driver interface ------------------------------------------

    def advance(self, x: np.ndarray, time: float,
                prev_nodes: np.ndarray) -> np.ndarray:
        """Solve and settle one step; escalates through the ladder on
        failure.  Returns the accepted solution vector."""
        try:
            x_new = self._primary.solve(x, time, prev_nodes,
                                        self.floor_gmin,
                                        self.max_iterations, self.vtol,
                                        self.damping)
            guard_finite(x_new, f"engine={self.engine} t={time:g} s",
                         self.health)
        except ConvergenceError as failure:
            return self._recover(failure, x, time, prev_nodes)
        self._primary.settle(x_new, time, prev_nodes)
        return x_new

    # -- rung machinery ----------------------------------------------------

    def _recover(self, failure: ConvergenceError, x0: np.ndarray,
                 time: float, prev_nodes: np.ndarray) -> np.ndarray:
        history: List[Dict[str, str]] = []
        rungs = self.policy.rungs if self.policy.enabled else ()
        for rung in rungs:
            for detail, attempt in self._rung_attempts(rung, x0, time,
                                                       prev_nodes):
                self.health.note_rung_attempt(rung)
                try:
                    x_new = attempt()
                except ConvergenceError as exc:
                    history.append({"rung": rung, "detail": detail,
                                    "outcome": f"failed: {_short(exc)}"})
                    failure = exc
                    continue
                history.append({"rung": rung, "detail": detail,
                                "outcome": "recovered"})
                self.health.note_rung_success(rung)
                self.health.note_recovered_step()
                self.stats.recovered_steps += 1
                return x_new
        self._raise_exhausted(failure, history, x0, time, prev_nodes)
        raise AssertionError("unreachable")  # pragma: no cover

    def _rung_attempts(self, rung: str, x0: np.ndarray, time: float,
                       prev_nodes: np.ndarray):
        """Yield ``(detail, thunk)`` sub-attempts for one rung, in
        deterministic policy order."""
        policy = self.policy
        if rung == RUNG_GMIN:
            for gmin in policy.gmin_ladder:
                yield (f"gmin={gmin:g}",
                       lambda g=gmin: self._gmin_attempt(g, x0, time,
                                                         prev_nodes))
        elif rung == RUNG_DAMPING:
            damping = self.damping * policy.damping_scale
            iterations = self.max_iterations * policy.iteration_scale
            yield (f"damping={damping:g} iters={iterations}",
                   lambda: self._primary_attempt(
                       x0, time, prev_nodes, gmin=self.floor_gmin,
                       damping=damping, max_iterations=iterations))
        elif rung == RUNG_TIMESTEP_CUT:
            for cuts in range(1, policy.max_timestep_cuts + 1):
                pieces = 2 ** cuts
                yield (f"dt/{pieces}",
                       lambda p=pieces: self._alternate_attempt(
                           self.engine, self.integrator, p, x0, time,
                           prev_nodes))
        elif rung == RUNG_INTEGRATOR_SWITCH:
            if self.integrator == "trap":
                yield ("trap->be",
                       lambda: self._alternate_attempt(
                           self.engine, "be", 1, x0, time, prev_nodes))
        elif rung == RUNG_ENGINE_FALLBACK:
            for engine in policy.fallback_engines(self.engine):
                yield (f"engine={engine}",
                       lambda e=engine: self._alternate_attempt(
                           e, self.integrator, 1, x0, time, prev_nodes))

    def _gmin_attempt(self, gmin: float, x0: np.ndarray, time: float,
                      prev_nodes: np.ndarray) -> np.ndarray:
        # Counted exactly like the historical hard-coded retry, so the
        # obs counter keeps its meaning across the refactor.
        self.stats.gmin_retries += 1
        return self._primary_attempt(x0, time, prev_nodes, gmin=gmin)

    def _primary_attempt(self, x0: np.ndarray, time: float,
                         prev_nodes: np.ndarray, gmin: float,
                         damping: Optional[float] = None,
                         max_iterations: Optional[int] = None) -> np.ndarray:
        x = self._primary.solve(
            x0, time, prev_nodes, gmin,
            self.max_iterations if max_iterations is None else max_iterations,
            self.vtol, self.damping if damping is None else damping)
        guard_finite(x, f"engine={self.engine} t={time:g} s", self.health)
        self._primary.settle(x, time, prev_nodes)
        return x

    def _alternate_attempt(self, engine: str, integrator: str, pieces: int,
                           x0: np.ndarray, time: float,
                           prev_nodes: np.ndarray) -> np.ndarray:
        """Re-cover [time − dt, time] with ``pieces`` substeps on an
        alternate (engine, dt, integrator) attempt, committing device
        state only if the whole interval succeeds."""
        attempt = self._alternate(engine, pieces, integrator)
        self._primary.flush()
        snapshot = snapshot_device_state(self.circuit)
        try:
            attempt.reload()
            sub_dt = self.dt / pieces
            t_start = time - self.dt
            x = x0
            prev = prev_nodes
            for k in range(1, pieces + 1):
                # Land the last substep exactly on the grid point.
                t_k = time if k == pieces else t_start + k * sub_dt
                x = self._solve_with_gmins(attempt, x, t_k, prev)
                attempt.settle(x, t_k, prev)
                prev = x[:self.num_nodes].copy()
            attempt.flush()
            self._primary.reload()
            return x
        except ConvergenceError:
            restore_device_state(snapshot)
            self._primary.reload()
            raise

    def _solve_with_gmins(self, attempt, x: np.ndarray, time: float,
                          prev: np.ndarray) -> np.ndarray:
        """One substep solve, with the policy gmin ladder folded in so
        the cut/switch/fallback rungs compose with gmin stepping.

        Alternate attempts run with the scaled iteration budget (as the
        damping rung does): a fallback engine may need more iterations
        than the primary for the same step — the fast engine's Jacobian
        reuse, for instance, trades per-iteration progress for speed —
        and a recovery attempt should not fail on that margin.
        """
        iterations = self.max_iterations * self.policy.iteration_scale
        last: Optional[ConvergenceError] = None
        for gmin in (self.floor_gmin,) + self.policy.gmin_ladder:
            try:
                x_new = attempt.solve(x, time, prev, gmin,
                                      iterations, self.vtol,
                                      self.damping)
                return guard_finite(x_new, f"substep t={time:g} s",
                                    self.health)
            except ConvergenceError as exc:
                last = exc
        assert last is not None
        raise last

    # -- exhaustion --------------------------------------------------------

    def _raise_exhausted(self, failure: ConvergenceError,
                         history: List[Dict[str, str]], x0: np.ndarray,
                         time: float, prev_nodes: np.ndarray) -> None:
        last_state = failure.state if failure.state is not None else x0
        bundle = ForensicsBundle(
            analysis="transient",
            circuit_name=self.circuit.name,
            engine=self.engine,
            time=time,
            message=_short(failure),
            last_state=[float(v) for v in np.asarray(last_state).ravel()],
            health=self.health.to_json(),
        )
        for entry in history:
            bundle.note_rung(entry["rung"], entry["detail"],
                             entry["outcome"])
        try:
            matrix = _stamped_matrix(self.circuit, np.asarray(last_state),
                                     time, prev_nodes, self.dt,
                                     self.integrator, self.floor_gmin)
            bundle.matrix_digest = stamped_matrix_digest(matrix)
        except Exception:
            bundle.matrix_digest = None
        self._attach_circuit(bundle, time)
        tried = ", ".join(f"{e['rung']}({e['detail']})" for e in history)
        raise ConvergenceError(
            f"recovery ladder exhausted at t={time:g} s of "
            f"{self.circuit.name!r} (engine={self.engine}): "
            f"{_short(failure)}"
            + (f"; rungs tried: {tried}" if tried else "; no rungs enabled"),
            iterations=failure.iterations, residual=failure.residual,
            state=np.asarray(last_state).copy(), forensics=bundle,
        ) from failure

    def _attach_circuit(self, bundle: ForensicsBundle,
                        fail_time: float) -> None:
        from repro.errors import CacheError

        try:
            from repro.cache.keys import circuit_fingerprint

            bundle.circuit = circuit_fingerprint(self.circuit)
        except CacheError:
            return
        bundle.devices_before = len(self.circuit.devices)
        bundle.devices_after = bundle.devices_before
        if not self.policy.shrink_on_failure:
            return
        probe_policy = _probe_policy(self.policy)

        def still_fails(candidate: Circuit) -> bool:
            from repro.cache.analysis import bypassed
            from repro.spice.analysis.transient import run_transient

            try:
                with bypassed():
                    run_transient(
                        candidate, stop_time=fail_time, dt=self.dt,
                        integrator=self.integrator,
                        max_iterations=self.max_iterations, vtol=self.vtol,
                        damping=self.damping, engine=self.engine,
                        lint="off", timeout=SHRINK_CANDIDATE_TIMEOUT,
                        recovery=probe_policy)
            except ConvergenceError:
                return True
            except Exception:
                return False
            return False

        try:
            from repro.recovery.shrink import shrink_failing_circuit

            minimal_fp, minimal = shrink_failing_circuit(
                self.circuit, still_fails, budget=self.policy.shrink_budget)
            bundle.minimal_circuit = minimal_fp
            bundle.devices_after = len(minimal.devices)
        except Exception:
            bundle.minimal_circuit = None


def _stamped_matrix(circuit: Circuit, x: np.ndarray, time: float,
                    prev_nodes: Optional[np.ndarray], dt: Optional[float],
                    integrator: str, gmin: float) -> np.ndarray:
    """Dense re-stamp of the MNA system at an iterate (the forensics
    matrix digest: engine-independent by construction)."""
    from repro.spice.analysis.mna import MNAStamper

    circuit.finalize()
    num_nodes = circuit.num_nodes
    ctx = EvalContext(voltages=x[:num_nodes], prev_voltages=prev_nodes,
                      time=time, dt=dt, gmin=gmin, integrator=integrator)
    stamper = MNAStamper(num_nodes, circuit.num_branches)
    for device in circuit.devices:
        device.stamp(stamper, ctx)
    stamper.apply_gmin(gmin)
    return stamper.matrix


# ---------------------------------------------------------------------------
# Shared gmin-rung helper (adaptive driver, batched ensembles)
# ---------------------------------------------------------------------------


def gmin_ladder_retry(attempt: Callable[[float], np.ndarray],
                      policy: RecoveryPolicy, stats,
                      health: Optional[SolverHealth] = None,
                      failure: Optional[ConvergenceError] = None
                      ) -> np.ndarray:
    """Run ``attempt(gmin)`` through the policy's gmin ladder after a
    floor-gmin failure (drivers with their own step control — the
    adaptive transient — use this instead of a full stepper)."""
    last = failure
    for gmin in policy.gmin_ladder:
        stats.gmin_retries += 1
        try:
            x = attempt(gmin)
        except ConvergenceError as exc:
            last = exc
            continue
        if health is not None:
            health.note_rung_attempt(RUNG_GMIN)
            health.note_rung_success(RUNG_GMIN)
            health.note_recovered_step()
        stats.recovered_steps += 1
        return x
    if last is None:
        last = ConvergenceError("gmin ladder is empty")
    raise last


# ---------------------------------------------------------------------------
# DC recovery: staged gmin homotopy + source stepping
# ---------------------------------------------------------------------------


def dc_recover(
    circuit: Circuit,
    newton: Callable[..., Tuple[np.ndarray, int]],
    x0: np.ndarray,
    time: float,
    max_iterations: int,
    vtol: float,
    damping: float,
    floor_gmin: float,
    first_failure: ConvergenceError,
    policy: Optional[RecoveryPolicy] = None,
    linear_solve=None,
    deadline: Optional[float] = None,
    engine_label: str = "dense",
) -> Tuple[np.ndarray, int, SolverHealth, List[str]]:
    """Recover a failed plain-Newton DC solve.

    Stage 1 — gmin homotopy: strong conductance to ground, reduced one
    decade at a time, warm-starting each stage (bit-identical to the
    historical ``solve_dc`` ladder under the default policy).  Stage 2 —
    source stepping: when the homotopy stalls, ramp every independent
    source from a fraction of its value to full scale, warm-starting
    along the way.  ``newton`` is the DC module's ``_newton`` (injected
    to keep the import graph acyclic).

    Returns ``(x, total_iterations, health, trajectory)`` where
    ``trajectory`` names every stage and its outcome — the residual
    norm trajectory the failure message reports.  Raises
    :class:`ConvergenceError` with a :class:`ForensicsBundle` when both
    homotopies are exhausted.
    """
    policy = DEFAULT_POLICY if policy is None else policy
    health = SolverHealth()
    trajectory: List[str] = [
        f"plain newton: {_short(first_failure)} "
        f"(max dV={first_failure.residual:g} V)"]

    x = x0
    total_iterations = 0
    gmin = policy.dc_gmin_start
    gmin_failure: Optional[ConvergenceError] = None
    failed_gmin = 0.0
    while gmin >= floor_gmin:
        try:
            x, iterations = newton(
                circuit, x, time, gmin, max_iterations, vtol, damping,
                deadline=deadline, linear_solve=linear_solve,
            )
        except ConvergenceError as exc:
            gmin_failure = exc
            failed_gmin = gmin
            trajectory.append(
                f"gmin {gmin:g}: stalled after {exc.iterations} iterations "
                f"(max dV={exc.residual:g} V)")
            break
        total_iterations += iterations
        health.dc_gmin_stages += 1
        trajectory.append(f"gmin {gmin:g}: converged in {iterations} "
                          f"iterations")
        gmin /= policy.dc_gmin_reduction
    else:
        return x, total_iterations, health, trajectory

    assert gmin_failure is not None
    total_iterations += gmin_failure.iterations
    timed_out = _timed_out(deadline)
    source_steps = (policy.dc_source_steps
                    if policy.enabled and not timed_out else ())
    source_failure: Optional[ConvergenceError] = None
    if source_steps:
        x = x0
        for scale in source_steps:
            try:
                x, iterations = newton(
                    circuit, x, time, floor_gmin, max_iterations, vtol,
                    damping, deadline=deadline, linear_solve=linear_solve,
                    source_scale=scale,
                )
            except ConvergenceError as exc:
                source_failure = exc
                trajectory.append(
                    f"source step {scale:g}: stalled after "
                    f"{exc.iterations} iterations "
                    f"(max dV={exc.residual:g} V)")
                total_iterations += exc.iterations
                break
            total_iterations += iterations
            health.dc_source_steps += 1
            health.note_rung_success("dc-source-stepping")
            trajectory.append(f"source step {scale:g}: converged in "
                              f"{iterations} iterations")
        else:
            return x, total_iterations, health, trajectory

    final = source_failure if source_failure is not None else gmin_failure
    timed_out = _timed_out(deadline)
    if source_failure is not None:
        stage = "source stepping stalled"
    else:
        stage = f"gmin stepping stalled at gmin={failed_gmin:g}"
    reason = ("exceeded its wall-clock timeout during homotopy"
              if timed_out else stage)
    bundle = _dc_bundle(circuit, engine_label, final, trajectory, health,
                        policy, time, max_iterations, vtol, damping,
                        shrink=not timed_out)
    raise ConvergenceError(
        f"{reason}: {_short(final)}; residual trajectory: "
        + " | ".join(trajectory),
        iterations=total_iterations,
        residual=final.residual, state=final.state, forensics=bundle,
    ) from first_failure


def _timed_out(deadline: Optional[float]) -> bool:
    if deadline is None:
        return False
    import time as _time

    return _time.monotonic() > deadline


def _dc_bundle(circuit: Circuit, engine_label: str,
               failure: ConvergenceError, trajectory: List[str],
               health: SolverHealth, policy: RecoveryPolicy, time: float,
               max_iterations: int, vtol: float, damping: float,
               shrink: bool) -> ForensicsBundle:
    from repro.errors import CacheError

    bundle = ForensicsBundle(
        analysis="dc", circuit_name=circuit.name, engine=engine_label,
        time=time, message=_short(failure),
        last_state=(None if failure.state is None
                    else [float(v) for v in np.asarray(failure.state)]),
        health=health.to_json(),
    )
    for line in trajectory:
        stage, _, outcome = line.partition(": ")
        bundle.note_rung("dc-homotopy", stage, outcome or line)
    if failure.state is not None:
        try:
            matrix = _stamped_matrix(circuit, np.asarray(failure.state),
                                     time, None, None, "be", 0.0)
            bundle.matrix_digest = stamped_matrix_digest(matrix)
        except Exception:
            bundle.matrix_digest = None
    try:
        from repro.cache.keys import circuit_fingerprint

        bundle.circuit = circuit_fingerprint(circuit)
    except CacheError:
        return bundle
    bundle.devices_before = len(circuit.devices)
    bundle.devices_after = bundle.devices_before
    if not (shrink and policy.shrink_on_failure):
        return bundle
    probe_policy = _probe_policy(policy)

    def still_fails(candidate: Circuit) -> bool:
        from repro.cache.analysis import bypassed
        from repro.spice.analysis.dc import solve_dc

        try:
            with bypassed():
                solve_dc(candidate, time=time,
                         max_iterations=max_iterations, vtol=vtol,
                         damping=damping, lint="off",
                         timeout=SHRINK_CANDIDATE_TIMEOUT,
                         recovery=probe_policy)
        except ConvergenceError:
            return True
        except Exception:
            return False
        return False

    try:
        from repro.recovery.shrink import shrink_failing_circuit

        minimal_fp, minimal = shrink_failing_circuit(
            circuit, still_fails, budget=policy.shrink_budget)
        bundle.minimal_circuit = minimal_fp
        bundle.devices_after = len(minimal.devices)
    except Exception:
        bundle.minimal_circuit = None
    return bundle
