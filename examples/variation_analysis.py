#!/usr/bin/env python3
"""Process-variation and reliability analysis of the NV storage.

Covers the robustness questions behind the paper's corner analysis:

* Monte-Carlo distribution of the differential read margin under
  ±3σ RA/TMR variation,
* read-disturb probability at sensing currents (non-destructive read),
* thermal retention across the temperature range (non-volatility),
* the corner spread of the latch read metrics.

Run:  python examples/variation_analysis.py
"""

import numpy as np

from repro.mtj.device import MTJDevice, MTJState
from repro.mtj.dynamics import SwitchingModel
from repro.mtj.parameters import PAPER_TABLE_I
from repro.mtj.thermal import ThermalStability
from repro.mtj.variation import MTJVariation, sample_parameters
from repro.units import format_eng


def main() -> None:
    rng = np.random.default_rng(7)

    print("=== Monte-Carlo read margin (5000 samples, 1 sigma = 5 %) ===")
    samples = sample_parameters(PAPER_TABLE_I, MTJVariation(), count=5000,
                                rng=rng)
    margins = np.array([s.resistance_difference for s in samples]) / 1e3
    nominal = PAPER_TABLE_I.resistance_difference / 1e3
    print(f"R_AP - R_P: nominal {nominal:.2f} kOhm, "
          f"mean {margins.mean():.2f}, sigma {margins.std():.2f}, "
          f"min {margins.min():.2f} kOhm "
          f"({100 * margins.min() / nominal:.0f} % of nominal)")

    print("\n=== Read disturb (non-destructive read) ===")
    model = SwitchingModel(device=MTJDevice(state=MTJState.PARALLEL))
    for current in (10e-6, 20e-6, 30e-6):
        p = model.read_disturb_probability(current, 1e-9)
        print(f"  {current * 1e6:4.0f} uA for 1 ns: "
              f"disturb probability {p:.2e}")

    print("\n=== Thermal retention (non-volatility) ===")
    stability = ThermalStability(PAPER_TABLE_I)
    for temp in (-40.0, 27.0, 85.0, 125.0):
        delta = stability.delta_at(temp)
        years = stability.retention_years(temp)
        print(f"  {temp:6.1f} C: Delta = {delta:5.1f}, "
              f"mean retention {years:.2e} years")

    print("\n=== Write latency across the switching-current corner ===")
    for scale, label in ((0.85, "-3 sigma"), (1.0, "nominal"), (1.15, "+3 sigma")):
        params = PAPER_TABLE_I.scaled(ic_scale=scale)
        corner_model = SwitchingModel(device=MTJDevice(params=params))
        t = corner_model.mean_switching_time(params.switching_current)
        print(f"  I_c {label:9s}: switch in {format_eng(t, 's')} "
              f"at I = {params.switching_current * 1e6:.0f} uA")


if __name__ == "__main__":
    main()
