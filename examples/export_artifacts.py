#!/usr/bin/env python3
"""Interoperability tour: export every artefact format the library speaks.

Produces, next to this script:

* ``proposed_latch.sp``   — SPICE deck of the proposed 2-bit latch,
* ``restore.vcd``         — analog waveforms of a restore (GTKWave-ready),
* ``restore_waves.txt``   — the same restore as an ASCII waveform plot,
* ``s838.v`` / ``s838.def`` — structural Verilog + placed DEF of a benchmark,
* ``s838_scan.txt``       — scan-chain stitching report,
* ``s838_congestion.txt`` — routing-congestion report,
* ``latch_op.txt``        — DC operating-point report of the latch.

Run:  python examples/export_artifacts.py
"""

import pathlib

from repro.analysis.figures import render_transient_ascii
from repro.cells.control import proposed_restore_schedule
from repro.cells.nvlatch_2bit import build_proposed_latch
from repro.core.merge import find_mergeable_pairs
from repro.physd import (
    estimate_congestion,
    generate_benchmark,
    place_design,
    reorder_scan_chain,
    write_def,
    write_verilog,
)
from repro.physd.scan import current_scan_order
from repro.spice import export_spice, export_vcd, run_transient, solve_dc
from repro.spice.analysis.opreport import render_operating_point

OUT = pathlib.Path(__file__).parent


def main() -> None:
    # --- circuit-side artefacts -------------------------------------------
    schedule = proposed_restore_schedule(bits=(1, 0))
    latch = build_proposed_latch(schedule, stored_bits=(1, 0))
    (OUT / "proposed_latch.sp").write_text(
        export_spice(latch.circuit, title="proposed 2-bit NV latch"))
    print("wrote proposed_latch.sp")

    print("simulating the restore for the waveform exports...")
    result = run_transient(latch.circuit, schedule.stop_time, 2e-12,
                           initial_voltages={"vdd": 1.1})
    nodes = ["out", "outb", "pcv_b", "pcg", "n3", "p3_b"]
    (OUT / "restore.vcd").write_text(export_vcd(result, signals=nodes))
    (OUT / "restore_waves.txt").write_text(
        render_transient_ascii(result, ["out", "outb"], height=7))
    print("wrote restore.vcd and restore_waves.txt")

    idle = build_proposed_latch()
    dc = solve_dc(idle.circuit, initial_guess={"vdd": 1.1})
    (OUT / "latch_op.txt").write_text(
        render_operating_point(dc, min_current=1e-15) + "\n")
    print("wrote latch_op.txt")

    # --- physical-design artefacts ------------------------------------------
    netlist = generate_benchmark("s838", seed=1)
    placement = place_design(netlist, utilization=0.7, seed=1)
    (OUT / "s838.v").write_text(write_verilog(netlist))
    (OUT / "s838.def").write_text(write_def(placement))
    print("wrote s838.v and s838.def")

    merge = find_mergeable_pairs(placement)
    before = current_scan_order(placement)
    after = reorder_scan_chain(placement,
                               keep_adjacent=[(p.ff_a, p.ff_b)
                                              for p in merge.pairs])
    (OUT / "s838_scan.txt").write_text(
        "scan-chain stitching (merged pairs kept adjacent)\n"
        f"  creation order: {before.wirelength * 1e6:8.1f} um\n"
        f"  re-stitched:    {after.wirelength * 1e6:8.1f} um "
        f"({100 * (1 - after.wirelength / before.wirelength):.0f} % shorter)\n"
        f"  chain: {' -> '.join(after.order[:8])} -> ...\n")
    print("wrote s838_scan.txt")

    congestion = estimate_congestion(placement)
    (OUT / "s838_congestion.txt").write_text(congestion.report() + "\n")
    print("wrote s838_congestion.txt")


if __name__ == "__main__":
    main()
