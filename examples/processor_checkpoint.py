#!/usr/bin/env python3
"""Processor-style checkpointing with merged NV flip-flops.

Ties the system layers together: the or1200-class benchmark is placed
and its flip-flops paired (the Table III flow); the pairing then drives
a *behavioural* model of the machine — merged pairs become 2-bit shadow
groups, leftovers single shadow flops — and a toy workload runs through
repeated power cycles, checking that the architectural state survives
every normally-off period bit-exactly.

Run:  python examples/processor_checkpoint.py
"""

import numpy as np

from repro.core.flow import run_system_flow
from repro.core.shadow import (
    MultiBitShadowGroup,
    PowerGatingController,
    ShadowFlipFlop,
)


def main() -> None:
    print("Placing and pairing the s13207 benchmark (Table III flow)...")
    outcome = run_system_flow("s13207")
    merge = outcome.merge
    print(f"  {merge.total_flip_flops} flip-flops -> "
          f"{len(merge.pairs)} shared 2-bit groups + "
          f"{len(merge.unmatched)} singles")

    controller = PowerGatingController(
        singles=[ShadowFlipFlop() for _ in merge.unmatched],
        groups=[MultiBitShadowGroup() for _ in merge.pairs],
    )

    rng = np.random.default_rng(2018)
    cycles = 25
    print(f"\nRunning {cycles} compute/standby cycles over "
          f"{merge.total_flip_flops} architectural bits...")
    for cycle in range(cycles):
        # Compute phase: clock random data into the whole state.
        single_bits = rng.integers(0, 2, size=len(controller.singles))
        group_bits = rng.integers(0, 2, size=(len(controller.groups), 2))
        for flop, bit in zip(controller.singles, single_bits):
            flop.clock(int(bit))
        for group, (d0, d1) in zip(controller.groups, group_bits):
            group.clock(int(d0), int(d1))

        # Standby: PD asserts, everything stores and powers down.
        controller.enter_standby()
        latency = controller.wake_up()

        # Verify the state survived bit-exactly.
        for flop, bit in zip(controller.singles, single_bits):
            assert flop.q == int(bit)
        for group, (d0, d1) in zip(controller.groups, group_bits):
            assert (group.flops[0].q, group.flops[1].q) == (int(d0), int(d1))

    total_bits = cycles * merge.total_flip_flops
    print(f"  {cycles} power cycles, {total_bits} bit-checks: all survived")
    print(f"  restore latency per wake-up: {latency * 1e9:.2f} ns "
          f"(sequential 2-bit reads dominate; budget 120 ns)")
    print(f"\nNV area for this machine: "
          f"{outcome.result.area_proposed * 1e12:.0f} um^2 "
          f"({100 * outcome.result.area_improvement:.1f} % below the "
          f"all-1-bit baseline)")


if __name__ == "__main__":
    main()
