#!/usr/bin/env python3
"""SoC physical-design flow: replace neighbour flip-flops with 2-bit NV cells.

Reproduces one row of the paper's Table III end to end:

1. generate the benchmark netlist (exact paper flip-flop count),
2. floorplan + quadratic placement + legalisation,
3. write the DEF and run the neighbour-identification script over it,
4. plan the replacement ECO (2-bit NV cells at pair midpoints),
5. account area and read energy against the all-1-bit baseline.

Artifacts (DEF, floorplan SVG with encircled pairs) land next to this
script.

Run:  python examples/soc_design_flow.py [benchmark]   (default: s5378)
"""

import pathlib
import sys

from repro.analysis.figures import floorplan_svg
from repro.core.flow import run_system_flow
from repro.physd.benchmarks import BENCHMARKS
from repro.physd.def_io import write_def
from repro.units import to_femtojoules, to_square_microns


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "s5378"
    spec = BENCHMARKS[benchmark]
    print(f"Running the system flow on {benchmark} "
          f"({spec.num_gates} gates, {spec.num_flip_flops} flip-flops)...")

    outcome = run_system_flow(benchmark)
    placement = outcome.placement
    merge = outcome.merge
    result = outcome.result

    die = placement.floorplan.die
    print(f"  die: {die.width * 1e6:.1f} x {die.height * 1e6:.1f} um, "
          f"{len(placement.floorplan.rows)} rows, "
          f"HPWL {placement.hpwl() * 1e3:.2f} mm")
    print(f"  mergeable pairs: {len(merge.pairs)} "
          f"(paper found {spec.paper_merged_pairs}); "
          f"{100 * merge.merge_fraction:.0f} % of flip-flops share a 2-bit cell")
    print(f"  ECO: {outcome.replacement.num_2bit} x 2-bit NV cells + "
          f"{outcome.replacement.num_1bit} x 1-bit NV cells")

    print("\nTable III row (ours / paper):")
    print(f"  NV area    : {to_square_microns(result.area_proposed):9.1f} / "
          f"{spec.paper_area_2bit:9.1f} um^2 "
          f"(improvement {100 * result.area_improvement:.1f} % / "
          f"{100 * (1 - spec.paper_area_2bit / spec.paper_area_1bit):.1f} %)")
    print(f"  read energy: {to_femtojoules(result.energy_proposed):9.1f} / "
          f"{spec.paper_energy_2bit:9.1f} fJ "
          f"(improvement {100 * result.energy_improvement:.1f} % / "
          f"{100 * (1 - spec.paper_energy_2bit / spec.paper_energy_1bit):.1f} %)")

    out = pathlib.Path(__file__).parent
    (out / f"{benchmark}.def").write_text(write_def(placement))
    (out / f"{benchmark}_floorplan.svg").write_text(
        floorplan_svg(placement, merge))
    print(f"\nwrote {benchmark}.def and {benchmark}_floorplan.svg")


if __name__ == "__main__":
    main()
