#!/usr/bin/env python3
"""Normally-off / instant-on: a complete power cycle in one transient.

One circuit simulation covers the paper's whole protocol (Fig 3):

1. the write drivers store (D0, D1) into the four MTJs — real STT
   switching events, starting from the opposite data,
2. VDD collapses to 0 V — every CMOS node discharges, supply power is
   zero, only the magnetisation remembers,
3. the supply returns and the Fig 7 restore sequence reads both bits
   back through the shared sense amplifier.

Run:  python examples/power_cycle_simulation.py
"""

from repro.cells.control import proposed_power_cycle
from repro.cells.nvlatch_2bit import build_proposed_latch
from repro.spice.analysis.measure import average_power
from repro.spice.analysis.transient import run_transient
from repro.units import format_eng

BITS = (1, 0)


def main() -> None:
    cycle = proposed_power_cycle(BITS, off_duration=1.5e-9)
    schedule = cycle.schedule
    # Start from the opposite pattern so every junction must switch.
    latch = build_proposed_latch(schedule, stored_bits=(1 - BITS[0], 1 - BITS[1]),
                                 vdd_waveform=cycle.vdd_waveform)

    print(f"Simulating {schedule.stop_time * 1e9:.1f} ns "
          f"({latch.circuit.summary()})...")
    result = run_transient(latch.circuit, schedule.stop_time, 2e-12,
                           initial_voltages={"vdd": 1.1})

    print("\n--- store phase ---")
    for name in ("mtj1", "mtj2", "mtj3", "mtj4"):
        mtj = getattr(latch, name)
        for event in mtj.switching.events:
            print(f"  {name} switched to {event.new_state.value:2s} at "
                  f"{event.time * 1e9:5.2f} ns "
                  f"(write current {event.current * 1e6:+.0f} uA)")
    print(f"  stored bits now: {latch.stored_bits()}")

    print("\n--- power-off phase ---")
    t_mid = (cycle.power_off_time + cycle.power_on_time) / 2
    print(f"  VDD at {t_mid * 1e9:.2f} ns: {result.sample('vdd', t_mid):.3f} V")
    power_off = average_power(result, "vdd",
                              cycle.power_off_time + 0.2e-9,
                              cycle.power_on_time - 0.2e-9)
    print(f"  supply power while gated: {format_eng(abs(power_off), 'W')} "
          f"(zero-leakage standby)")

    print("\n--- restore phase (sequential 2-bit read) ---")
    m = schedule.markers
    v_low = result.sample(latch.out, m["eval_low_end"])
    v_high = result.sample(latch.out, m["eval_high_end"])
    print(f"  lower pair (D0): out = {v_low:.3f} V  -> bit {int(v_low > 0.55)}")
    print(f"  upper pair (D1): out = {v_high:.3f} V -> bit {int(v_high > 0.55)}")

    recovered = (int(v_low > 0.55), int(v_high > 0.55))
    print(f"\nstored {BITS} -> recovered {recovered}: "
          f"{'SUCCESS' if recovered == BITS else 'FAILURE'}")


if __name__ == "__main__":
    main()
