#!/usr/bin/env python3
"""Fault-injected reliability campaign on the NV latches.

Demonstrates the `repro.faults` subsystem end to end:

* restore-failure campaign under an injected sense-amp offset, run
  through the resilient campaign runner with a JSONL checkpoint,
* an interrupted-and-resumed rerun whose aggregates are bit-identical
  to the uninterrupted campaign,
* the write-path isolation report behind the paper's claim that the
  2-bit cell's separate tristate write paths keep each bit's store WER
  independent.

Run:  python examples/reliability_campaign.py
"""

import os
import tempfile

from repro.api import Session
from repro.faults import (
    FaultSpec,
    sense_margin_degradation,
    margin_slopes,
    write_path_isolation,
)


def main() -> None:
    offset = FaultSpec("sa.offset", 0.04)  # 40 mV input-referred offset

    print("=== Restore-failure campaign (checkpointed) ===")
    with tempfile.TemporaryDirectory() as tmp, Session() as session:
        checkpoint = os.path.join(tmp, "campaign.jsonl")
        outcome = session.campaign("proposed", [offset], samples=4,
                                   checkpoint=checkpoint, retries=1)
        print(outcome.summary())

        # Emulate a kill after two tasks, then resume from the file.
        lines = open(checkpoint).read().splitlines()
        with open(checkpoint, "w") as handle:
            handle.write("\n".join(lines[:3]) + "\n")
        resumed = session.campaign("proposed", [offset], samples=4,
                                   checkpoint=checkpoint, retries=1)
        same = resumed.failure_rate == outcome.failure_rate
        print(f"resumed: {resumed.report.skipped} task(s) from checkpoint, "
              f"aggregates bit-identical: {same}")
        assert same, "resume must reproduce the uninterrupted campaign"

    print("\n=== Sense-margin degradation under SA offset ===")
    curves = sense_margin_degradation(offsets=(0.0, 0.04, 0.06))
    for design, points in curves.items():
        row = "  ".join(f"{p['offset'] * 1e3:3.0f} mV: {p['margin']:+.3f}"
                        for p in points)
        print(f"  {design:9s} {row}")
    slopes = margin_slopes(curves)
    print(f"  slopes: standard {slopes['standard']:+.2f}/V, "
          f"proposed {slopes['proposed']:+.2f}/V "
          f"(shared SA: 2-bit cell degrades faster)")

    print("\n=== Write-path isolation (3 sigma outlier on D0 drivers) ===")
    iso = write_path_isolation(dt=20e-12)
    print(f"  standard bit WER      {iso['standard_bit']:.3e}")
    print(f"  2-bit baseline        d0 {iso['baseline']['d0']:.3e}   "
          f"d1 {iso['baseline']['d1']:.3e}")
    print(f"  2-bit with D0 outlier d0 {iso['faulty']['d0']:.3e}   "
          f"d1 {iso['faulty']['d1']:.3e}")
    print(f"  d1 shift {iso['d1_shift']:.1e}  (separate write paths)")


if __name__ == "__main__":
    main()
