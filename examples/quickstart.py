#!/usr/bin/env python3
"""Quickstart: simulate the proposed 2-bit NV latch reading both bits.

Builds the paper's Fig 5 circuit with the Table I MTJ parameters, runs
the Fig 7 restore sequence as a transient simulation, and prints the
measured read energy/delay next to the paper's cell-level numbers.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import render_table1
from repro.cells.characterize import characterize_proposed, characterize_standard
from repro.spice.corners import CORNERS
from repro.units import format_eng


def main() -> None:
    print(render_table1())
    print()

    print("Characterising both latch designs at the typical corner")
    print("(full transient simulation of pre-charge + sensing; ~30 s)...")
    standard = characterize_standard(CORNERS["typical"], include_write=False)
    proposed = characterize_proposed(CORNERS["typical"], include_write=False)

    print()
    print(f"standard 1-bit latch : read {format_eng(standard.read_energy, 'J')} "
          f"in {format_eng(standard.read_delay, 's')} per bit, "
          f"leakage {format_eng(standard.leakage, 'W')}")
    print(f"proposed 2-bit latch : read {format_eng(proposed.read_energy, 'J')} "
          f"in {format_eng(proposed.read_delay, 's')} for two bits, "
          f"leakage {format_eng(proposed.leakage, 'W')}")

    change = proposed.read_energy / (2 * standard.read_energy) - 1
    ratio = proposed.read_delay / standard.read_delay
    print()
    print(f"read energy vs two standard latches : {100 * change:+.1f} % "
          f"(paper: about -19 %)")
    print(f"read delay vs one standard latch    : {ratio:.2f}x "
          f"(paper: about 2x — the sequential 2-bit read)")
    print(f"read-path transistors               : "
          f"{proposed.transistor_count} vs 2 x {standard.transistor_count} "
          f"(paper: 16 vs 22)")
    print(f"all reads correct                   : "
          f"{standard.read_values_ok and proposed.read_values_ok}")


if __name__ == "__main__":
    main()
