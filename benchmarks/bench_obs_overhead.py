"""Observability overhead benchmark.

Measures what the tracing/metrics instrumentation costs and writes
``BENCH_obs_overhead.json`` at the repository root:

* the per-call price of a disabled :func:`repro.obs.span` (the
  null-object fast path),
* an upper-bound estimate of the disabled-mode overhead on a real
  standard-latch restore transient (the ``< 5 %`` acceptance bound),
* the directly measured enabled-vs-disabled slowdown.

The logic lives in :func:`repro.bench.run_obs_overhead_bench` (shared
with the ``repro bench obs`` CLI command); this file pins the output to
the repository root and keeps a pytest acceptance gate.

Runnable standalone:
``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import pathlib

from repro.bench import OBS_OVERHEAD_BOUND_PCT, run_obs_overhead_bench

OUTPUT = (pathlib.Path(__file__).resolve().parents[1]
          / "BENCH_obs_overhead.json")


def run_bench() -> dict:
    """Run the overhead benchmark; returns the report dict."""
    return run_obs_overhead_bench(OUTPUT)


def test_obs_overhead(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    assert report["within_bound"], (
        f"disabled-mode observability overhead "
        f"{report['disabled_overhead_pct']:.3f}% exceeds "
        f"{OBS_OVERHEAD_BOUND_PCT}%"
    )


if __name__ == "__main__":
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"\nwrote {OUTPUT}")
