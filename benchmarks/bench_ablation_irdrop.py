"""Ablation — wake-up rush current and rail IR drop.

The restore happens in parallel across every flip-flop, on a rail that
is itself stabilising (the 120 ns wake-up the paper cites).  This
ablation solves the VDD grid (resistive mesh, edge pads) under the
restore current of a large benchmark and compares two disciplines:

* all-1-bit back-up — every NV latch senses simultaneously,
* proposed 2-bit cells — merged pairs sense *sequentially*, halving
  their contribution to the peak (an unadvertised system-level benefit
  of the shared-sense-amplifier architecture).
"""

import pytest

from repro.core.merge import find_mergeable_pairs
from repro.physd import generate_benchmark, place_design
from repro.physd.powergrid import restore_rush_currents, solve_ir_drop


@pytest.fixture(scope="module")
def placed_s38584():
    netlist = generate_benchmark("s38584", seed=1)
    return place_design(netlist, utilization=0.7, seed=1)


def test_wakeup_ir_drop(placed_s38584, benchmark, out_dir):
    merge = find_mergeable_pairs(placed_s38584)
    pairs = [pair.members() for pair in merge.pairs]

    def analyse():
        maps = restore_rush_currents(placed_s38584, merged_pairs=pairs,
                                     nx=12, ny=12)
        return (solve_ir_drop(placed_s38584, maps["simultaneous"]),
                solve_ir_drop(placed_s38584, maps["staggered"]))

    simultaneous, staggered = benchmark.pedantic(analyse, rounds=1,
                                                 iterations=1)
    relief = 1 - staggered.worst_drop / simultaneous.worst_drop

    (out_dir / "ablation_irdrop.txt").write_text(
        "Ablation — wake-up restore rush and VDD IR drop (s38584, 1424 flops)\n"
        f"  all-1-bit simultaneous restore: {simultaneous.report()}\n"
        f"  2-bit sequential restore:       {staggered.report()}\n"
        f"  peak-droop relief from sequential sensing: {100 * relief:.1f} %\n")

    # The rail stays healthy in both cases (the premise of the restore)...
    assert simultaneous.worst_drop_fraction < 0.10
    # ...and sequential sensing measurably relieves the rush.
    assert staggered.worst_drop < simultaneous.worst_drop
    assert relief > 0.15
