"""Fig 9 — floorplan of s344 with mergeable flip-flops encircled.

Places the s344 benchmark, runs the neighbour-pairing script, and
renders the floorplan with merged pairs marked (ASCII and SVG with
circles, like the paper's figure).  The DEF file the script consumes is
also written.
"""

import pytest

from repro.analysis.figures import floorplan_ascii, floorplan_svg
from repro.core.merge import find_mergeable_pairs, pairs_from_def
from repro.physd import generate_benchmark, place_design, write_def, parse_def


@pytest.fixture(scope="module")
def placed():
    netlist = generate_benchmark("s344", seed=1)
    return place_design(netlist, utilization=0.7, seed=1)


def test_fig9_floorplan_render(placed, benchmark, out_dir):
    merge = benchmark(find_mergeable_pairs, placed)
    (out_dir / "fig9_floorplan.txt").write_text(
        floorplan_ascii(placed, merge) + "\n\n"
        + f"merged pairs: {len(merge.pairs)} (paper: 5 of 15 flip-flops "
        + "form 2-bit cells)\n"
        + "\n".join(f"  {p.ff_a} + {p.ff_b}  (separation "
                    f"{p.distance * 1e6:.2f} um)" for p in merge.pairs) + "\n")
    (out_dir / "fig9_floorplan.svg").write_text(floorplan_svg(placed, merge))
    assert len(merge.pairs) >= 4


def test_fig9_def_script_path(placed, benchmark, out_dir):
    """The paper runs its identification script over the DEF file: write
    the DEF, parse it back, and pair from the DEF alone — the result must
    match the in-memory pairing."""
    def def_roundtrip():
        text = write_def(placed)
        design = parse_def(text)
        sizes = {"DFF_X1": (placed.netlist.library["DFF_X1"].width,
                            placed.netlist.library["DFF_X1"].height)}
        return text, pairs_from_def(design, cell_sizes=sizes)

    text, from_def = benchmark.pedantic(def_roundtrip, rounds=1, iterations=1)
    (out_dir / "fig9_s344.def").write_text(text)
    in_memory = find_mergeable_pairs(placed)
    from_def.validate()
    # Greedy maximal matching is not unique under distance ties (abutted
    # flop clusters), and DEF quantises coordinates to 1 nm, so the two
    # paths may differ by a pair — but never by more.
    assert abs(len(from_def.pairs) - len(in_memory.pairs)) <= 1
