"""Shared fixtures for the benchmark harness.

Heavy experiment data (full Table II characterisation, the 13-benchmark
Table III sweep) is computed once per session and shared; the
pytest-benchmark timings then measure representative single operations.

Every bench writes its reproduced table/figure into ``benchmarks/out/``
so the artefacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def table2_data():
    """Full Table II characterisation at all three process corners
    (several minutes of transient simulation)."""
    from repro.api import Session

    with Session() as session:
        return session.table2(dt=1e-12, include_write=True)


@pytest.fixture(scope="session")
def table3_results():
    """The 13-benchmark system sweep (placement + merge per circuit)."""
    from repro.api import Session

    with Session() as session:
        return session.table3()
