"""Fig 1 — the MTJ storage element.

Regenerates the device-level behaviour behind the paper's Fig 1: the
bidirectional current-driven P ↔ AP switching, plus the switching-time
vs. overdrive curve of the compact model.
"""

import pytest

from repro.mtj.device import MTJDevice, MTJState
from repro.mtj.dynamics import SwitchingModel, simulate_current_pulse
from repro.units import to_microamps


def test_fig1_switching_curve(benchmark, out_dir):
    def curve():
        model = SwitchingModel(device=MTJDevice())
        rows = []
        for i_ua in (40, 45, 50, 55, 60, 65, 70, 80, 90, 100, 120):
            rows.append((i_ua, model.mean_switching_time(i_ua * 1e-6)))
        return rows

    rows = benchmark(curve)
    lines = ["Fig 1 — STT switching time vs write current",
             "I [uA] | t_switch [ns]", "-------+--------------"]
    for i_ua, t in rows:
        lines.append(f"{i_ua:6d} | {t * 1e9:10.3f}")
    (out_dir / "fig1_switching.txt").write_text("\n".join(lines) + "\n")

    times = [t for _, t in rows]
    assert all(a >= b for a, b in zip(times, times[1:]))  # monotone
    assert dict(rows)[70] == pytest.approx(2e-9, rel=0.01)


def test_fig1_bidirectional_switching(benchmark):
    """Positive current → AP, negative current → P (the Fig 1 arrows)."""
    def round_trip():
        model = SwitchingModel(device=MTJDevice(state=MTJState.PARALLEL))
        simulate_current_pulse(model, [(0.0, 0.0), (0.1e-9, 80e-6),
                                       (3e-9, 80e-6), (3.1e-9, 0.0)])
        first = model.device.state
        simulate_current_pulse(model, [(4e-9, 0.0), (4.1e-9, -80e-6),
                                       (7e-9, -80e-6), (7.1e-9, 0.0)])
        return first, model.device.state

    first, final = benchmark(round_trip)
    assert first is MTJState.ANTIPARALLEL
    assert final is MTJState.PARALLEL


def test_fig1_resistance_states(benchmark):
    def resistances():
        p = MTJDevice(state=MTJState.PARALLEL)
        ap = MTJDevice(state=MTJState.ANTIPARALLEL)
        return p.resistance(0.0), ap.resistance(0.0)

    r_p, r_ap = benchmark(resistances)
    assert to_microamps(1.1 / r_p) > to_microamps(1.1 / r_ap)
    assert r_ap / r_p == pytest.approx(2.23, rel=1e-6)
