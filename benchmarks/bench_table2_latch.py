"""Table II — two standard 1-bit latches vs. the proposed 2-bit latch.

The session fixture characterises both designs at all three process
corners with full transient simulation; the rendered table (with the
paper's values alongside) lands in ``benchmarks/out/table2.txt``.  The
benchmarked operation is one standard-latch restore simulation — the
basic unit of the characterisation.
"""

import pytest

from repro.analysis.tables import render_table2
from repro.cells.characterize import _standard_read
from repro.cells.sizing import DEFAULT_SIZING
from repro.spice.corners import CORNERS


def test_table2_render_and_shape(table2_data, out_dir, benchmark):
    """Render the table and assert the paper's qualitative relations."""
    table = benchmark(render_table2, table2_data)
    (out_dir / "table2.txt").write_text(table + "\n")

    assert table2_data.all_reads_ok()

    std_energy = table2_data.column_values("standard", "read_energy")
    prop_energy = table2_data.column_values("proposed", "read_energy")
    # Proposed reads 2 bits for less energy than two standard latches
    # (paper: ~19 % better at typical).
    for std, prop in zip(std_energy, prop_energy):
        assert prop < std

    std_delay = table2_data.column_values("standard", "read_delay")
    prop_delay = table2_data.column_values("proposed", "read_delay")
    # Sequential 2-bit read ≈ twice the single read (paper: 1.9–2.0x).
    for std, prop in zip(std_delay, prop_delay):
        assert 1.4 * std < prop < 3.5 * std

    std_leak = table2_data.column_values("standard", "leakage")
    prop_leak = table2_data.column_values("proposed", "leakage")
    # Proposed leaks no more than two standard latches (paper: ~equal).
    for std, prop in zip(std_leak, prop_leak):
        assert prop < std

    # Worst/typ/best column ordering per metric.
    for design in ("standard", "proposed"):
        for metric in ("read_energy", "read_delay", "leakage"):
            worst, typical, best = table2_data.column_values(design, metric)
            assert worst >= typical >= best

    # Transistor counts (exact paper values).
    assert 2 * table2_data.standard["typical"].transistor_count == 22
    assert table2_data.proposed["typical"].transistor_count == 16


def test_table2_write_metrics(table2_data, benchmark):
    """Both designs share the write methodology: per-bit write energy and
    latency must match closely (paper: 'similar write energy and latency,
    around 104 fJ and 2 ns for the worst case')."""
    benchmark(lambda: None)  # metrics come from the shared characterisation
    std = table2_data.standard["typical"]
    prop = table2_data.proposed["typical"]
    # Proposed writes 2 bits in parallel: per-bit energy comparable.
    assert prop.write_energy / 2 == pytest.approx(std.write_energy, rel=0.2)
    assert prop.write_latency == pytest.approx(std.write_latency, rel=0.3)
    assert 0.5e-9 < std.write_latency < 3.5e-9


def test_benchmark_one_standard_read(benchmark):
    """Timing reference: one full standard-latch restore simulation."""
    def one_read():
        return _standard_read(1, CORNERS["typical"], DEFAULT_SIZING, 1.1, 2e-12)

    energy, delay, ok, _latch, _result = benchmark.pedantic(
        one_read, rounds=1, iterations=1)
    assert ok
