"""Ablation — power-gating break-even analysis.

The paper's motivation chain quantified: against staying powered (domain
leakage), against the conventional save-and-restore-to-memory technique
[4], and against retention flip-flops.  The NV strategies use the
*measured* store/restore energies from the Table II characterisation, so
the 2-bit sharing shows up as a shorter break-even standby time.
"""

import pytest

from repro.core.standby import (
    MemorySaveRestoreStrategy,
    RetentionStrategy,
    StandbyScenario,
    nv_strategies_from_metrics,
    standby_report,
)


@pytest.fixture(scope="module")
def scenario():
    # An or1200-class domain: 2887 bits, ~50 µW of gated leakage.
    return StandbyScenario(num_bits=2887, domain_leakage=50e-6)


def test_standby_break_even(table2_data, scenario, benchmark, out_dir):
    one_bit, two_bit = nv_strategies_from_metrics(
        table2_data.standard["typical"], table2_data.proposed["typical"])
    strategies = [one_bit, two_bit, MemorySaveRestoreStrategy(),
                  RetentionStrategy()]
    durations = [1e-6, 10e-6, 100e-6, 1e-3]

    text = benchmark(standby_report, scenario, strategies, durations)
    (out_dir / "ablation_standby.txt").write_text(
        f"Ablation — standby break-even ({scenario.num_bits} bits, "
        f"{scenario.domain_leakage * 1e6:.0f} uW domain leakage)\n"
        + text + "\n")

    be_1bit = one_bit.break_even_duration(scenario)
    be_2bit = two_bit.break_even_duration(scenario)
    # Sharing lowers the restore overhead → the 2-bit design pays off at
    # least as fast, and both pay off within microseconds.
    assert be_2bit <= be_1bit
    assert be_1bit < 1e-3

    # For a long standby the NV approaches beat the SRAM save/restore
    # (which keeps leaking) and eventually the retention rail (whose
    # per-flop leakage integrates without bound).
    long = 0.1
    nv_cost = two_bit.total_energy(scenario, long)
    assert nv_cost < MemorySaveRestoreStrategy().total_energy(scenario, long)
    assert nv_cost < RetentionStrategy().total_energy(scenario, long)


def test_standby_wakeup_latencies(table2_data, scenario, benchmark):
    one_bit, two_bit = nv_strategies_from_metrics(
        table2_data.standard["typical"], table2_data.proposed["typical"])

    def latencies():
        return (one_bit.wakeup_latency(scenario),
                two_bit.wakeup_latency(scenario),
                MemorySaveRestoreStrategy().wakeup_latency(scenario))

    l1, l2, lmem = benchmark(latencies)
    # All NV restores run in parallel: wake-up stays near the 120 ns rail
    # stabilisation the paper cites; the serial memory restore is slower.
    assert l1 < 150e-9 and l2 < 150e-9
    assert lmem > l2
