"""Ablation — Monte-Carlo process variation (the paper's ±3σ analysis,
done as a distribution instead of corners).

Samples MTJ parameter sets, evaluates the read margin (R_AP − R_P at the
sensing bias) and the write overdrive, and runs a handful of full latch
restore simulations at extreme draws to confirm functional reads beyond
the corner points.
"""

import numpy as np
import pytest

from repro.cells.characterize import _proposed_read
from repro.cells.sizing import DEFAULT_SIZING
from repro.mtj.parameters import PAPER_TABLE_I
from repro.mtj.variation import MTJVariation, sample_parameters
from repro.spice.corners import SimulationCorner, CMOSCorner
from repro.mtj.variation import MTJCorner


def test_montecarlo_margin_distribution(benchmark, out_dir):
    rng = np.random.default_rng(42)

    def run():
        samples = sample_parameters(PAPER_TABLE_I, MTJVariation(),
                                    count=2000, rng=rng)
        margins = np.array([s.resistance_difference for s in samples])
        overdrive = np.array([s.switching_current / s.critical_current
                              for s in samples])
        return margins, overdrive

    margins, overdrive = benchmark.pedantic(run, rounds=1, iterations=1)

    nominal = PAPER_TABLE_I.resistance_difference
    lines = [
        "Ablation — Monte-Carlo MTJ variation (2000 samples, 1 sigma = 5 %)",
        f"read margin R_AP - R_P: mean {np.mean(margins) / 1e3:.2f} kOhm "
        f"(nominal {nominal / 1e3:.2f}), sigma {np.std(margins) / 1e3:.2f} kOhm",
        f"min margin: {np.min(margins) / 1e3:.2f} kOhm "
        f"({100 * np.min(margins) / nominal:.0f} % of nominal)",
        f"write overdrive I_sw/I_c: mean {np.mean(overdrive):.3f}, "
        f"min {np.min(overdrive):.3f}",
    ]
    (out_dir / "ablation_montecarlo.txt").write_text("\n".join(lines) + "\n")

    # Even the worst draw keeps a healthy differential read margin.
    assert np.min(margins) > 0.5 * nominal
    # The write overdrive ratio is preserved by construction of the model.
    assert np.min(overdrive) == pytest.approx(70 / 37, rel=1e-6)


def test_extreme_draw_still_reads(benchmark):
    """A beyond-corner draw (−3σ TMR, −3σ RA simultaneously with a slow
    CMOS corner) must still restore both bits correctly."""
    extreme = SimulationCorner(
        name="extreme",
        cmos=CMOSCorner("slow-tight", vth_shift=0.045, mobility_scale=0.9),
        mtj=MTJCorner.WORST,
    )

    def read():
        return _proposed_read((1, 0), extreme, DEFAULT_SIZING, 1.1, 2e-12)

    _energy, _delays, ok, _latch, _result = benchmark.pedantic(
        read, rounds=1, iterations=1)
    assert ok
