"""Ablation — placement utilisation vs. pairing fraction.

The paper's system result hinges on how many flip-flops land within the
merge threshold, which in turn depends on placement density.  This
ablation sweeps the floorplan utilisation on one benchmark and records
the pairing fraction and area gain — showing the result is robust across
the utilisations a production floorplan would use (60–80 %).
"""


from repro.core.flow import FlowConfig, run_system_flow


def test_utilization_sweep(benchmark, out_dir):
    utilizations = (0.45, 0.55, 0.65, 0.70, 0.80)

    def sweep():
        rows = []
        for utilization in utilizations:
            outcome = run_system_flow(
                "s5378", FlowConfig(utilization=utilization))
            rows.append((utilization, outcome.merge.merge_fraction,
                         outcome.result.area_improvement))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation — utilisation sweep (s5378)",
             "util | merge fraction | area gain",
             "-----+----------------+----------"]
    for utilization, fraction, gain in rows:
        marker = "  <- default" if utilization == 0.70 else ""
        lines.append(f"{utilization:.2f} | {fraction:14.2f} | "
                     f"{100 * gain:7.1f}%{marker}")
    (out_dir / "ablation_utilization.txt").write_text("\n".join(lines) + "\n")

    fractions = [fraction for _, fraction, _ in rows]
    # Denser placements pack flip-flops closer: fraction non-decreasing
    # within noise.
    assert fractions[-1] >= fractions[0] - 0.05
    # Across the whole production range the gain stays within the paper's
    # reported band (19-31 %).
    for _, _, gain in rows:
        assert 0.15 < gain < 0.34


def test_snm_bench(benchmark, out_dir):
    """Sense-amplifier hold static noise margin across corners — the
    hold-stability backing of both latch designs."""
    from repro.spice.analysis.sweep import static_noise_margin
    from repro.spice.corners import CORNER_ORDER, CORNERS

    def margins():
        return {name: static_noise_margin(CORNERS[name].nmos_model(),
                                          CORNERS[name].pmos_model())
                for name in CORNER_ORDER}

    result = benchmark.pedantic(margins, rounds=1, iterations=1)
    lines = ["Sense-amplifier hold SNM (butterfly method)"]
    for name, snm in result.items():
        lines.append(f"  {name:8s}: {snm * 1e3:.0f} mV "
                     f"({100 * snm / 1.1:.0f} % of VDD)")
    (out_dir / "ablation_snm.txt").write_text("\n".join(lines) + "\n")
    assert all(snm > 0.3 for snm in result.values())
