"""Ablation — k-bit sharing at *system* level (beyond the paper's pairs).

The paper's Table III merges pairs; its scalability outlook suggests
larger groups.  This ablation runs the generalised clustering (complete
linkage under the same separation threshold) on placed benchmarks for
max group sizes k ∈ {1, 2, 4, 8} and accounts area/energy with the
k-bit cost model — showing how much further the sharing principle
stretches on real placements, and where it saturates (clusters are
limited by what physically lands within the threshold).
"""

import pytest

from repro.core.cluster import cluster_flip_flops, evaluate_kbit_system
from repro.core.multibit import KBitCostModel
from repro.physd import generate_benchmark, place_design


@pytest.fixture(scope="module")
def placed_s13207():
    netlist = generate_benchmark("s13207", seed=1)
    return place_design(netlist, utilization=0.7, seed=1)


@pytest.fixture(scope="module")
def cost_model(table2_data):
    std = table2_data.standard["typical"]
    prop = table2_data.proposed["typical"]
    return KBitCostModel(energy_1bit=std.read_energy,
                         energy_2bit=prop.read_energy,
                         delay_per_bit=prop.read_delay / 2.0)


def test_kbit_system_sweep(placed_s13207, cost_model, benchmark, out_dir):
    ks = (1, 2, 4, 8)

    def sweep():
        rows = []
        for k in ks:
            clusters = cluster_flip_flops(placed_s13207, max_bits=k)
            rows.append(evaluate_kbit_system("s13207", clusters, cost_model))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation — k-bit sharing at system level (s13207, 627 flops)",
             "max k | group sizes               | area impr | energy impr",
             "------+---------------------------+-----------+------------"]
    for row in rows:
        histogram = ", ".join(f"{count}x{size}b"
                              for size, count in sorted(row.size_histogram.items()))
        lines.append(f"{row.max_bits:5d} | {histogram:25s} | "
                     f"{100 * row.area_improvement:8.1f}% | "
                     f"{100 * row.energy_improvement:10.1f}%")
    (out_dir / "ablation_kbit_system.txt").write_text("\n".join(lines) + "\n")

    improvements = [row.area_improvement for row in rows]
    # k = 1 is the baseline; gains grow with k and saturate.
    assert improvements[0] == pytest.approx(0.0)
    assert improvements[1] > 0.15
    assert improvements[2] > improvements[1]
    assert improvements[3] >= improvements[2]
    # Diminishing returns: the k=2→4 step dominates the k=4→8 step.
    assert (improvements[2] - improvements[1]) > (improvements[3] - improvements[2])
