"""Table III — system-level results over the 13 benchmark circuits.

The session fixture runs the whole flow (synthetic netlist → quadratic
placement → Abacus legalisation → neighbour pairing → accounting) per
benchmark; the rendered table with the paper's columns lands in
``benchmarks/out/table3.txt``.  The benchmarked operation is the full
s344 flow.
"""

import pytest

from repro.analysis.tables import render_table3
from repro.core.flow import run_system_flow
from repro.physd.benchmarks import BENCHMARKS


def test_table3_render_and_shape(table3_results, out_dir, benchmark):
    table = benchmark(render_table3, table3_results)
    (out_dir / "table3.txt").write_text(table + "\n")

    assert len(table3_results) == len(BENCHMARKS)

    area_improvements = []
    energy_improvements = []
    for result, _paper_pairs in table3_results:
        # Every benchmark must improve in both area and energy.
        assert result.area_improvement > 0.10
        assert result.energy_improvement > 0.05
        # And never beyond the cell-level bound (all flops merged).
        assert result.area_improvement < 0.35
        area_improvements.append(result.area_improvement)
        energy_improvements.append(result.energy_improvement)

    mean_area = sum(area_improvements) / len(area_improvements)
    mean_energy = sum(energy_improvements) / len(energy_improvements)
    # Paper averages: 26 % area, 14 % energy.
    assert mean_area == pytest.approx(0.26, abs=0.06)
    assert mean_energy == pytest.approx(0.14, abs=0.04)


def test_table3_pairing_counts_track_paper(table3_results, benchmark):
    """Our placement's pairing counts must track the paper's within a
    factor band — the quantity the whole system result hinges on."""
    benchmark(lambda: None)  # counts come from the shared sweep
    for result, paper_pairs in table3_results:
        assert 0.5 * paper_pairs <= result.merged_pairs <= 1.8 * paper_pairs, \
            result.benchmark


def test_benchmark_s344_flow(benchmark):
    outcome = benchmark.pedantic(run_system_flow, args=("s344",),
                                 rounds=1, iterations=1)
    assert outcome.result.merged_pairs >= 4


def test_table3_with_measured_cell_costs(table3_results, table2_data,
                                         benchmark, out_dir):
    """Table III re-derived with *our* measured cell constants instead of
    the paper's: layout-engine areas + simulated read energies.  The
    improvement percentages barely move — they depend on the cost
    *ratios*, which our substrate reproduces."""
    from repro.core.evaluate import costs_from_layout, evaluate_system

    std = table2_data.standard["typical"]
    prop = table2_data.proposed["typical"]
    costs = costs_from_layout(energy_1bit=std.read_energy,
                              energy_2bit=prop.read_energy)

    def recompute():
        return [evaluate_system(r.benchmark, r.total_flip_flops,
                                r.merged_pairs, costs)
                for r, _ in table3_results]

    ours = benchmark(recompute)

    lines = ["Table III with measured cell costs (ours) vs paper costs",
             "benchmark | area impr (measured/paper-costs) | "
             "energy impr (measured/paper-costs)"]
    for mine, (paper_cost_row, _) in zip(ours, table3_results):
        lines.append(f"{mine.benchmark:9s} | "
                     f"{100 * mine.area_improvement:6.2f}% / "
                     f"{100 * paper_cost_row.area_improvement:6.2f}% | "
                     f"{100 * mine.energy_improvement:6.2f}% / "
                     f"{100 * paper_cost_row.energy_improvement:6.2f}%")
    (out_dir / "table3_measured_costs.txt").write_text("\n".join(lines) + "\n")

    for mine, (with_paper_costs, _) in zip(ours, table3_results):
        # Same pairing, different cost constants: improvements within a
        # few points of each other.
        assert abs(mine.area_improvement
                   - with_paper_costs.area_improvement) < 0.05
        assert mine.energy_improvement > 0
