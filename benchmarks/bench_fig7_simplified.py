"""Fig 7 — the simplified single-PC pre-charge controller.

Verifies the paper's control simplification: driving the proposed latch
from just PC and Ren produces the same restore behaviour as the explicit
three-signal controller of Fig 6(b), and the GND clamp comes for free
during writes.
"""

import pytest

from repro.analysis.figures import render_control_sequence
from repro.cells.control import proposed_restore_schedule
from repro.cells.nvlatch_2bit import build_proposed_latch
from repro.spice.analysis.transient import run_transient


def _restore_outputs(simplified: bool, bits=(0, 1)):
    schedule = proposed_restore_schedule(bits=bits, simplified=simplified)
    latch = build_proposed_latch(schedule, stored_bits=bits)
    result = run_transient(latch.circuit, schedule.stop_time, 2e-12,
                           initial_voltages={"vdd": 1.1})
    m = schedule.markers
    return (result.sample(latch.out, m["eval_low_end"]),
            result.sample(latch.out, m["eval_high_end"]))


def test_fig7_diagram(benchmark, out_dir):
    schedule = benchmark(proposed_restore_schedule, bits=(0, 1),
                         simplified=True)
    diagram = render_control_sequence(
        schedule, signals=("pcv_b", "pcg", "n3", "p3_b", "tg", "eqp_b", "eqn"))
    (out_dir / "fig7_simplified.txt").write_text(
        "Fig 7 — simplified pre-charge controller (all signals decoded "
        "from PC and Ren)\n\n" + diagram + "\n")
    assert "evaluate-lower0" in diagram


def test_fig7_equivalent_to_fig6(benchmark, out_dir):
    def both():
        return _restore_outputs(True), _restore_outputs(False)

    (fig7_low, fig7_high), (fig6_low, fig6_high) = benchmark.pedantic(
        both, rounds=1, iterations=1)

    (out_dir / "fig7_equivalence.txt").write_text(
        "Fig 7 vs Fig 6 controller equivalence ((D0,D1) = (0,1))\n"
        f"  Fig 7 (simplified): low={fig7_low:.3f} V  high={fig7_high:.3f} V\n"
        f"  Fig 6 (explicit):   low={fig6_low:.3f} V  high={fig6_high:.3f} V\n")

    # Same logical outcome, closely matching analog levels.
    assert fig7_low == pytest.approx(fig6_low, abs=0.1)
    assert fig7_high == pytest.approx(fig6_high, abs=0.1)
    assert fig7_low < 0.2 and fig7_high > 0.9  # (D0, D1) = (0, 1)
