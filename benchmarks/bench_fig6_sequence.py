"""Fig 6 — working sequence of the proposed multi-bit latch.

Reproduces both halves of the paper's Fig 6 with the *explicit*
(PC_VDD / PC_GND / SEL) controller: (a) the store phase writing both bit
pairs in parallel, (b) the two-part restore (pre-charge VDD → read lower
pair, pre-charge GND → read upper pair).  The rendered timing diagrams
and the simulated latch behaviour land in ``benchmarks/out/fig6.txt``.
"""

import pytest

from repro.analysis.figures import render_control_sequence
from repro.cells.control import proposed_restore_schedule, proposed_store_schedule
from repro.cells.nvlatch_2bit import build_proposed_latch
from repro.spice.analysis.transient import run_transient

FIG6_SIGNALS = ("pcv_b", "pcg", "n3", "p3_b", "tg", "eqp_b", "eqn", "wen")


def test_fig6a_store_sequence(benchmark, out_dir):
    """Store phase: both MTJ pairs written in parallel."""
    schedule = proposed_store_schedule((1, 0))

    def simulate():
        latch = build_proposed_latch(schedule, stored_bits=(0, 1))
        result = run_transient(latch.circuit, schedule.stop_time, 2e-12,
                               initial_voltages={"vdd": 1.1})
        return latch, result

    latch, _result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert latch.stored_bits() == (1, 0)

    diagram = render_control_sequence(schedule, signals=FIG6_SIGNALS)
    events = []
    for name in ("mtj1", "mtj2", "mtj3", "mtj4"):
        mtj = getattr(latch, name)
        for event in mtj.switching.events:
            events.append(f"{name}: -> {event.new_state.value} "
                          f"at {event.time * 1e9:.2f} ns "
                          f"({event.current * 1e6:+.0f} uA)")
    text = "\n".join([
        "Fig 6(a) — store phase (write (D0,D1)=(1,0) over (0,1))", "",
        diagram, "", "Switching events:"] + events)
    (out_dir / "fig6a_store.txt").write_text(text + "\n")
    assert len(events) == 4


def test_fig6b_restore_sequence(benchmark, out_dir):
    """Restore phase with the explicit Fig 6 controller."""
    schedule = proposed_restore_schedule(bits=(1, 0), simplified=False)

    def simulate():
        latch = build_proposed_latch(schedule, stored_bits=(1, 0))
        result = run_transient(latch.circuit, schedule.stop_time, 2e-12,
                               initial_voltages={"vdd": 1.1})
        return latch, result

    latch, result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    m = schedule.markers
    v_low = result.sample(latch.out, m["eval_low_end"])
    v_high = result.sample(latch.out, m["eval_high_end"])

    from repro.analysis.figures import render_transient_ascii

    diagram = render_control_sequence(schedule, signals=FIG6_SIGNALS)
    analog = render_transient_ascii(result, ["out", "outb"], height=7)
    text = "\n".join([
        "Fig 6(b) — restore phase (explicit PC_VDD/PC_GND/SEL controller)",
        "", diagram, "",
        "Simulated analog outputs:", analog,
        f"out at end of lower evaluation:  {v_low:.3f} V (D0=1 -> high)",
        f"out at end of upper evaluation:  {v_high:.3f} V (D1=0 -> low)",
    ])
    (out_dir / "fig6b_restore.txt").write_text(text + "\n")

    assert v_low == pytest.approx(1.1, abs=0.2)
    assert v_high == pytest.approx(0.0, abs=0.2)
