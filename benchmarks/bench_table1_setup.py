"""Table I — circuit-level setup.

Regenerates the paper's parameter table from the MTJ model and verifies
the derived quantities the rest of the evaluation depends on
(R_P ≈ 5 kΩ, R_AP ≈ 11 kΩ, write switching inside the 2 ns pulse).
"""

import pytest

from repro.analysis.tables import render_table1
from repro.mtj.device import MTJDevice, MTJState
from repro.mtj.dynamics import SwitchingModel
from repro.mtj.parameters import MTJParameters, PAPER_TABLE_I


def test_table1_parameters(benchmark, out_dir):
    table = benchmark(render_table1, PAPER_TABLE_I)
    (out_dir / "table1.txt").write_text(table + "\n")
    assert "20 nm" in table
    assert "123%" in table


def test_table1_derived_resistances(benchmark):
    def derive():
        params = MTJParameters()
        return params.resistance_p, params.resistance_ap

    r_p, r_ap = benchmark(derive)
    assert r_p == pytest.approx(5e3)
    assert r_ap == pytest.approx(11e3, rel=0.02)


def test_table1_write_current_switches_in_pulse(benchmark):
    def switch_time():
        model = SwitchingModel(device=MTJDevice(state=MTJState.PARALLEL))
        return model.mean_switching_time(PAPER_TABLE_I.switching_current)

    t_sw = benchmark(switch_time)
    assert t_sw == pytest.approx(2e-9, rel=0.01)
