"""Fig 8 — layout of the proposed 2-bit NV latch.

Generates the 12-track cell plan, renders it (ASCII + SVG) and checks
the Table II area row it feeds: 3.7 µm² vs 5.6 µm² for two standard
cells (paper: ~34 % smaller).
"""

import pytest

from repro.layout.cell_layout import (
    plan_proposed_2bit,
    plan_standard_1bit,
    standard_pair_area,
)
from repro.units import to_square_microns


def test_fig8_layout_generation(benchmark, out_dir):
    plan = benchmark(plan_proposed_2bit)
    (out_dir / "fig8_layout.txt").write_text(plan.to_ascii() + "\n")
    (out_dir / "fig8_layout.svg").write_text(plan.to_svg())
    (out_dir / "fig8_standard_1bit.svg").write_text(plan_standard_1bit().to_svg())

    assert plan.transistor_count() == 16
    assert plan.mtj_count() == 4
    assert plan.rules.tracks == 12


def test_fig8_area_comparison(benchmark, out_dir):
    def areas():
        return (to_square_microns(plan_proposed_2bit().area),
                to_square_microns(standard_pair_area()))

    proposed, pair = benchmark(areas)
    improvement = 1 - proposed / pair
    (out_dir / "fig8_area.txt").write_text(
        "Fig 8 / Table II area row\n"
        f"  two standard 1-bit cells: {pair:.3f} um^2 (paper 5.635)\n"
        f"  proposed 2-bit cell:      {proposed:.3f} um^2 (paper 3.696)\n"
        f"  improvement:              {100 * improvement:.1f} % (paper ~34 %)\n")
    assert proposed == pytest.approx(3.696, rel=0.02)
    assert pair == pytest.approx(5.635, rel=0.01)
    assert improvement == pytest.approx(0.34, abs=0.02)
