"""Ablation — STA check of the "no timing penalty" merge claim.

The paper bounds the merge distance at twice the NV-component width "so
that there should not be any timing penalties".  This ablation verifies
the claim with static timing analysis over a placed benchmark: the NV
pin and wire loads the (merged) shadow components add to every
flip-flop's Q net cost well under a percent of the clock period, and
functional equivalence across a power cycle holds at machine level.
"""

import numpy as np
import pytest

from repro.core.merge import find_mergeable_pairs
from repro.physd import LogicSimulator, generate_benchmark, place_design
from repro.physd.sta import merge_timing_impact


@pytest.fixture(scope="module")
def placed_s1423():
    netlist = generate_benchmark("s1423", seed=1)
    return place_design(netlist, utilization=0.7, seed=1)


def test_merge_timing_penalty(placed_s1423, benchmark, out_dir):
    merge = find_mergeable_pairs(placed_s1423)

    def run_sta():
        return merge_timing_impact(placed_s1423, merge, clock_period=2e-9)

    baseline, with_nv = benchmark.pedantic(run_sta, rounds=1, iterations=1)
    penalty = baseline.worst_slack - with_nv.worst_slack

    (out_dir / "ablation_timing.txt").write_text(
        "Ablation — STA of the 'no timing penalty' merge claim (s1423, 2 ns clock)\n"
        f"  worst slack, no NV:     {baseline.worst_slack * 1e12:8.1f} ps "
        f"(endpoint {baseline.critical_endpoint})\n"
        f"  worst slack, merged NV: {with_nv.worst_slack * 1e12:8.1f} ps\n"
        f"  penalty:                {penalty * 1e12:8.2f} ps "
        f"({100 * penalty / 2e-9:.2f} % of the 2 ns clock)\n"
        f"  max frequency impact:   {baseline.max_frequency / 1e9:.3f} -> "
        f"{with_nv.max_frequency / 1e9:.3f} GHz\n")

    assert baseline.worst_slack > 0
    assert penalty >= 0
    assert penalty < 0.01 * 2e-9  # the paper's claim: negligible


def test_functional_equivalence_across_power_cycle(benchmark):
    """Machine-level guarantee: snapshot/restore through the NV protocol
    leaves the benchmark cycle-accurate against an ungated twin."""
    def run():
        netlist = generate_benchmark("s838", seed=4)
        gated = LogicSimulator(netlist)
        reference = LogicSimulator(generate_benchmark("s838", seed=4))
        pis = [n.name for n in netlist.port_nets() if n.name.startswith("pi")]
        init = {ff.name: 0 for ff in netlist.sequential_instances()}
        gated.load_flip_flop_state(init)
        reference.load_flip_flop_state(init)
        rng = np.random.default_rng(11)
        for k in range(20):
            vector = {p: int(rng.integers(0, 2)) for p in pis}
            if k == 10:
                snapshot = gated.flip_flop_state()
                gated.power_down()
                gated.load_flip_flop_state(snapshot)
            gated.clock_cycle(vector)
            reference.clock_cycle(vector)
        return gated.flip_flop_state() == reference.flip_flop_state()

    assert benchmark.pedantic(run, rounds=1, iterations=1)
