"""Ablation — clock-network benefit of merging (CMOS-MBFF integration).

The paper notes its NV sharing composes with the industry-standard CMOS
multi-bit flip-flop technique, whose win is clock power.  This ablation
quantifies that composition on a placed benchmark: merging each NV pair
into one physical multi-bit cell removes one clock sink per pair and
shortens the clock tree.
"""

import pytest

from repro.core.merge import find_mergeable_pairs
from repro.physd import clock_tree_for_placement, generate_benchmark, place_design
from repro.physd.placement import refine_placement


@pytest.fixture(scope="module")
def placed_s13207():
    netlist = generate_benchmark("s13207", seed=1)
    placement = place_design(netlist, utilization=0.7, seed=1)
    refine_placement(placement, sweeps=1)
    return placement


def test_clock_power_with_merging(placed_s13207, benchmark, out_dir):
    merge = find_mergeable_pairs(placed_s13207)

    def build_both():
        baseline = clock_tree_for_placement(placed_s13207)
        merged = clock_tree_for_placement(
            placed_s13207, [(p.ff_a, p.ff_b) for p in merge.pairs])
        return baseline, merged

    baseline, merged = benchmark.pedantic(build_both, rounds=1, iterations=1)
    frequency = 1e9
    p_base = baseline.power(frequency)
    p_merged = merged.power(frequency)
    saving = 1 - p_merged / p_base

    (out_dir / "ablation_clock.txt").write_text(
        "Ablation — clock network with NV/CMOS multi-bit merging (s13207)\n"
        f"  sinks:      {baseline.num_sinks} -> {merged.num_sinks}\n"
        f"  wirelength: {baseline.wirelength * 1e6:.1f} -> "
        f"{merged.wirelength * 1e6:.1f} um\n"
        f"  clock power @1 GHz: {p_base * 1e6:.2f} -> {p_merged * 1e6:.2f} uW "
        f"({100 * saving:.1f} % saving)\n")

    assert merged.num_sinks == baseline.num_sinks - len(merge.pairs)
    assert p_merged < p_base
    assert saving > 0.10  # a healthy double-digit clock-power cut
