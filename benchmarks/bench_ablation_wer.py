"""Ablation — write-error rate vs pulse width and current.

Backs the paper's write-reliability argument ("the MTJ store operation
is very sensitive to the current value and its duration of flow") with
the Sun/Butler WER closed form: the double-exponential decay means a
small pulse-width margin buys many decades of reliability, while cutting
the pulse below the mean switching time fails catastrophically —
exactly why the paper keeps the write paths per-bit and untouched.
"""


from repro.mtj.write_error import WriteErrorModel


def test_wer_vs_pulse_width(benchmark, out_dir):
    model = WriteErrorModel()
    currents = (50e-6, 60e-6, 70e-6, 90e-6)
    widths_ns = (1, 2, 3, 5, 8, 12, 20, 30)

    def build_matrix():
        return {
            current: [model.write_error_rate(current, w * 1e-9)
                      for w in widths_ns]
            for current in currents
        }

    matrix = benchmark(build_matrix)

    lines = ["Ablation — write error rate (Sun/Butler model)",
             "pulse [ns] " + "".join(f"| {c * 1e6:4.0f} uA " for c in currents),
             "-" * (11 + 10 * len(currents))]
    for k, width in enumerate(widths_ns):
        row = f"{width:10d} "
        for current in currents:
            row += f"| {matrix[current][k]:8.1e} "
        lines.append(row)
    lines.append("")
    lines.append(model.margin_report(70e-6))
    (out_dir / "ablation_wer.txt").write_text("\n".join(lines) + "\n")

    # Monotone in both directions (non-strict: the tails saturate at the
    # floating-point 1.0 and 0.0 boundaries).
    for current in currents:
        series = matrix[current]
        assert all(a >= b for a, b in zip(series, series[1:]))
        assert series[0] > 0.99 and series[-1] < 1e-2  # full dynamic range
    for k in range(len(widths_ns)):
        by_current = [matrix[c][k] for c in currents]
        assert all(a >= b for a, b in zip(by_current, by_current[1:]))

    # The paper's 2 ns pulse at 70 µA is the *mean* switching time: the
    # stochastic model shows a pulse at the mean still fails often —
    # reliable writes need the width margin quantified here.
    assert matrix[70e-6][1] > 0.01
    assert model.write_error_rate(70e-6, 30e-9) < 1e-9


def test_wer_inverse_design(benchmark):
    """Designing the pulse for a WER target (the practical use)."""
    model = WriteErrorModel()

    def design():
        return [model.pulse_width_for_wer(i, 1e-9)
                for i in (50e-6, 70e-6, 90e-6)]

    widths = benchmark(design)
    # Stronger drive needs shorter pulses.
    assert all(a > b for a, b in zip(widths, widths[1:]))
    assert all(0 < w < 100e-9 for w in widths)
