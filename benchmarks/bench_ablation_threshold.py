"""Ablation — merge-distance threshold sweep.

The paper fixes the threshold at twice the NV-component width (3.35 µm)
"so that there should not be any timing penalties".  This ablation
quantifies the trade-off the choice sits on: pairing fraction and area
gain vs. threshold, with the wire-delay guard showing where timing would
start to bite.
"""

import pytest

from repro.core.evaluate import PAPER_COSTS, evaluate_system
from repro.core.merge import MergeConfig, default_merge_threshold, find_mergeable_pairs
from repro.physd import generate_benchmark, place_design
from repro.physd.timing import WireDelayModel


@pytest.fixture(scope="module")
def placed_s5378():
    netlist = generate_benchmark("s5378", seed=1)
    return place_design(netlist, utilization=0.7, seed=1)


def test_threshold_sweep(placed_s5378, benchmark, out_dir):
    thresholds = [0.5e-6, 1.0e-6, 2.0e-6, 3.36e-6, 5.0e-6, 8.0e-6, 12.0e-6]
    model = WireDelayModel()

    def sweep():
        rows = []
        for threshold in thresholds:
            merge = find_mergeable_pairs(
                placed_s5378, MergeConfig(threshold=threshold))
            result = evaluate_system("s5378", merge.total_flip_flops,
                                     merge, PAPER_COSTS)
            rows.append((threshold, len(merge.pairs), merge.merge_fraction,
                         result.area_improvement,
                         model.added_delay_for_merge(threshold)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation — merge threshold sweep (s5378)",
             "thresh[um] | pairs | frac | area gain | added delay [ps]",
             "-----------+-------+------+-----------+-----------------"]
    for threshold, pairs, frac, gain, delay in rows:
        marker = "  <- paper" if abs(threshold - 3.36e-6) < 1e-8 else ""
        lines.append(f"{threshold * 1e6:10.2f} | {pairs:5d} | {frac:.2f} | "
                     f"{100 * gain:8.1f}% | {delay * 1e12:15.1f}{marker}")
    (out_dir / "ablation_threshold.txt").write_text("\n".join(lines) + "\n")

    pairs_series = [pairs for _, pairs, _, _, _ in rows]
    assert all(a <= b for a, b in zip(pairs_series, pairs_series[1:]))

    # The paper's operating point already captures most of the gain while
    # staying timing-safe.
    paper_idx = thresholds.index(3.36e-6)
    paper_gain = rows[paper_idx][3]
    max_gain = rows[-1][3]
    assert paper_gain > 0.7 * max_gain
    assert model.merge_is_timing_safe(thresholds[paper_idx], clock_period=1e-9)


def test_default_threshold_is_twice_cell_width(benchmark):
    threshold = benchmark(default_merge_threshold)
    from repro.layout.cell_layout import plan_standard_1bit

    assert threshold == pytest.approx(2 * plan_standard_1bit().width)
