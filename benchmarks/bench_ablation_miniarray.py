"""Ablation — proposed sharing vs. the mini-array baseline [17].

The paper dismisses the mini-array checkpointing approach because its
reference cell, decoder and routing "impose not only extra area but also
consume more energy", and the serial access complicates control.  This
ablation quantifies the comparison across back-up sizes: per-bit area,
restore energy, restore latency, and sensing margin.
"""


from repro.cells.miniarray import MiniArrayCheckpoint
from repro.layout.cell_layout import plan_proposed_2bit, plan_standard_1bit


def test_miniarray_vs_shadow(benchmark, out_dir):
    shadow_1bit_area = plan_standard_1bit().area
    shadow_2bit_area_per_bit = plan_proposed_2bit().area / 2

    sizes = (8, 16, 32, 64, 128, 256, 1024)

    def build_rows():
        return [MiniArrayCheckpoint(num_bits=n) for n in sizes]

    arrays = benchmark(build_rows)

    lines = [
        "Ablation — mini-array checkpointing [17] vs shadow NV cells",
        f"(shadow per-bit area: 1-bit {shadow_1bit_area * 1e12:.2f} um^2, "
        f"proposed 2-bit {shadow_2bit_area_per_bit * 1e12:.2f} um^2; "
        "shadow restore: parallel, ~1 ns)",
        "",
        "bits | array um^2/bit | restore fJ/bit | restore [ns] | margin",
        "-----+----------------+----------------+--------------+-------",
    ]
    for array in arrays:
        lines.append(
            f"{array.num_bits:4d} | "
            f"{array.total_area() / array.num_bits * 1e12:14.3f} | "
            f"{array.restore_energy() / array.num_bits * 1e15:14.2f} | "
            f"{array.restore_latency() * 1e9:12.1f} | "
            f"{array.read_margin_factor():.2f}x")
    (out_dir / "ablation_miniarray.txt").write_text("\n".join(lines) + "\n")

    # At flip-flop granularity (small N), the shadow 2-bit cell wins on
    # area — the paper's sharing argument.
    small = arrays[0]
    assert small.total_area() / small.num_bits > shadow_2bit_area_per_bit

    # The array's restore is serial: even a 256-bit instance takes tens of
    # ns, against the shadow cells' single parallel ~1 ns restore.
    idx_256 = sizes.index(256)
    assert arrays[idx_256].restore_latency() > 20e-9

    # Single-ended sensing against the manufactured reference halves the
    # margin — the robustness cost the paper's differential scheme avoids.
    assert all(a.read_margin_factor() <= 0.5 for a in arrays)

    # Large arrays do win on raw density (fairness check: the paper's
    # point is about *flip-flop-granularity* back-up, not bulk storage).
    big = arrays[-1]
    assert big.total_area() / big.num_bits < shadow_2bit_area_per_bit
