"""Ablation — k-bit sharing scalability (the paper's §III outlook).

Extends the 2-bit sharing to k ∈ {1, 2, 4, 8}: transistors, area and
read energy per bit fall with k while the sequential read delay grows
linearly — quantifying how far the paper's sharing principle stretches
before the restore latency approaches the 120 ns wake-up budget.
"""

import pytest

from repro.core.multibit import KBitCostModel, kbit_transistor_count
from repro.units import to_femtojoules, to_square_microns


@pytest.fixture(scope="module")
def cost_model(table2_data):
    std = table2_data.standard["typical"]
    prop = table2_data.proposed["typical"]
    return KBitCostModel(
        energy_1bit=std.read_energy,
        energy_2bit=prop.read_energy,
        delay_per_bit=prop.read_delay / 2.0,
    )


def test_kbit_scaling_table(cost_model, benchmark, out_dir):
    ks = (1, 2, 4, 8)

    def build_rows():
        return [cost_model.per_bit_summary(k) for k in ks]

    rows = benchmark(build_rows)

    lines = ["Ablation — k-bit sharing scalability",
             "k | tx/bit | area/bit [um^2] | energy/bit [fJ] | restore [ns]",
             "--+--------+-----------------+-----------------+-------------"]
    for row in rows:
        lines.append(
            f"{row['k']} | {row['transistors_per_bit']:6.2f} | "
            f"{to_square_microns(row['area_per_bit']):15.3f} | "
            f"{to_femtojoules(row['energy_per_bit']):15.3f} | "
            f"{row['delay_total'] * 1e9:11.3f}")
    (out_dir / "ablation_kbit.txt").write_text("\n".join(lines) + "\n")

    # Per-bit transistors and area strictly decrease with sharing.
    tx = [r["transistors_per_bit"] for r in rows]
    area = [r["area_per_bit"] for r in rows]
    assert all(a > b for a, b in zip(tx, tx[1:]))
    assert all(a > b for a, b in zip(area, area[1:]))

    # Even at k = 8 the sequential restore stays far below the paper's
    # 120 ns wake-up budget.
    assert rows[-1]["delay_total"] < 120e-9 / 10

    # Sanity anchors.
    assert kbit_transistor_count(2) == 16
    assert rows[1]["energy_per_bit"] < rows[0]["energy_per_bit"]
