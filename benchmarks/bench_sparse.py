"""Sparse-engine benchmark — batched ensembles and large-array solves.

Times the two workloads the third-generation sparse core was built for
and writes ``BENCH_sparse.json`` at the repository root:

* **Ensemble Monte-Carlo** — N MTJ parameter samples of one 4x4 read
  access advanced as a single block-diagonal batched solve, against the
  per-sample scalar loops under the naive and fast engines;
* **Mini-array transient** — a transistor-level 1T-1MTJ array large
  enough that sparse factorisation beats the dense fast path outright,
  at fixed step so the comparison is solver-for-solver.

The benchmark logic lives in :mod:`repro.bench` (shared with the
``repro bench sparse`` CLI command); this file pins the output to the
repository root and keeps the pytest acceptance gate.

Runnable standalone: ``PYTHONPATH=src python benchmarks/bench_sparse.py``
(pass ``--quick`` for the CI-sized variant).
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.bench import (  # noqa: F401 — re-exported for existing importers
    AGREEMENT_TOL,
    ARRAY_SPEEDUP_VS_FAST,
    ENSEMBLE_SPEEDUP_VS_FAST,
    ENSEMBLE_SPEEDUP_VS_NAIVE,
    QUICK_SPEEDUP,
    run_sparse_bench,
)

OUTPUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_sparse.json"


def run_bench(quick: bool = False) -> dict:
    """Run both workloads; returns the report dict."""
    return run_sparse_bench(OUTPUT, quick=quick)


def test_sparse_speedup(benchmark):
    report = benchmark.pedantic(run_bench, args=(True,), rounds=1,
                                iterations=1)
    ensemble = report["ensemble_monte_carlo"]
    array = report["mini_array_transient"]
    assert ensemble["max_waveform_diff_v"] <= AGREEMENT_TOL
    assert array["max_waveform_diff_v"] <= AGREEMENT_TOL
    assert ensemble["speedup_vs_fast"] >= ensemble["required_vs_fast"], (
        f"batched ensemble only {ensemble['speedup_vs_fast']:.2f}x "
        f"over the fast scalar loop")
    assert array["speedup_vs_fast"] >= array["required_vs_fast"], (
        f"sparse array solve only {array['speedup_vs_fast']:.2f}x "
        f"over the fast engine")
    assert report["meets_target"]


if __name__ == "__main__":
    result = run_bench(quick="--quick" in sys.argv[1:])
    print(json.dumps(result, indent=2))
    print(f"\nwrote {OUTPUT}")
