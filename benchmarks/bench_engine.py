"""Engine benchmark — naive vs fast simulation path.

Times the two workloads the fast engine was built for and writes
``BENCH_engine.json`` at the repository root:

* **Table II characterisation** — both latch designs at the typical
  corner (reads + leakage; writes excluded to keep the bench minutes,
  not tens of minutes);
* **200-sample Monte-Carlo** — a full standard-latch restore simulation
  per sampled MTJ parameter set, driven through the deterministic
  Monte-Carlo runner (:func:`repro.mtj.variation.monte_carlo_map`).

Both workloads run twice — ``engine="naive"`` then ``engine="fast"`` —
through :func:`repro.spice.analysis.transient.set_default_engine`, so the
timed code path is exactly what users of the characterisation API get.
The acceptance bar (asserted here) is a ≥ 2× wall-clock speedup on the
Monte-Carlo workload with identical results.

Runnable standalone: ``PYTHONPATH=src python benchmarks/bench_engine.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.cells.characterize import characterize_proposed, characterize_standard
from repro.cells.control import standard_restore_schedule
from repro.cells.nvlatch_1bit import build_standard_latch
from repro.cells.sizing import DEFAULT_SIZING
from repro.mtj.parameters import PAPER_TABLE_I
from repro.mtj.variation import DEFAULT_SEED, monte_carlo_map
from repro.spice.analysis.transient import run_transient, set_default_engine
from repro.spice.corners import CORNERS

OUTPUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"

MC_SAMPLES = 200
MC_DT = 4e-12
MC_VDD = 1.1
#: Characterisation timestep (2 ps matches the integration-test fixtures).
CHAR_DT = 2e-12
#: Required fast/naive speedup on the Monte-Carlo workload.
REQUIRED_SPEEDUP = 2.0
#: Result agreement bound between engines [V].
AGREEMENT_TOL = 1e-6


def _mc_read_task(params):
    """One Monte-Carlo sample: restore bit 1 through a standard latch
    built around the sampled MTJ parameters; returns the output pair."""
    schedule = standard_restore_schedule(bit=1, vdd=MC_VDD, cycles=1)
    latch = build_standard_latch(schedule, CORNERS["typical"], DEFAULT_SIZING,
                                 mtj_params=params, stored_bit=1, vdd=MC_VDD)
    result = run_transient(latch.circuit, schedule.stop_time, MC_DT,
                           initial_voltages={"vdd": MC_VDD})
    return (result.final_voltage(latch.out), result.final_voltage(latch.outb))


def _run_monte_carlo():
    return monte_carlo_map(_mc_read_task, PAPER_TABLE_I,
                           count=MC_SAMPLES, seed=DEFAULT_SEED)


def _run_table2():
    corner = CORNERS["typical"]
    standard = characterize_standard(corner, dt=CHAR_DT, include_write=False)
    proposed = characterize_proposed(corner, dt=CHAR_DT, include_write=False)
    return standard, proposed


def _timed(engine: str, workload):
    previous = set_default_engine(engine)
    try:
        start = time.perf_counter()
        result = workload()
        return time.perf_counter() - start, result
    finally:
        set_default_engine(previous)


def run_bench() -> dict:
    """Run both workloads under both engines; returns the report dict."""
    t2_naive_s, (std_naive, prop_naive) = _timed("naive", _run_table2)
    t2_fast_s, (std_fast, prop_fast) = _timed("fast", _run_table2)

    mc_naive_s, mc_naive = _timed("naive", _run_monte_carlo)
    mc_fast_s, mc_fast = _timed("fast", _run_monte_carlo)

    mc_max_diff = max(
        abs(a - b)
        for pair_n, pair_f in zip(mc_naive, mc_fast)
        for a, b in zip(pair_n, pair_f)
    )

    report = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "table2_characterization": {
            "description": "characterize_standard + characterize_proposed, "
                           "typical corner, dt=2ps, reads+leakage",
            "naive_s": round(t2_naive_s, 3),
            "fast_s": round(t2_fast_s, 3),
            "speedup": round(t2_naive_s / t2_fast_s, 3),
            "metrics_agree": (
                abs(std_naive.read_energy - std_fast.read_energy)
                <= 1e-3 * abs(std_naive.read_energy)
                and abs(prop_naive.read_energy - prop_fast.read_energy)
                <= 1e-3 * abs(prop_naive.read_energy)
            ),
        },
        "monte_carlo_200": {
            "description": f"{MC_SAMPLES}-sample MTJ Monte-Carlo, one "
                           f"standard-latch restore per sample, dt=4ps",
            "samples": MC_SAMPLES,
            "seed": DEFAULT_SEED,
            "naive_s": round(mc_naive_s, 3),
            "fast_s": round(mc_fast_s, 3),
            "speedup": round(mc_naive_s / mc_fast_s, 3),
            "max_result_diff_v": mc_max_diff,
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_engine_speedup(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    mc = report["monte_carlo_200"]
    assert mc["max_result_diff_v"] <= AGREEMENT_TOL
    assert mc["speedup"] >= REQUIRED_SPEEDUP, (
        f"fast engine only {mc['speedup']:.2f}x on the Monte-Carlo workload"
    )
    assert report["table2_characterization"]["metrics_agree"]


if __name__ == "__main__":
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"\nwrote {OUTPUT}")
