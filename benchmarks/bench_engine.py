"""Engine benchmark — naive vs fast simulation path.

Times the two workloads the fast engine was built for and writes
``BENCH_engine.json`` at the repository root:

* **Table II characterisation** — both latch designs at the typical
  corner (reads + leakage; writes excluded to keep the bench minutes,
  not tens of minutes);
* **200-sample Monte-Carlo** — a full standard-latch restore simulation
  per sampled MTJ parameter set, driven through the deterministic
  Monte-Carlo runner (:func:`repro.mtj.variation.monte_carlo_map`).

The benchmark logic lives in :mod:`repro.bench` (shared with the
``repro bench engine`` CLI command); this file pins the output to the
repository root and keeps the pytest acceptance gate.

Runnable standalone: ``PYTHONPATH=src python benchmarks/bench_engine.py``.
"""

from __future__ import annotations

import json
import pathlib

from repro.bench import (  # noqa: F401 — re-exported for existing importers
    AGREEMENT_TOL,
    CHAR_DT,
    MC_DT,
    MC_SAMPLES,
    MC_VDD,
    REQUIRED_SPEEDUP,
    run_engine_bench,
)

OUTPUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def run_bench() -> dict:
    """Run both workloads under both engines; returns the report dict."""
    return run_engine_bench(OUTPUT)


def test_engine_speedup(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    mc = report["monte_carlo_200"]
    assert mc["max_result_diff_v"] <= AGREEMENT_TOL
    assert mc["speedup"] >= REQUIRED_SPEEDUP, (
        f"fast engine only {mc['speedup']:.2f}x on the Monte-Carlo workload"
    )
    assert report["table2_characterization"]["metrics_agree"]


if __name__ == "__main__":
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"\nwrote {OUTPUT}")
