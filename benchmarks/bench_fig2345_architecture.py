"""Figs 2–5 — the architectures, audited against the real netlists.

The paper's Figs 2(a)/3/4 are block diagrams and Figs 2(b)/5 schematics;
this bench renders the block diagrams, audits the actual circuit
builders block by block, and asserts the sharing arithmetic the paper
states in prose: the proposed design needs "five additional transistors"
over one standard latch and six fewer than two.
"""


from repro.analysis.blockdiagrams import (
    audit_proposed_latch,
    audit_standard_latch,
    fig2a_shadow_architecture,
    fig3_multibit_overview,
    fig4b_block_structure,
    render_architecture_comparison,
)


def test_architecture_diagrams_and_audit(benchmark, out_dir):
    comparison = benchmark(render_architecture_comparison)
    text = "\n\n".join([
        fig2a_shadow_architecture(),
        fig3_multibit_overview(),
        fig4b_block_structure(),
        comparison,
    ])
    (out_dir / "fig2345_architecture.txt").write_text(text + "\n")
    assert "sense-amp" in comparison


def test_block_accounting_matches_paper(benchmark):
    std, prop = benchmark(lambda: (audit_standard_latch(),
                                   audit_proposed_latch()))

    # Paper Fig 2(b): PCSA (4) + pre-charge (2) + foot (1) + 2 TGs (4) = 11.
    assert std.blocks == {"sense-amp": 4, "precharge": 2, "enable": 1,
                         "isolation": 4}
    assert std.total_read_transistors() == 11
    assert std.mtjs == 2

    # Paper Fig 5: SA (4) + dual pre-charge (4) + N3/P3 (2) + P4/N4 (2)
    # + T1/T2 (4) = 16, with 4 MTJs.
    assert prop.blocks == {"sense-amp": 4, "precharge": 4, "enable": 2,
                          "equalizer": 2, "isolation": 4}
    assert prop.total_read_transistors() == 16
    assert prop.mtjs == 4

    # The sharing arithmetic stated in the paper's text.
    assert prop.total_read_transistors() - std.total_read_transistors() == 5
    assert 2 * std.total_read_transistors() - prop.total_read_transistors() == 6
